"""Unit tests for the from-scratch Christofides implementation."""

import itertools
import math

import pytest

from repro.core.christofides import christofides_order, tour_price
from repro.exceptions import ConfigurationError


def _euclid_matrix(points):
    n = len(points)
    return [
        [math.dist(points[i], points[j]) for j in range(n)] for i in range(n)
    ]


def _path_distance(order, points):
    lookup = {p: i for i, p in enumerate(order)}
    return sum(
        math.dist(points[order[i]], points[order[i + 1]])
        for i in range(len(order) - 1)
    )


class TestBasics:
    def test_visits_each_stop_once(self):
        points = [(0, 0), (1, 0), (2, 1), (0, 2), (3, 3), (1, 4)]
        stops = list(range(6))
        order = christofides_order(stops, _euclid_matrix(points), 1.0)
        assert sorted(order) == stops

    def test_small_inputs_passthrough(self):
        assert christofides_order([7], [[0.0]], 1.0) == [7]
        matrix = [[0.0, 2.0], [2.0, 0.0]]
        assert christofides_order([3, 9], matrix, 1.0) == [3, 9]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            christofides_order([1, 2, 3], [[0.0, 1.0], [1.0, 0.0]], 1.0)

    def test_infinite_distance_rejected(self):
        matrix = [[0.0, math.inf, 1], [math.inf, 0.0, 1], [1, 1, 0.0]]
        with pytest.raises(ConfigurationError):
            christofides_order([0, 1, 2], matrix, 1.0)

    def test_collinear_points_ordered(self):
        """On a line, the optimal open path is the sorted order."""
        points = [(float(x), 0.0) for x in (5, 1, 3, 0, 4, 2)]
        stops = list(range(6))
        order = christofides_order(stops, _euclid_matrix(points), 10.0)
        xs = [points[i][0] for i in order]
        assert xs == sorted(xs) or xs == sorted(xs, reverse=True)


class TestQuality:
    def test_within_2x_of_optimal_small(self):
        """Against brute force on 7 random points: the open-path price
        should stay within 2x optimal (theory: 3/2 on the tour)."""
        import numpy as np

        rng = np.random.default_rng(3)
        for trial in range(5):
            points = [tuple(p) for p in rng.uniform(0, 10, size=(7, 2))]
            matrix = _euclid_matrix(points)
            c = 1.0
            stops = list(range(7))
            order = christofides_order(stops, matrix, c)
            got = tour_price(order, lambda a, b: matrix[a][b], c)
            best = min(
                tour_price(list(perm), lambda a, b: matrix[a][b], c)
                for perm in itertools.permutations(stops)
            )
            assert got <= 2 * best + 1, f"trial {trial}: {got} vs {best}"

    def test_open_path_drops_heaviest_edge(self):
        """A cluster plus one far outlier: the far leg should never sit
        in the middle of the path twice (the cycle's heaviest edge is
        dropped, so the outlier ends up terminal)."""
        points = [(0, 0), (0.5, 0), (0, 0.5), (0.5, 0.5), (50, 50)]
        matrix = _euclid_matrix(points)
        order = christofides_order(list(range(5)), matrix, 1.0)
        assert order[0] == 4 or order[-1] == 4

    def test_tour_price_closed_vs_open(self):
        matrix = [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]]
        order = [0, 1, 2]
        open_price = tour_price(order, lambda a, b: matrix[a][b], 1.0)
        closed_price = tour_price(
            order, lambda a, b: matrix[a][b], 1.0, closed=True
        )
        assert closed_price == open_price + 2  # wrap leg costs 2/1 -> 2

    def test_handles_many_points(self):
        import numpy as np

        rng = np.random.default_rng(8)
        points = [tuple(p) for p in rng.uniform(0, 20, size=(40, 2))]
        order = christofides_order(
            list(range(40)), _euclid_matrix(points), 2.0
        )
        assert sorted(order) == list(range(40))
        # Sanity: far better than a random order on raw distance.
        random_order = list(rng.permutation(40))
        assert _path_distance(order, points) < _path_distance(
            random_order, points
        )
