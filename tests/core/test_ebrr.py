"""End-to-end tests for the EBRR driver (Algorithm 1)."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.ebrr import evaluate_route, plan_route
from repro.core.preprocess import preprocess_queries
from repro.exceptions import InfeasibleRouteError
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5


def _config(**overrides):
    defaults = dict(max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1)
    defaults.update(overrides)
    return EBRRConfig(**defaults)


class TestToyEndToEnd:
    def test_example_route(self, toy_instance):
        """On the toy, EBRR should produce the paper's green route
        {v1, v2, v3, v4} (Example 5/10): utility 20."""
        result = plan_route(toy_instance, _config())
        assert sorted(result.route.stops) == [V1, V2, V3, V4]
        assert result.metrics.utility == pytest.approx(20.0)
        assert result.is_feasible

    def test_route_is_valid_bus_route(self, toy_instance):
        result = plan_route(toy_instance, _config())
        result.route.validate_on(toy_instance.network)

    def test_constraints_satisfied(self, toy_instance):
        result = plan_route(toy_instance, _config())
        assert result.route.satisfies_constraints(
            toy_instance.network, max_stops=4, max_adjacent_cost=4.0
        )

    def test_metrics_consistent(self, toy_instance):
        result = plan_route(toy_instance, _config())
        m = result.metrics
        assert m.utility == pytest.approx(
            m.walk_decrease + toy_instance.alpha * m.connectivity
        )
        assert m.walk_cost == pytest.approx(
            toy_instance.baseline_walk() - m.walk_decrease
        )
        assert m.num_stops == result.route.num_stops

    def test_timings_recorded(self, toy_instance):
        result = plan_route(toy_instance, _config())
        for key in ("preprocess", "selection", "ordering", "refinement", "total"):
            assert key in result.timings
            assert result.timings[key] >= 0.0
        assert result.timings["total"] >= result.timings["selection"]

    def test_preprocess_reuse(self, toy_instance):
        pre = preprocess_queries(toy_instance)
        a = plan_route(toy_instance, _config(), preprocess=pre)
        b = plan_route(toy_instance, _config())
        assert a.route.stops == b.route.stops
        assert a.timings["preprocess"] <= b.timings["preprocess"] + 1e-3

    def test_alpha_mismatch_rejected(self, toy_instance):
        with pytest.raises(InfeasibleRouteError, match="alpha"):
            plan_route(toy_instance, _config(alpha=5.0))

    def test_route_id(self, toy_instance):
        result = plan_route(toy_instance, _config(), route_id="my_route")
        assert result.route.route_id == "my_route"


class TestAblationsOnToy:
    def test_without_refinement_fewer_stops(self, toy_instance):
        full = plan_route(toy_instance, _config())
        bare = plan_route(toy_instance, _config(refine_path=False))
        assert bare.metrics.num_stops <= full.metrics.num_stops
        # Fig 16a: refinement does not reduce utility.
        assert full.metrics.utility >= bare.metrics.utility - 1e-9

    def test_variants_same_utility(self, toy_instance):
        base = plan_route(toy_instance, _config())
        for overrides in (
            dict(use_threshold_pruning=False),
            dict(use_lower_bound_price=False),
            dict(use_lazy_selection=False, use_threshold_pruning=False),
        ):
            variant = plan_route(toy_instance, _config(**overrides))
            assert variant.metrics.utility == pytest.approx(
                base.metrics.utility
            )


class TestOnGeneratedCity:
    def test_full_run_feasible(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=12, max_adjacent_cost=2.0, alpha=alpha)
        result = plan_route(instance, config)
        assert result.is_feasible, result.constraint_violations
        assert 2 <= result.metrics.num_stops <= 12
        assert result.metrics.utility > 0
        assert result.metrics.walk_decrease >= 0

    def test_more_stops_do_not_hurt(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        utilities = []
        for k in (4, 8, 16):
            config = EBRRConfig(max_stops=k, max_adjacent_cost=2.0, alpha=alpha)
            utilities.append(plan_route(instance, config).metrics.utility)
        # Greedy noise allowed, but the trend must be non-collapsing.
        assert utilities[-1] >= utilities[0] * 0.9

    def test_deterministic(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=10, max_adjacent_cost=2.0, alpha=alpha)
        a = plan_route(instance, config)
        b = plan_route(instance, config)
        assert a.route.stops == b.route.stops


class TestEvaluateRoute:
    def test_scores_arbitrary_route(self, toy_instance):
        route = BusRoute("manual", [V1, V2, V3], [V1, V2, V3])
        metrics = evaluate_route(toy_instance, route)
        # Walk({v1,v2,v3}) with v3 added: v6->3, v7->7, v8->4 => 14.
        assert metrics.walk_cost == pytest.approx(14.0)
        assert metrics.connectivity == 4
        assert metrics.utility == pytest.approx((26 - 14) + 4)

    def test_route_length(self, toy_instance):
        route = BusRoute("manual", [V1, V3], [V1, V2, V3])
        assert evaluate_route(toy_instance, route).route_length == (
            pytest.approx(8.0)
        )

    def test_summary_and_feasibility(self, toy_instance):
        result = plan_route(toy_instance, _config())
        text = result.summary()
        assert "utility" in text and "stops" in text


class TestSearchStats:
    def test_plan_route_reports_per_phase_stats(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha)
        from repro.network.engine import SearchEngine

        # A private engine guarantees a cold cache regardless of what
        # earlier tests did to the network's shared engine.
        result = plan_route(
            instance, config, engine=SearchEngine(instance.network)
        )
        # Every pipeline phase ran graph searches on a fresh engine.
        for phase in ("preprocess", "selection", "ordering", "refinement"):
            assert phase in result.search_stats, phase
            assert result.search_stats[phase].searches > 0
        total = result.total_search_stats
        assert total.settled > 0 and total.pushes > 0
        assert total.searches == sum(
            s.searches for s in result.search_stats.values()
        )

    def test_reused_preprocess_contributes_no_preprocess_phase(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=6, max_adjacent_cost=2.0, alpha=alpha)
        pre = preprocess_queries(instance)
        result = plan_route(instance, config, preprocess=pre)
        assert "preprocess" not in result.search_stats
        assert result.total_search_stats.searches > 0

    def test_shared_engine_caches_ordering_rows_across_k_sweep(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        pre = preprocess_queries(instance)
        first = plan_route(
            instance,
            EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha),
            preprocess=pre,
        )
        second = plan_route(
            instance,
            EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha),
            preprocess=pre,
        )
        assert second.route.stops == first.route.stops
        # The repeat run serves its ordering rows from the shared cache.
        assert second.search_stats["ordering"].cache_hits > 0
        assert (
            second.search_stats["ordering"].settled
            < first.search_stats["ordering"].settled
            or first.search_stats["ordering"].settled == 0
        )
