"""Unit tests for the exhaustive OPT solver and the approximation
relationship with EBRR (Theorem 4 / Fig. 11a)."""

import itertools

import pytest

from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.exact import optimal_stop_set
from repro.exceptions import ConfigurationError

from ..conftest import V1, V2, V3, V4, V5


class TestOptimalOnToy:
    def test_matches_brute_force(self, toy_instance):
        """Cross-check the fast evaluator against direct utility
        evaluation over every subset."""
        universe = [V3, V4, V5, V1, V2]
        for k in (1, 2, 3):
            best_direct = max(
                (
                    toy_instance.utility(list(subset))
                    for size in range(1, k + 1)
                    for subset in itertools.combinations(universe, size)
                ),
                default=0.0,
            )
            _, best_fast = optimal_stop_set(toy_instance, k)
            assert best_fast == pytest.approx(best_direct)

    def test_k1_optimum_is_v3(self, toy_instance):
        best_set, best_utility = optimal_stop_set(toy_instance, 1)
        assert best_set == [V3]
        assert best_utility == pytest.approx(12.0)

    def test_k4_includes_paper_route_value(self, toy_instance):
        """U({v1,v2,v3,v4}) = 20 is achievable at K=4, so OPT >= 20."""
        _, best_utility = optimal_stop_set(toy_instance, 4)
        assert best_utility >= 20.0 - 1e-9

    def test_monotone_in_k(self, toy_instance):
        values = [optimal_stop_set(toy_instance, k)[1] for k in (1, 2, 3, 4, 5)]
        assert values == sorted(values)

    def test_ebrr_never_beats_opt(self, toy_instance):
        for k in (2, 3, 4):
            config = EBRRConfig(
                max_stops=k, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
            )
            result = plan_route(toy_instance, config)
            _, opt = optimal_stop_set(toy_instance, k)
            assert result.metrics.utility <= opt + 1e-9

    def test_ebrr_beats_theoretical_bound(self, toy_instance):
        """Theorem 4's bound is loose; the paper observes ratios near 1.
        On the toy, EBRR at K=4 should be at least 60% of OPT."""
        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
        )
        result = plan_route(toy_instance, config)
        _, opt = optimal_stop_set(toy_instance, 4)
        assert result.metrics.utility >= 0.6 * opt


class TestConstraintsAndValidation:
    def test_c_connectable_filter(self, toy_instance):
        """With require_c_connectable and a tiny C, far-apart pairs are
        rejected, so the optimum falls back to tighter sets."""
        loose_set, loose = optimal_stop_set(toy_instance, 2)
        tight_set, tight = optimal_stop_set(
            toy_instance, 2, max_adjacent_cost=4.0, require_c_connectable=True
        )
        assert tight <= loose + 1e-9
        # {v3, v4} is 4 apart -> allowed; {v3, v5} is 8 apart -> not.
        if len(tight_set) == 2:
            from repro.network.dijkstra import distance_between

            a, b = tight_set
            assert distance_between(toy_instance.network, a, b) <= 4.0 + 1e-9

    def test_invalid_k(self, toy_instance):
        with pytest.raises(ConfigurationError):
            optimal_stop_set(toy_instance, 0)

    def test_connectable_requires_c(self, toy_instance):
        with pytest.raises(ConfigurationError):
            optimal_stop_set(toy_instance, 2, require_c_connectable=True)

    def test_too_large_universe_rejected(self, small_city):
        instance = small_city.instance(alpha=1.0)
        with pytest.raises(ConfigurationError, match="intractable"):
            optimal_stop_set(instance, 3)


class TestSmallExtract:
    def test_paper_counts(self):
        from repro.datasets import small_nyc_extract

        extract = small_nyc_extract()
        assert len(extract.transit.existing_stops) == 7
        assert len(extract.candidates) == 7
        assert len(extract.queries) == 132
        assert extract.network.num_nodes >= 100

    def test_fig11a_ratio_close_to_one(self):
        from repro.datasets import small_nyc_extract

        extract = small_nyc_extract()
        instance = extract.instance(alpha=1.0)
        config = EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=1.0)
        result = plan_route(instance, config)
        _, opt = optimal_stop_set(instance, 8)
        assert result.metrics.utility <= opt + 1e-9
        assert result.metrics.utility >= 0.8 * opt
