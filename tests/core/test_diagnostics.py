"""Unit tests for the run diagnostics report."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.diagnostics import explain_result, selection_table
from repro.core.ebrr import plan_route

from ..conftest import V1, V3, V4


@pytest.fixture
def toy_result(toy_instance):
    config = EBRRConfig(
        max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
    )
    return plan_route(toy_instance, config)


class TestSelectionTable:
    def test_rows_match_trace(self, toy_instance, toy_result):
        rows = selection_table(toy_instance, toy_result)
        assert [row["stop"] for row in rows] == [V1, V3, V4]
        assert rows[0]["kind"] == "existing"
        assert rows[1]["kind"] == "new"
        # Example 8's numbers: v3 gain 12 price 2 ratio 6; v4 gain 4/1.
        assert rows[1]["gain"] == pytest.approx(12.0)
        assert rows[1]["price"] == 2
        assert rows[1]["ratio"] == pytest.approx(6.0)
        assert rows[2]["ratio"] == pytest.approx(4.0)

    def test_seed_has_no_price(self, toy_instance, toy_result):
        rows = selection_table(toy_instance, toy_result)
        assert rows[0]["price"] == "-"


class TestExplainResult:
    def test_report_sections(self, toy_instance, toy_result):
        text = explain_result(toy_instance, toy_result)
        assert "EBRR run report" in text
        assert "selection trace" in text
        assert "phase timings" in text
        assert "constraints: satisfied" in text
        assert "Theorem 3 budget audit: ok" in text
        assert "Theorem 4 guarantee" in text

    def test_reports_violations(self, toy_instance):
        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1,
            refine_path=False,
        )
        result = plan_route(toy_instance, config)
        text = explain_result(toy_instance, result)
        if not result.is_feasible:
            assert "VIOLATED" in text

    def test_report_on_generated_city(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha)
        result = plan_route(instance, config)
        text = explain_result(instance, result)
        assert f"K={config.max_stops}" in text
        assert "utility" in text
