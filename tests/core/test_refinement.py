"""Unit tests for Algorithm 5 (path refinement) — Example 10 plus the
K-matching behaviour."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.preprocess import preprocess_queries
from repro.core.refinement import refine_path
from repro.core.selection import SelectionState
from repro.exceptions import InfeasibleRouteError

from ..conftest import V1, V2, V3, V4, V5


def _state(instance, config):
    pre = preprocess_queries(instance)
    return SelectionState(instance, pre, config)


class TestExample10:
    def test_intermediate_stop_inserted(self, toy_instance):
        """Example 10: order (v1, v3, v4) with C=4 needs v2 between v1
        and v3, giving pi = (v1, v2, v3, v4)."""
        config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V3, V4):
            state.select(stop)
        stops, path = refine_path(state, [V1, V3, V4], config)
        assert stops == [V1, V2, V3, V4]
        assert path == [V1, V2, V3, V4]

    def test_adjacent_costs_satisfied(self, toy_instance):
        config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V3, V4):
            state.select(stop)
        stops, path = refine_path(state, [V1, V3, V4], config)
        from repro.transit.route import BusRoute

        route = BusRoute("r", stops, path)
        assert route.satisfies_constraints(
            toy_instance.network, max_stops=4, max_adjacent_cost=4.0
        )


class TestStopCountMatching:
    def test_padding_toward_k(self, toy_instance):
        """With K=5 the refinement extends a terminal (the paper: 'this
        final step usually adds stops')."""
        config = EBRRConfig(max_stops=5, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V3):
            state.select(stop)
        stops, path = refine_path(state, [V1, V3], config)
        assert len(stops) >= 3  # v1, v2 (intermediate), v3, plus padding
        assert len(stops) <= 5

    def test_never_exceeds_k(self, toy_instance):
        config = EBRRConfig(max_stops=3, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V3, V4):
            state.select(stop)
        stops, _ = refine_path(state, [V1, V3, V4], config)
        assert len(stops) <= 3

    def test_trimming_drops_weaker_terminal(self, toy_instance):
        """When trimming is needed, the terminal with the smaller
        initial utility goes first (v1 has U=3 vs v4's U=8)."""
        config = EBRRConfig(max_stops=3, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V3, V4):
            state.select(stop)
        stops, _ = refine_path(state, [V1, V3, V4], config)
        # Inserted v2 makes 4 stops; trimming drops v1 (weakest terminal).
        assert V4 in stops
        assert len(stops) == 3

    def test_stops_unique(self, toy_instance):
        config = EBRRConfig(max_stops=5, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V4):
            state.select(stop)
        stops, _ = refine_path(state, [V1, V4], config)
        assert len(set(stops)) == len(stops)

    def test_path_contains_stops_in_order(self, toy_instance):
        config = EBRRConfig(max_stops=5, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        for stop in (V1, V5):
            state.select(stop)
        stops, path = refine_path(state, [V1, V5], config)
        from repro.transit.route import BusRoute

        BusRoute("check", stops, path)  # validates the subsequence rule
        assert toy_instance.network.is_path(path)

    def test_empty_order_rejected(self, toy_instance):
        config = EBRRConfig(max_stops=3, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(toy_instance, config)
        with pytest.raises(InfeasibleRouteError):
            refine_path(state, [], config)


class TestCorollary1:
    def test_stop_count_equals_price_sum_plus_one(self, toy_instance):
        """Corollary 1: the sum of virtual-edge prices in the selection
        tree equals the number of stops needed to connect the profitable
        stops minus one.  On the toy (Example 8/10): prices 2 + 1 = 3,
        and the realized route v1-v2-v3-v4 has exactly 4 stops."""
        from repro.core.ebrr import plan_route

        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
        )
        result = plan_route(toy_instance, config)
        assert result.trace.prices == [2, 1]
        assert result.metrics.num_stops == result.trace.total_price + 1


class TestSparseCandidates:
    def test_sparse_candidates_best_effort(self, toy_transit, toy_network):
        """With an ultra-sparse S_new, legs longer than C cannot host
        intermediates; refinement emits the leg and the driver records
        the violation instead of crashing."""
        from repro.core.utility import BRRInstance
        from repro.demand.query import QuerySet

        instance = BRRInstance(
            toy_transit,
            QuerySet(toy_network, [V5]),
            candidates=[V5],
            alpha=1.0,
        )
        config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
        state = _state(instance, config)
        state.select(V1)
        state.select(V5)
        stops, path = refine_path(state, [V1, V5], config)
        assert stops[0] == V1
        assert V5 in stops
