"""Unit tests for sequential multi-route planning."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.multi_route import plan_routes
from repro.exceptions import ConfigurationError


@pytest.fixture
def config():
    return EBRRConfig(max_stops=6, max_adjacent_cost=2.0, alpha=25.0)


class TestPlanRoutes:
    def test_plans_requested_count(self, small_city, config):
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=2
        )
        assert result.num_routes == 2
        assert len(result.per_route) == 2
        assert result.final_transit.num_routes == (
            small_city.transit.num_routes + 2
        )

    def test_routes_have_distinct_ids(self, small_city, config):
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=3
        )
        ids = [r.route_id for r in result.routes]
        assert len(set(ids)) == len(ids)

    def test_each_round_respects_constraints(self, small_city, config):
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=2
        )
        for round_result in result.per_route:
            assert round_result.is_feasible, round_result.constraint_violations
            assert round_result.metrics.num_stops <= config.max_stops

    def test_later_routes_avoid_earlier_stops(self, small_city, config):
        """A stop of round 0 becomes an existing stop in round 1, so it
        cannot be selected as a *new* stop again (it may still appear
        as a transfer point — but never counted as a fresh candidate)."""
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=2
        )
        if result.num_routes == 2:
            first = result.per_route[0]
            second = result.per_route[1]
            # second round's instance treats first-round stops as existing
            first_new = {
                s for s in first.route.stops
                if not small_city.transit.is_stop(s)
            }
            second_new_claims = set(second.route.stops) & first_new
            # they may be shared as transfer stops; but the walk gain of
            # the second route must come from elsewhere, so total
            # decrease exceeds the first round's alone
            assert result.total_walk_decrease >= (
                first.metrics.walk_decrease - 1e-6
            )

    def test_marginal_utilities_decrease(self, small_city, config):
        """Submodularity at the program level: each round's utility
        (on its own residual instance) is no greater than the first
        round's, up to greedy noise."""
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=3
        )
        utilities = [r.metrics.utility for r in result.per_route]
        assert utilities[-1] <= utilities[0] * 1.1

    def test_min_marginal_utility_stops_early(self, small_city, config):
        result = plan_routes(
            small_city.transit,
            small_city.queries,
            config,
            num_routes=10,
            min_marginal_utility=1e12,
        )
        assert result.num_routes == 1  # round 0 always kept

    def test_invalid_count(self, small_city, config):
        with pytest.raises(ConfigurationError):
            plan_routes(
                small_city.transit, small_city.queries, config, num_routes=0
            )

    def test_timing_recorded(self, small_city, config):
        result = plan_routes(
            small_city.transit, small_city.queries, config, num_routes=1
        )
        assert result.total_elapsed_s > 0.0

    def test_explicit_candidates_shrink(self, small_city, config):
        instance = small_city.instance(alpha=config.alpha)
        candidates = instance.candidates[:40]
        result = plan_routes(
            small_city.transit,
            small_city.queries,
            config,
            num_routes=2,
            candidates=candidates,
        )
        # Round 1's route must not reuse round 0's candidate picks.
        if result.num_routes == 2:
            used_first = set(result.routes[0].stops) & set(candidates)
            used_second = set(result.routes[1].stops) & used_first
            assert not used_second
