"""Unit tests for the Theorem 3/4 bound calculators."""

import math

import pytest

from repro.core.bounds import (
    GUARANTEE_UPPER_BOUND,
    approximation_bound,
    audit_stop_budget,
    diameter_upper_bound,
    double_sweep_diameter,
    network_diameter,
)
from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.exceptions import ConfigurationError

from ..conftest import V1


class TestDiameters:
    def test_exact_toy_diameter(self, toy_network):
        # farthest pair: v1 to v5 = 16 (or v8 to v5 = 16)
        assert network_diameter(toy_network) == pytest.approx(16.0)

    def test_double_sweep_lower_bounds_exact(self, toy_network, grid_network):
        for network in (toy_network, grid_network):
            exact = network_diameter(network)
            sweep = double_sweep_diameter(network)
            assert sweep <= exact + 1e-9
            assert sweep >= exact * 0.5  # sweeps are good on road-like graphs

    def test_upper_bound_upper_bounds_exact(self, toy_network, grid_network):
        for network in (toy_network, grid_network):
            exact = network_diameter(network)
            upper = diameter_upper_bound(network)
            assert upper >= exact - 1e-9
            assert upper <= 2 * exact + 1e-9

    def test_sampled_diameter(self, grid_network):
        sampled = network_diameter(grid_network, sample=[0])
        assert sampled <= network_diameter(grid_network) + 1e-9

    def test_empty_sample_rejected(self, toy_network):
        with pytest.raises(ConfigurationError):
            network_diameter(toy_network, sample=[])


class TestApproximationBound:
    def test_paper_default_settings(self):
        """The paper: with C=2 and max dist = 80, the guarantee is
        1 - exp(-1/60) ≈ 0.02."""
        bound_ratio = 1.0 - math.exp(-2.0 * 2.0 / (3.0 * 80.0))
        assert bound_ratio == pytest.approx(1.0 - math.exp(-1.0 / 60.0))
        assert bound_ratio == pytest.approx(0.0165, abs=2e-3)

    def test_toy_bound(self, toy_network):
        bound = approximation_bound(
            toy_network, 4.0, diameter=network_diameter(toy_network)
        )
        expected = 1.0 - math.exp(-2.0 * 4.0 / (3.0 * 16.0))
        assert bound.ratio == pytest.approx(expected)
        assert bound.diameter == pytest.approx(16.0)
        assert bound.upper_envelope == pytest.approx(GUARANTEE_UPPER_BOUND)

    def test_capped_by_envelope(self, toy_network):
        """With huge C the formula exceeds 1 - e^{-2/3}; the cap holds."""
        bound = approximation_bound(toy_network, 1e9, diameter=16.0)
        assert bound.ratio == pytest.approx(GUARANTEE_UPPER_BOUND)

    def test_grows_with_c(self, toy_network):
        ratios = [
            approximation_bound(toy_network, c, diameter=16.0).ratio
            for c in (1.0, 2.0, 4.0, 8.0)
        ]
        assert ratios == sorted(ratios)

    def test_default_uses_safe_diameter(self, toy_network):
        default = approximation_bound(toy_network, 4.0)
        exact = approximation_bound(
            toy_network, 4.0, diameter=network_diameter(toy_network)
        )
        assert default.ratio <= exact.ratio + 1e-12

    def test_invalid_inputs(self, toy_network):
        with pytest.raises(ConfigurationError):
            approximation_bound(toy_network, 0.0)
        with pytest.raises(ConfigurationError):
            approximation_bound(toy_network, 2.0, diameter=0.0)

    def test_empirical_ratio_beats_guarantee(self, toy_instance):
        """Fig. 11a's point: the guarantee is loose; EBRR's empirical
        ratio easily exceeds it on the toy instance."""
        from repro.core.exact import optimal_stop_set

        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
        )
        result = plan_route(toy_instance, config)
        _, opt = optimal_stop_set(toy_instance, 4)
        bound = approximation_bound(toy_instance.network, 4.0)
        assert result.metrics.utility / opt >= bound.ratio


class TestAuditStopBudget:
    def test_passes_on_normal_run(self, toy_instance):
        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
        )
        result = plan_route(toy_instance, config)
        assert audit_stop_budget(result)

    def test_passes_on_generated_city(self, small_city):
        instance = small_city.instance(alpha=25.0)
        config = EBRRConfig(max_stops=9, max_adjacent_cost=2.0, alpha=25.0)
        assert audit_stop_budget(plan_route(instance, config))
