"""Unit tests for the BRR instance and the exact objective functions —
the paper's Examples 2, 3, 4, and 5 verified number for number."""

import pytest

from repro.core.utility import BRRInstance
from repro.exceptions import ConfigurationError, DemandError

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


class TestPaperExamples:
    def test_example2_walking_cost_of_single_query(self, toy_instance):
        """Example 2: f(q, S_existing) = dist(v6,v2) + dist(v1,v1) = 7."""
        from repro.network.dijkstra import multi_source_costs

        dist = multi_source_costs(
            toy_instance.network, toy_instance.existing_stops
        )
        assert dist[V6] + dist[V1] == pytest.approx(7.0)

    def test_example3_walk_existing(self, toy_instance):
        """Example 3: Walk(S_existing) = 26."""
        assert toy_instance.baseline_walk() == pytest.approx(26.0)

    def test_example3_walk_with_new_stops(self, toy_instance):
        """Example 3: Walk({v1, v2, v3, v4}) = 10."""
        assert toy_instance.walk([V1, V2, V3, V4]) == pytest.approx(10.0)

    def test_example5_utility(self, toy_instance):
        """Example 5: U({v1,v2,v3,v4}) = 26 - 10 + 1*4 = 20."""
        assert toy_instance.utility([V1, V2, V3, V4]) == pytest.approx(20.0)

    def test_example4_connectivity_via_instance(self, toy_instance):
        assert toy_instance.connectivity([V1]) == 3
        assert toy_instance.connectivity([V1, V2]) == 4

    def test_single_stop_utilities_match_example7(self, toy_instance):
        """Example 7 initial utilities: U(v3)=12, U(v4)=8, U(v5)=4,
        U(v1)=3, U(v2)=2 (alpha=1)."""
        assert toy_instance.utility([V3]) == pytest.approx(12.0)
        assert toy_instance.utility([V4]) == pytest.approx(8.0)
        assert toy_instance.utility([V5]) == pytest.approx(4.0)
        assert toy_instance.utility([V1]) == pytest.approx(3.0)
        assert toy_instance.utility([V2]) == pytest.approx(2.0)


class TestInstanceValidation:
    def test_alpha_positive(self, toy_transit, toy_queries):
        with pytest.raises(ConfigurationError):
            BRRInstance(toy_transit, toy_queries, alpha=0.0)

    def test_candidates_disjoint_from_existing(self, toy_transit, toy_queries):
        with pytest.raises(ConfigurationError, match="disjoint"):
            BRRInstance(
                toy_transit, toy_queries, candidates=[V1, V3], alpha=1.0
            )

    def test_default_candidates_are_non_stops(self, toy_transit, toy_queries):
        instance = BRRInstance(toy_transit, toy_queries, alpha=1.0)
        assert instance.candidates == [V3, V4, V5, V6, V7, V8]

    def test_query_counts_multiset(self, toy_instance):
        assert toy_instance.query_counts == {V1: 3, V6: 1, V7: 1, V8: 1}

    def test_mismatched_network_rejected(self, toy_transit, grid_network):
        from repro.demand.query import QuerySet

        foreign = QuerySet(grid_network, [0, 1])
        with pytest.raises(DemandError, match="share"):
            BRRInstance(toy_transit, foreign, alpha=1.0)

    def test_utility_of_unknown_stop_rejected(self, toy_instance):
        with pytest.raises(ConfigurationError, match="neither"):
            toy_instance.utility([V6])  # v6 not in the explicit S_new

    def test_walk_empty_rejected(self, toy_instance):
        with pytest.raises(ConfigurationError):
            toy_instance.walk([])


class TestObjectiveProperties:
    def test_utility_empty_set_zero(self, toy_instance):
        assert toy_instance.utility([]) == 0.0

    def test_monotonicity(self, toy_instance):
        """Theorem 1 (monotone part) on all nested pairs in the toy."""
        universe = [V3, V4, V5, V1, V2]
        for i in range(len(universe)):
            smaller = universe[:i]
            larger = universe[: i + 1]
            assert toy_instance.utility(larger) >= (
                toy_instance.utility(smaller) - 1e-9
            )

    def test_marginal_utility_consistency(self, toy_instance):
        base = [V3]
        for v in (V4, V5, V1, V2):
            marginal = toy_instance.marginal_utility(v, base)
            direct = toy_instance.utility(base + [v]) - toy_instance.utility(base)
            assert marginal == pytest.approx(direct)

    def test_walk_decrease_definition(self, toy_instance):
        decrease = toy_instance.walk_decrease([V3, V4])
        assert decrease == pytest.approx(
            toy_instance.baseline_walk()
            - toy_instance.walk([V1, V2, V3, V4])
        )

    def test_existing_stops_give_no_walk_decrease(self, toy_instance):
        """Walk(S_existing ∪ {v}) = Walk(S_existing) for v existing."""
        assert toy_instance.walk_decrease([]) == pytest.approx(0.0)
        assert toy_instance.utility([V1]) == pytest.approx(
            toy_instance.alpha * 3
        )

    def test_baseline_walk_cached(self, toy_instance):
        first = toy_instance.baseline_walk()
        assert toy_instance.baseline_walk() is not None
        assert toy_instance.baseline_walk() == first

    def test_repr(self, toy_instance):
        text = repr(toy_instance)
        assert "|Q|=6" in text
        assert "|S_new|=3" in text
