"""Unit tests for Algorithm 3 (stop selection) — the paper's Example 8
walked through exactly, plus equivalence of the selection variants."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.preprocess import preprocess_queries
from repro.core.selection import SelectionState, run_selection
from repro.exceptions import ConfigurationError

from ..conftest import V1, V2, V3, V4, V5


@pytest.fixture
def pre(toy_instance):
    return preprocess_queries(toy_instance)


def _config(**overrides):
    defaults = dict(max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1)
    defaults.update(overrides)
    return EBRRConfig(**defaults)


class TestExample8:
    """Example 8: K=4, C=4, B(0)={v1}; the first iteration picks v3
    (ΔU=12, p=2), the second picks v4 (ΔU=4, p=1), and the loop stops
    because 2 + 1 >= 2K/3 = 8/3."""

    def test_selection_order(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config())
        assert trace.selected == [V1, V3, V4]

    def test_prices(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config())
        assert trace.prices == [2, 1]
        assert trace.total_price == 3
        assert trace.total_price >= 2 * 4 / 3

    def test_gains(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config())
        # U(v1)=3, ΔU(v3)=12, ΔU_{v1,v3}(v4)=4
        assert trace.gains == [
            pytest.approx(3.0),
            pytest.approx(12.0),
            pytest.approx(4.0),
        ]

    def test_total_gain_telescopes_to_exact_utility(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config())
        assert trace.total_gain == pytest.approx(
            toy_instance.utility(trace.selected)
        )


class TestSelectionState:
    def test_marginal_gain_initial(self, toy_instance, pre):
        state = SelectionState(toy_instance, pre, _config())
        assert state.marginal_gain(V3) == pytest.approx(12.0)
        assert state.marginal_gain(V1) == pytest.approx(3.0)

    def test_marginal_gain_after_selection(self, toy_instance, pre):
        state = SelectionState(toy_instance, pre, _config())
        state.select(V3)
        # Example 8 second iteration: ΔU(v4) = 4 (v7's d_cur fell to 7).
        assert state.marginal_gain(V4) == pytest.approx(4.0)
        # v5 offers max(7-7, 0) = 0 now.
        assert state.marginal_gain(V5) == pytest.approx(0.0)

    def test_connectivity_gains_shrink(self, toy_instance, pre):
        state = SelectionState(toy_instance, pre, _config())
        state.select(V1)
        # v2 only adds route_4 once v1's three routes are covered.
        assert state.marginal_gain(V2) == pytest.approx(1.0)

    def test_true_price_example6(self, toy_instance, pre):
        state = SelectionState(toy_instance, pre, _config())
        state.select(V1)
        assert state.true_price(V3) == 2
        assert state.true_price(V2) == 1

    def test_duplicate_selection_rejected(self, toy_instance, pre):
        state = SelectionState(toy_instance, pre, _config())
        state.select(V1)
        with pytest.raises(ConfigurationError):
            state.select(V1)

    def test_marginal_gain_matches_exact(self, toy_instance, pre):
        """The incremental ΔU equals the exact two-evaluation ΔU at
        every step of a full selection."""
        state = SelectionState(toy_instance, pre, _config())
        base = []
        for stop in (V1, V3, V4, V2, V5):
            incremental = state.marginal_gain(stop)
            exact = toy_instance.marginal_utility(stop, base)
            assert incremental == pytest.approx(exact), f"stop {stop}"
            state.select(stop)
            base.append(stop)


class TestVariantsAgree:
    """All selection strategies must pick the same stops on the toy
    instance (they optimize the same ratio; only the work differs)."""

    def test_exhaustive_matches_lazy(self, toy_instance, pre):
        lazy = run_selection(toy_instance, pre, _config())
        vanilla = run_selection(
            toy_instance,
            pre,
            _config(use_lazy_selection=False, use_threshold_pruning=False),
        )
        assert lazy.selected == vanilla.selected
        assert lazy.prices == vanilla.prices

    def test_real_price_matches(self, toy_instance, pre):
        lazy = run_selection(toy_instance, pre, _config())
        real = run_selection(
            toy_instance, pre, _config(use_lower_bound_price=False)
        )
        assert lazy.selected == real.selected

    def test_no_pruning_matches(self, toy_instance, pre):
        lazy = run_selection(toy_instance, pre, _config())
        unpruned = run_selection(
            toy_instance, pre, _config(use_threshold_pruning=False)
        )
        assert lazy.selected == unpruned.selected

    def test_variants_agree_on_generated_city(self, small_city):
        from repro.core.preprocess import preprocess_queries as pq

        instance = small_city.instance(alpha=50.0)
        pre = preprocess_queries_cached = pq(instance)
        config = EBRRConfig(max_stops=10, max_adjacent_cost=2.0, alpha=50.0)
        lazy = run_selection(instance, pre, config)
        vanilla = run_selection(
            instance,
            pre,
            EBRRConfig(
                max_stops=10, max_adjacent_cost=2.0, alpha=50.0,
                use_lazy_selection=False, use_threshold_pruning=False,
            ),
        )
        # Same greedy optimum (ties could differ; utilities must match).
        assert lazy.total_gain == pytest.approx(vanilla.total_gain, rel=1e-9)
        assert vanilla.evaluations >= lazy.evaluations


class TestBudgetAndEdgeCases:
    def test_budget_respected(self, toy_instance, pre):
        for k in (2, 3, 4, 6, 9):
            config = _config(max_stops=k)
            trace = run_selection(toy_instance, pre, config)
            budget = 2 * k / 3
            # Stops only after meeting the budget (or exhausting stops).
            if trace.total_price < budget:
                assert len(trace.selected) == 5  # everything selected
            if len(trace.prices) > 1:
                assert sum(trace.prices[:-1]) < budget

    def test_explicit_seed(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config(seed_stop=V5))
        assert trace.selected[0] == V5

    def test_default_seed_is_best_utility(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config(seed_stop=None))
        assert trace.selected[0] == V3

    def test_invalid_seed_rejected(self, toy_instance, pre):
        from ..conftest import V6

        with pytest.raises(ConfigurationError):
            run_selection(toy_instance, pre, _config(seed_stop=V6))

    def test_selected_are_unique(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config(max_stops=30))
        assert len(set(trace.selected)) == len(trace.selected)

    def test_evaluations_counted(self, toy_instance, pre):
        trace = run_selection(toy_instance, pre, _config())
        assert trace.evaluations >= len(trace.selected) - 1
        assert trace.queue_inserts >= 1


class TestExhaustiveTieBreak:
    """The lowest-id tie-break of `_pick_exhaustive` must fire on ratios
    that are equal up to float noise, not only on bit-identical ones."""

    class _FakeState:
        """Duck-typed stand-in for SelectionState: `_pick_exhaustive`
        only touches selected_set, marginal_gain, and true_price."""

        def __init__(self, gains, prices):
            self.selected_set = set()
            self._gains = gains
            self._prices = prices

        def marginal_gain(self, stop):
            return self._gains[stop]

        def true_price(self, stop):
            return self._prices[stop]

    def _pick(self, gains, prices, order):
        from repro.core.selection import SelectionTrace, _pick_exhaustive

        state = self._FakeState(gains, prices)
        config = _config(use_lazy_selection=False, use_threshold_pruning=False)
        trace = SelectionTrace()
        picked = _pick_exhaustive(state, order, config, trace)
        assert picked is not None
        return picked[0]

    def test_exact_tie_prefers_lowest_id(self):
        gains = {7: 6.0, 3: 6.0}
        prices = {7: 2.0, 3: 2.0}
        assert self._pick(gains, prices, [(6.0, 7), (6.0, 3)]) == 3

    def test_ulp_noise_does_not_defeat_tie_break(self):
        # Same true ratio computed through different summation orders:
        # off by one ulp.  The higher id comes first in the order and is
        # infinitesimally "larger"; the tie-break must still pick id 3.
        noisy = (0.1 + 0.2) + 0.3   # 0.6000000000000001
        clean = 0.1 + (0.2 + 0.3)   # 0.6
        assert noisy != clean       # the trap is real
        gains = {7: noisy, 3: clean}
        prices = {7: 1.0, 3: 1.0}
        assert self._pick(gains, prices, [(noisy, 7), (clean, 3)]) == 3

    def test_genuinely_larger_ratio_still_wins(self):
        gains = {7: 8.0, 3: 6.0}
        prices = {7: 2.0, 3: 2.0}
        assert self._pick(gains, prices, [(8.0, 7), (6.0, 3)]) == 7
