"""Unit tests for the post-processing local search (the paper's
future-work second stage)."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.ebrr import evaluate_route, plan_route
from repro.core.postprocess import postprocess_route
from repro.exceptions import ConfigurationError
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5


def _config(**overrides):
    defaults = dict(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
    defaults.update(overrides)
    return EBRRConfig(**defaults)


class TestImprovement:
    def test_improves_a_bad_route(self, toy_instance):
        """Start from the deliberately poor route {v1, v2}: the search
        should substitute toward the demand (v3/v4 side)."""
        bad = BusRoute("bad", [V1, V2], [V1, V2])
        result = postprocess_route(toy_instance, bad, _config())
        assert result.metrics.utility >= result.initial_utility
        assert result.improvement >= 0.0

    def test_never_decreases_utility(self, toy_instance):
        for stops, path in (
            ([V1, V2], [V1, V2]),
            ([V2, V3], [V2, V3]),
            ([V3, V4, V5], [V3, V4, V5]),
        ):
            route = BusRoute("r", stops, path)
            result = postprocess_route(toy_instance, route, _config())
            assert result.metrics.utility >= (
                toy_instance.utility(stops) - 1e-9
            )

    def test_ebrr_route_is_near_local_optimum(self, toy_instance):
        """EBRR already finds the toy optimum; post-processing should
        find nothing (or only ties)."""
        config = _config(seed_stop=V1)
        first_stage = plan_route(toy_instance, config)
        result = postprocess_route(toy_instance, first_stage.route, config)
        assert result.metrics.utility == pytest.approx(
            first_stage.metrics.utility
        )

    def test_improves_baseline_route_on_city(self, small_city):
        """The intended workflow: polish a baseline's route."""
        from repro.baselines.vk_tsp import VkTSP

        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha)
        baseline = VkTSP(seed=1).plan(instance, config)
        result = postprocess_route(
            instance, baseline.route, config, max_rounds=2
        )
        assert result.metrics.utility >= baseline.metrics.utility - 1e-9


class TestConstraints:
    def test_keeps_stop_count(self, toy_instance):
        route = BusRoute("r", [V1, V2, V3], [V1, V2, V3])
        result = postprocess_route(toy_instance, route, _config())
        assert result.route.num_stops == 3

    def test_result_satisfies_c_when_input_does(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=alpha)
        first = plan_route(instance, config)
        assert first.is_feasible
        result = postprocess_route(instance, first.route, config)
        costs = result.route.adjacent_stop_costs(instance.network)
        assert all(c <= config.max_adjacent_cost + 1e-6 for c in costs)

    def test_stops_remain_valid_locations(self, small_city):
        alpha = 25.0
        instance = small_city.instance(alpha)
        config = EBRRConfig(max_stops=6, max_adjacent_cost=2.0, alpha=alpha)
        first = plan_route(instance, config)
        result = postprocess_route(instance, first.route, config)
        for stop in result.route.stops:
            assert instance.is_candidate[stop] or instance.is_existing[stop]
        result.route.validate_on(instance.network)

    def test_no_duplicate_stops(self, toy_instance):
        route = BusRoute("r", [V1, V2, V3], [V1, V2, V3])
        result = postprocess_route(toy_instance, route, _config())
        assert len(set(result.route.stops)) == result.route.num_stops


class TestBookkeeping:
    def test_unchanged_route_returned_as_is(self, toy_instance):
        config = _config(seed_stop=V1)
        first = plan_route(toy_instance, config)
        result = postprocess_route(toy_instance, first.route, config)
        if result.moves_applied == 0:
            assert result.route is first.route

    def test_counters(self, toy_instance):
        route = BusRoute("r", [V1, V2], [V1, V2])
        result = postprocess_route(toy_instance, route, _config(), max_rounds=2)
        assert result.rounds >= 1
        assert result.moves_applied >= 0
        assert result.elapsed_s >= 0.0

    def test_invalid_params(self, toy_instance):
        route = BusRoute("r", [V1, V2], [V1, V2])
        with pytest.raises(ConfigurationError):
            postprocess_route(toy_instance, route, _config(), max_rounds=0)
        with pytest.raises(ConfigurationError):
            postprocess_route(
                toy_instance, route, _config(), neighborhood_cost=0.0
            )
