"""Unit tests for the EBRR configuration."""

import pytest

from repro.core.config import DEFAULT_PRICE_BUDGET_FRACTION, EBRRConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_valid_defaults(self):
        config = EBRRConfig(max_stops=10, max_adjacent_cost=2.0, alpha=1.0)
        assert config.use_threshold_pruning
        assert config.use_lazy_selection
        assert config.use_lower_bound_price
        assert config.refine_path
        assert config.seed_stop is None

    def test_k_minimum(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            EBRRConfig(max_stops=1, max_adjacent_cost=2.0)

    def test_c_positive(self):
        with pytest.raises(ConfigurationError):
            EBRRConfig(max_stops=5, max_adjacent_cost=0.0)
        with pytest.raises(ConfigurationError):
            EBRRConfig(max_stops=5, max_adjacent_cost=-1.0)

    def test_alpha_positive(self):
        with pytest.raises(ConfigurationError):
            EBRRConfig(max_stops=5, max_adjacent_cost=2.0, alpha=0.0)

    def test_budget_fraction_range(self):
        with pytest.raises(ConfigurationError):
            EBRRConfig(max_stops=5, max_adjacent_cost=2.0,
                       price_budget_fraction=0.0)
        with pytest.raises(ConfigurationError):
            EBRRConfig(max_stops=5, max_adjacent_cost=2.0,
                       price_budget_fraction=1.5)

    def test_frozen(self):
        config = EBRRConfig(max_stops=5, max_adjacent_cost=2.0)
        with pytest.raises(Exception):
            config.max_stops = 9  # type: ignore[misc]


class TestDerived:
    def test_price_budget_is_two_thirds_k(self):
        config = EBRRConfig(max_stops=30, max_adjacent_cost=2.0)
        assert config.price_budget == pytest.approx(20.0)
        assert DEFAULT_PRICE_BUDGET_FRACTION == pytest.approx(2.0 / 3.0)

    def test_custom_budget_fraction(self):
        config = EBRRConfig(
            max_stops=30, max_adjacent_cost=2.0, price_budget_fraction=0.5
        )
        assert config.price_budget == pytest.approx(15.0)


class TestPreprocessStrategy:
    def test_accepts_known_strategies(self):
        for strategy in (None, "per-query", "inverted"):
            config = EBRRConfig(
                max_stops=10, max_adjacent_cost=2.0,
                preprocess_strategy=strategy,
            )
            assert config.preprocess_strategy == strategy

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError, match="unknown preprocess"):
            EBRRConfig(
                max_stops=10, max_adjacent_cost=2.0,
                preprocess_strategy="sideways",
            )
