"""Unit tests for incremental demand updates: the updated preprocessing
must be value-identical to recomputing from scratch."""

import pytest

from repro.core.preprocess import preprocess_queries
from repro.core.update import update_preprocess
from repro.demand.query import QuerySet

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


def _assert_equivalent(new_instance, updated, scratch):
    assert set(updated.nn_distance) == set(scratch.nn_distance)
    for node, dist in scratch.nn_distance.items():
        assert updated.nn_distance[node] == pytest.approx(dist)
    for v in set(updated.initial_utility) | set(scratch.initial_utility):
        assert updated.initial_utility.get(v, 0.0) == pytest.approx(
            scratch.initial_utility.get(v, 0.0), abs=1e-9
        )
    assert set(updated.rnn) == set(scratch.rnn)
    for candidate in scratch.rnn:
        assert sorted(updated.rnn[candidate]) == pytest.approx(
            sorted(scratch.rnn[candidate])
        )


def _update_and_check(toy_instance, new_nodes, name="updated"):
    pre = preprocess_queries(toy_instance)
    new_queries = QuerySet(toy_instance.network, new_nodes, name=name)
    new_instance, updated, stats = update_preprocess(
        toy_instance, pre, new_queries
    )
    scratch = preprocess_queries(new_instance)
    _assert_equivalent(new_instance, updated, scratch)
    return new_instance, updated, stats, pre


class TestEquivalence:
    def test_add_new_distinct_node(self, toy_instance):
        # original Q = {v1,v1,v1,v6,v7,v8}; add v5 (new distinct node)
        _, _, stats, _ = _update_and_check(
            toy_instance, [V1, V1, V1, V6, V7, V8, V5]
        )
        assert stats.added_nodes == 1
        assert stats.searches == 1

    def test_increase_multiplicity(self, toy_instance):
        _, _, stats, _ = _update_and_check(
            toy_instance, [V1, V1, V1, V6, V6, V6, V7, V8]
        )
        assert stats.added_nodes == 0
        assert stats.searches == 0
        assert stats.rescaled_nodes == 1

    def test_remove_node_entirely(self, toy_instance):
        _, _, stats, _ = _update_and_check(toy_instance, [V1, V1, V1, V6, V8])
        assert stats.removed_nodes == 1
        assert stats.searches == 0

    def test_mixed_update(self, toy_instance):
        _, _, stats, _ = _update_and_check(toy_instance, [V1, V6, V6, V5, V8])
        assert stats.added_nodes == 1    # v5
        assert stats.removed_nodes == 1  # v7
        assert stats.rescaled_nodes >= 1  # v1 down, v6 up

    def test_identical_demand_no_work(self, toy_instance):
        _, _, stats, _ = _update_and_check(
            toy_instance, [V1, V1, V1, V6, V7, V8]
        )
        assert stats.searches == 0
        assert stats.added_nodes == stats.removed_nodes == 0
        assert stats.rescaled_nodes == 0

    def test_complete_replacement(self, toy_instance):
        _, _, stats, _ = _update_and_check(toy_instance, [V5, V5, V2])
        assert stats.added_nodes == 2     # v5 and v2
        assert stats.removed_nodes == 4   # v1, v6, v7, v8


class TestDownstreamUse:
    def test_selection_agrees_with_scratch(self, toy_instance):
        """Running EBRR's selection on the updated preprocessing gives
        the same stops as on a from-scratch preprocessing."""
        from repro.core.config import EBRRConfig
        from repro.core.selection import run_selection

        pre = preprocess_queries(toy_instance)
        new_queries = QuerySet(
            toy_instance.network, [V6, V6, V7, V7, V8], name="shifted"
        )
        new_instance, updated, _ = update_preprocess(
            toy_instance, pre, new_queries
        )
        scratch = preprocess_queries(new_instance)
        config = EBRRConfig(
            max_stops=4, max_adjacent_cost=4.0, alpha=1.0, seed_stop=V1
        )
        a = run_selection(new_instance, updated, config)
        b = run_selection(new_instance, scratch, config)
        assert a.selected == b.selected

    def test_update_cheaper_than_recompute_on_city(self, small_city):
        """One changed node -> one search, versus |distinct Q| searches
        for the scratch run."""
        instance = small_city.instance(alpha=25.0)
        pre = preprocess_queries(instance)
        nodes = list(instance.queries.nodes)
        # nudge the demand: drop one occurrence, add a fresh node
        unused = next(
            v for v in instance.candidates
            if v not in instance.query_counts
        )
        new_queries = QuerySet(instance.network, nodes[1:] + [unused])
        _, updated, stats = update_preprocess(instance, pre, new_queries)
        assert stats.searches <= 1
        assert updated.searches <= pre.searches + 1

    def test_inputs_not_mutated(self, toy_instance):
        pre = preprocess_queries(toy_instance)
        before_utilities = dict(pre.initial_utility)
        before_rnn_sizes = {v: len(e) for v, e in pre.rnn.items()}
        new_queries = QuerySet(toy_instance.network, [V6, V5])
        update_preprocess(toy_instance, pre, new_queries)
        assert pre.initial_utility == before_utilities
        assert {v: len(e) for v, e in pre.rnn.items()} == before_rnn_sizes


class TestBulkRetirement:
    """The batched retirement sweep: equivalence with from-scratch after
    a *bulk* removal, exact-0.0 pinning of fully-retired candidates, and
    the parallel added-node path."""

    def test_bulk_removal_matches_scratch(self, small_city):
        instance = small_city.instance(alpha=25.0)
        pre = preprocess_queries(instance)
        nodes = list(instance.queries.nodes)
        survivors = sorted(set(nodes))[: max(2, len(set(nodes)) // 4)]
        kept = [n for n in nodes if n in set(survivors)]
        new_queries = QuerySet(instance.network, kept, name="bulk-removed")
        new_instance, updated, stats = update_preprocess(
            instance, pre, new_queries
        )
        assert stats.searches == 0
        assert stats.removed_nodes == len(set(nodes)) - len(set(kept))
        scratch = preprocess_queries(new_instance)
        _assert_equivalent(new_instance, updated, scratch)

    def test_retired_candidates_pinned_to_exact_zero(self, small_city):
        """A candidate whose whole RNN set is retired must report a
        utility of exactly 0.0 (not dust near zero): downstream
        threshold pruning and the utility queue compare these values."""
        instance = small_city.instance(alpha=25.0)
        pre = preprocess_queries(instance)
        new_queries = QuerySet(
            instance.network, [list(instance.queries.nodes)[0]], name="one"
        )
        new_instance, updated, _ = update_preprocess(instance, pre, new_queries)
        emptied = [
            v for v in pre.rnn
            if v not in updated.rnn and new_instance.is_candidate[v]
        ]
        assert emptied, "expected some candidate to lose all contributors"
        for candidate in emptied:
            value = updated.initial_utility[candidate]
            assert value == 0.0
            assert str(value) == "0.0"  # exactly +0.0, not -0.0 or dust

    def test_parallel_added_nodes_match_serial(self, small_city):
        instance = small_city.instance(alpha=25.0)
        pre = preprocess_queries(instance)
        used = set(instance.query_counts)
        fresh = [v for v in instance.candidates if v not in used][:6]
        assert len(fresh) >= 2
        nodes = list(instance.queries.nodes) + fresh
        new_queries = QuerySet(instance.network, nodes, name="grown")
        _, serial, serial_stats = update_preprocess(
            instance, pre, new_queries, workers=1
        )
        _, parallel, parallel_stats = update_preprocess(
            instance, pre, new_queries, workers=2
        )
        assert serial_stats.added_nodes == parallel_stats.added_nodes == len(fresh)
        assert serial.nn_distance == parallel.nn_distance
        assert serial.rnn == parallel.rnn
        assert serial.initial_utility == parallel.initial_utility


class TestStrategyProvenance:
    def test_update_carries_strategy(self, toy_instance):
        """An update of an inverted preprocessing keeps its provenance
        (the added-node searches run per-query either way — they are
        change-proportional)."""
        pre = preprocess_queries(toy_instance, strategy="inverted")
        new_queries = QuerySet(
            toy_instance.network,
            list(toy_instance.queries.nodes) + [V8],
            name="updated",
        )
        new_instance, updated, _stats = update_preprocess(
            toy_instance, pre, new_queries
        )
        assert updated.strategy == "inverted"
        scratch = preprocess_queries(new_instance, strategy="inverted")
        _assert_equivalent(new_instance, updated, scratch)
