"""Unit tests for Algorithm 2 (query preprocessing) — Example 7."""

import pytest

from repro.core.preprocess import preprocess_queries

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


@pytest.fixture
def pre(toy_instance):
    return preprocess_queries(toy_instance)


class TestExample7:
    def test_nearest_existing_stops(self, pre):
        """nn(v6)=v2@7, nn(v7)=v2@11, nn(v8)=v2@8, nn(v1)=v1@0."""
        assert pre.nn_distance[V6] == pytest.approx(7.0)
        assert pre.nn_distance[V7] == pytest.approx(11.0)
        assert pre.nn_distance[V8] == pytest.approx(8.0)
        assert pre.nn_distance[V1] == pytest.approx(0.0)

    def test_rnn_of_v3(self, pre):
        """RNN(v3) = {(v6,3), (v7,7), (v8,4)}."""
        assert dict(pre.rnn[V3]) == {
            V6: pytest.approx(3.0),
            V7: pytest.approx(7.0),
            V8: pytest.approx(4.0),
        }

    def test_rnn_of_v4_and_v5(self, pre):
        assert dict(pre.rnn[V4]) == {V7: pytest.approx(3.0)}
        assert dict(pre.rnn[V5]) == {V7: pytest.approx(7.0)}

    def test_initial_utilities(self, pre):
        """U(v3)=12, U(v4)=8, U(v5)=4, U(v1)=3, U(v2)=2 (Example 7)."""
        assert pre.initial_utility[V3] == pytest.approx(12.0)
        assert pre.initial_utility[V4] == pytest.approx(8.0)
        assert pre.initial_utility[V5] == pytest.approx(4.0)
        assert pre.initial_utility[V1] == pytest.approx(3.0)
        assert pre.initial_utility[V2] == pytest.approx(2.0)

    def test_utility_order(self, pre):
        """The priority queue stores v3, v4, v5, v1, v2 in decreasing
        utility order (Example 7's closing sentence)."""
        order = [v for _, v in pre.utility_order()]
        assert order == [V3, V4, V5, V1, V2]


class TestMechanics:
    def test_one_search_per_distinct_query(self, pre):
        if pre.strategy == "inverted":
            # One field search plus one query-rooted ball per distinct
            # query node (the fixture follows ``$REPRO_PREPROCESS``).
            assert pre.searches == 1 + 4
        else:
            assert pre.searches == 4  # distinct nodes: v1, v6, v7, v8

    def test_settled_nodes_counted(self, pre):
        assert pre.settled_nodes >= pre.searches

    def test_initial_utility_matches_exact_for_candidates(self, toy_instance, pre):
        for v in toy_instance.candidates:
            assert pre.initial_utility[v] == pytest.approx(
                toy_instance.utility([v])
            )

    def test_initial_utility_scales_with_alpha(self, toy_transit, toy_queries):
        from repro.core.utility import BRRInstance

        instance = BRRInstance(
            toy_transit, toy_queries, candidates=[V3, V4, V5], alpha=10.0
        )
        pre = preprocess_queries(instance)
        assert pre.initial_utility[V1] == pytest.approx(30.0)
        # candidate utilities do not depend on alpha
        assert pre.initial_utility[V3] == pytest.approx(12.0)

    def test_multiplicity_weighting(self, toy_transit, toy_network):
        """A query node appearing twice doubles its contribution."""
        from repro.core.utility import BRRInstance
        from repro.demand.query import QuerySet

        doubled = BRRInstance(
            toy_transit,
            QuerySet(toy_network, [V6, V6]),
            candidates=[V3, V4, V5],
            alpha=1.0,
        )
        pre = preprocess_queries(doubled)
        # Each v6 gains 7-3=4 at v3 -> total 8.
        assert pre.initial_utility[V3] == pytest.approx(8.0)

    def test_unvisited_candidates_default_to_zero(self, toy_transit, toy_network):
        from repro.core.utility import BRRInstance
        from repro.demand.query import QuerySet

        instance = BRRInstance(
            toy_transit,
            QuerySet(toy_network, [V1]),  # a query sitting on a stop
            candidates=[V3, V4, V5],
            alpha=1.0,
        )
        pre = preprocess_queries(instance)
        assert pre.initial_utility[V3] == 0.0
        assert pre.initial_utility[V4] == 0.0

    def test_matches_exact_on_random_city(self, small_city):
        """On a generated city, Algorithm 2's candidate utilities equal
        the exact single-stop utilities (spot-checked on the top 10)."""
        instance = small_city.instance(alpha=1.0)
        pre = preprocess_queries(instance)
        top = [v for _, v in pre.utility_order()[:10]]
        for v in top:
            if instance.is_candidate[v]:
                assert pre.initial_utility[v] == pytest.approx(
                    instance.utility([v]), rel=1e-9
                )


class TestDisjointnessGuard:
    """Regression: a node that is both candidate and existing stop used
    to have its walking-gain utility silently clobbered by the existing
    stops' α·degree loop.  BRRInstance rejects explicit overlaps; this
    guard is defence in depth for any construction path that bypasses
    that validation and hands preprocess overlapping masks."""

    def test_overlapping_masks_raise(self, toy_instance):
        from repro.exceptions import ConfigurationError

        existing = toy_instance.existing_stops[0]
        # Simulate a malformed instance built outside the validated
        # constructor path: the masks overlap on one node.
        toy_instance.is_candidate[existing] = True
        toy_instance.candidates.append(existing)
        with pytest.raises(ConfigurationError, match="disjoint"):
            preprocess_queries(toy_instance)

    def test_workers_must_be_positive(self, toy_instance):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="workers"):
            preprocess_queries(toy_instance, workers=0)


class TestStrategies:
    """The inverted strategy on the worked toy example, plus the
    strategy-resolution plumbing (``$REPRO_PREPROCESS``, validation)."""

    def test_inverted_matches_example_7(self, toy_instance, pre):
        inv = preprocess_queries(toy_instance, strategy="inverted")
        assert inv.strategy == "inverted"
        assert inv.nn_distance == pre.nn_distance
        assert inv.rnn == pre.rnn
        assert inv.initial_utility == pre.initial_utility
        assert list(inv.rnn) == list(pre.rnn)
        assert inv.utility_order() == pre.utility_order()

    def test_inverted_accounting(self, toy_instance):
        inv = preprocess_queries(toy_instance, strategy="inverted")
        # One field search plus one query-rooted ball per distinct query.
        assert inv.searches == 1 + len(inv.nn_distance)
        assert inv.settled_nodes > 0

    def test_default_strategy_is_inverted(self, toy_instance, monkeypatch):
        monkeypatch.delenv("REPRO_PREPROCESS", raising=False)
        result = preprocess_queries(toy_instance)
        assert result.strategy == "inverted"

    def test_env_resolution(self, toy_instance, monkeypatch):
        monkeypatch.setenv("REPRO_PREPROCESS", "per-query")
        assert preprocess_queries(toy_instance).strategy == "per-query"
        # An explicit argument wins over the environment.
        explicit = preprocess_queries(toy_instance, strategy="per-query")
        assert explicit.strategy == "per-query"

    def test_unknown_strategy_rejected(self, toy_instance):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown preprocess"):
            preprocess_queries(toy_instance, strategy="sideways")

    def test_resolver_validates_env(self, monkeypatch):
        from repro.core.preprocess import resolve_preprocess_strategy
        from repro.exceptions import ConfigurationError

        monkeypatch.setenv("REPRO_PREPROCESS", "bogus")
        with pytest.raises(ConfigurationError, match="bogus"):
            resolve_preprocess_strategy()
        monkeypatch.delenv("REPRO_PREPROCESS")
        assert resolve_preprocess_strategy() == "inverted"
        assert resolve_preprocess_strategy("per-query") == "per-query"
