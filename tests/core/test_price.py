"""Unit tests for the price function and the lower-bound price —
Examples 6 and 9 plus metric properties."""

import math

import pytest

from repro.core.price import (
    LowerBoundPrice,
    intermediate_stop_count,
    price_from_distance,
    virtual_edge_price,
)
from repro.exceptions import ConfigurationError

from ..conftest import TOY_COORDS, V1, V2, V3, V4


class TestPriceFromDistance:
    def test_example6_price_of_v3(self):
        """dist(v3, v1)=8 > C=4 -> one intermediate stop -> price 2."""
        assert price_from_distance(8.0, 4.0) == 2

    def test_example6_price_of_v2(self):
        """dist(v2, v1)=4 <= C=4 -> price 1."""
        assert price_from_distance(4.0, 4.0) == 1

    def test_zero_distance(self):
        assert price_from_distance(0.0, 4.0) == 1

    def test_exact_multiples_no_float_noise(self):
        assert price_from_distance(12.0, 4.0) == 3
        assert price_from_distance(12.0 + 1e-12, 4.0) == 3
        assert price_from_distance(12.1, 4.0) == 4

    def test_fig3_style_price(self):
        """Figure 3: a stop 2-3 C away needs 2 intermediates -> price 3."""
        assert price_from_distance(2.5 * 4.0, 4.0) == 3

    def test_invalid_c(self):
        with pytest.raises(ConfigurationError):
            price_from_distance(1.0, 0.0)

    def test_infinite_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            price_from_distance(math.inf, 4.0)

    def test_intermediate_count_is_price_minus_one(self):
        for dist in (0.0, 3.0, 4.0, 7.9, 8.0, 20.0):
            assert intermediate_stop_count(dist, 4.0) == (
                price_from_distance(dist, 4.0) - 1
            )

    def test_virtual_edge_price_alias(self):
        assert virtual_edge_price(8.0, 4.0) == price_from_distance(8.0, 4.0)


class TestPriceMetricProperties:
    def test_triangle_inequality(self):
        """price(a,c) <= price(a,b) + price(b,c) whenever the underlying
        distances satisfy the triangle inequality."""
        import itertools

        distances = [0.5, 1.0, 2.3, 4.0, 5.1, 9.9]
        c = 2.0
        for d_ab, d_bc in itertools.product(distances, repeat=2):
            d_ac = d_ab + d_bc  # worst case for the triangle inequality
            assert virtual_edge_price(d_ac, c) <= (
                virtual_edge_price(d_ab, c) + virtual_edge_price(d_bc, c)
            )

    def test_monotone_in_distance(self):
        previous = 0
        for dist in (0.0, 1.0, 2.0, 4.0, 4.1, 8.0, 8.1, 100.0):
            price = price_from_distance(dist, 4.0)
            assert price >= previous
            previous = price

    def test_antitone_in_c(self):
        for dist in (3.0, 8.0, 17.0):
            prices = [price_from_distance(dist, c) for c in (1.0, 2.0, 4.0, 8.0)]
            assert prices == sorted(prices, reverse=True)


class TestLowerBoundPrice:
    def test_example9(self):
        """lbp(v4) with B={v1}, C=4: dist(v1,v4)/4 = 12/4 = 3 (the toy's
        Euclidean and network distances coincide on the spine)."""
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        lbp.add_selected(V1)
        assert lbp.value(V4) == pytest.approx(3.0)

    def test_floors_at_one(self):
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        lbp.add_selected(V1)
        assert lbp.value(V2) == pytest.approx(1.0)  # 4/4 = 1
        assert lbp.value(V1) == pytest.approx(1.0)  # distance 0

    def test_minimum_over_selected(self):
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        lbp.add_selected(V1)
        assert lbp.value(V4) == pytest.approx(3.0)
        lbp.add_selected(V3)
        # v4 is 4 away from v3 -> bound drops to max(1, 1) = 1.
        assert lbp.value(V4) == pytest.approx(1.0)

    def test_lb_index_amortization(self):
        """After value(v) the index points past the scanned prefix; a
        repeat call scans nothing new."""
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        lbp.add_selected(V1)
        lbp.value(V4)
        assert lbp.scanned_fraction(V4) == 1.0
        lbp.add_selected(V2)
        assert lbp.scanned_fraction(V4) == 0.5
        lbp.value(V4)
        assert lbp.scanned_fraction(V4) == 1.0

    def test_is_lower_bound_of_true_price(self, toy_network):
        """lbp(v) <= p(v, B) for every node and growing B (the property
        Claim 2 needs)."""
        from repro.network.dijkstra import IncrementalNearestDistance

        c = 4.0
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=c)
        nearest = IncrementalNearestDistance(toy_network)
        for source in (V1, V3):
            lbp.add_selected(source)
            nearest.add_source(source)
            for v in toy_network.nodes():
                true_price = price_from_distance(nearest.distance[v], c)
                assert lbp.value(v) <= true_price + 1e-9

    def test_empty_b_rejected(self):
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        with pytest.raises(ConfigurationError):
            lbp.value(V4)

    def test_invalid_c(self):
        with pytest.raises(ConfigurationError):
            LowerBoundPrice(TOY_COORDS, max_adjacent_cost=-1.0)

    def test_selected_property(self):
        lbp = LowerBoundPrice(TOY_COORDS, max_adjacent_cost=4.0)
        lbp.add_selected(V2)
        lbp.add_selected(V4)
        assert lbp.selected == [V2, V4]
