"""Failure injection and adversarial-input robustness.

Every failure mode must surface as a typed :class:`ReproError`
subclass with a useful message — never a bare ``KeyError``/``IndexError``
from deep inside an algorithm — and every weird-but-legal input must
produce a legal route.
"""

import math

import pytest

from repro import (
    BRRInstance,
    ConfigurationError,
    DemandError,
    EBRRConfig,
    GraphError,
    ReproError,
    TransitError,
    plan_route,
)
from repro.demand.query import QuerySet
from repro.network.graph import RoadNetwork
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

from ..conftest import TOY_COORDS, TOY_EDGES, V1, V2, V3, V4, V5


class TestTypedErrors:
    def test_every_error_is_repro_error(self):
        for exc in (ConfigurationError, DemandError, GraphError, TransitError):
            assert issubclass(exc, ReproError)

    def test_error_messages_carry_context(self, toy_network):
        with pytest.raises(GraphError, match="no edge between 0 and 7"):
            toy_network.edge_cost(0, 7)
        with pytest.raises(DemandError, match="99"):
            QuerySet(toy_network, [99])


class TestAdversarialGraphs:
    def _instance(self, network, stops, queries, candidates=None):
        routes = [BusRoute(f"r{i}", [s]) for i, s in enumerate(stops)]
        transit = TransitNetwork(network, routes)
        return BRRInstance(
            transit,
            QuerySet(network, queries),
            candidates=candidates,
            alpha=1.0,
        )

    def test_star_graph(self):
        """Hub-and-spoke: everything routes through node 0."""
        n = 12
        coords = [(0.0, 0.0)] + [
            (math.cos(i), math.sin(i)) for i in range(1, n)
        ]
        edges = [(0, i, 1.0) for i in range(1, n)]
        network = RoadNetwork(coords, edges)
        instance = self._instance(network, [1], list(range(2, n)))
        config = EBRRConfig(max_stops=4, max_adjacent_cost=2.5, alpha=1.0)
        result = plan_route(instance, config)
        assert result.route.num_stops <= 4
        assert result.metrics.utility >= 0

    def test_long_chain(self):
        """A path graph: the route must march along the chain."""
        n = 30
        coords = [(float(i), 0.0) for i in range(n)]
        edges = [(i, i + 1, 1.0) for i in range(n - 1)]
        network = RoadNetwork(coords, edges)
        instance = self._instance(network, [0], [n - 1, n - 2, n - 3])
        config = EBRRConfig(max_stops=6, max_adjacent_cost=3.0, alpha=1.0)
        result = plan_route(instance, config)
        assert result.is_feasible
        costs = result.route.adjacent_stop_costs(network)
        assert all(c <= 3.0 + 1e-9 for c in costs)

    def test_complete_graph(self):
        n = 10
        coords = [(math.cos(i * 0.63), math.sin(i * 0.63)) for i in range(n)]
        edges = [
            (i, j, 2.0 + 0.01 * (i + j)) for i in range(n) for j in range(i + 1, n)
        ]
        network = RoadNetwork(coords, edges)
        instance = self._instance(network, [0], [5, 6, 7])
        config = EBRRConfig(max_stops=5, max_adjacent_cost=2.5, alpha=1.0)
        result = plan_route(instance, config)
        assert result.route.num_stops <= 5

    def test_two_node_network(self):
        network = RoadNetwork([(0, 0), (1, 0)], [(0, 1, 1.0)])
        instance = self._instance(network, [0], [1, 1, 1])
        config = EBRRConfig(max_stops=2, max_adjacent_cost=1.5, alpha=1.0)
        result = plan_route(instance, config)
        assert set(result.route.stops) <= {0, 1}


class TestDegenerateDemand:
    def test_all_demand_on_one_node(self, toy_transit, toy_network):
        instance = BRRInstance(
            toy_transit,
            QuerySet(toy_network, [V5] * 100),
            candidates=[V3, V4, V5],
            alpha=1.0,
        )
        config = EBRRConfig(max_stops=3, max_adjacent_cost=4.0, alpha=1.0)
        result = plan_route(instance, config)
        # The single demand centre must be served (v5 selected).
        assert V5 in result.route.stops

    def test_demand_only_on_existing_stops(self, toy_transit, toy_network):
        """Zero walking gain anywhere: route still valid, driven by
        connectivity alone."""
        instance = BRRInstance(
            toy_transit,
            QuerySet(toy_network, [V1, V2, V1]),
            candidates=[V3, V4, V5],
            alpha=1.0,
        )
        config = EBRRConfig(max_stops=3, max_adjacent_cost=4.0, alpha=1.0)
        result = plan_route(instance, config)
        assert result.metrics.walk_decrease == pytest.approx(0.0)
        assert result.metrics.connectivity >= 1


class TestExtremeParameters:
    def test_k_larger_than_stop_universe(self, toy_instance):
        config = EBRRConfig(max_stops=50, max_adjacent_cost=4.0, alpha=1.0)
        result = plan_route(toy_instance, config)
        # Only 5 legal stop locations exist.
        assert result.route.num_stops <= 5

    def test_c_smaller_than_every_edge(self, toy_instance):
        """C = 0.5 < min edge cost 3: no two stops can ever be linked;
        EBRR must fail loudly or return a single-leg-violating route,
        never hang or crash deep."""
        config = EBRRConfig(max_stops=3, max_adjacent_cost=0.5, alpha=1.0)
        try:
            result = plan_route(toy_instance, config)
        except ReproError:
            return  # loud typed failure is acceptable
        assert not result.is_feasible  # otherwise it must be flagged

    def test_huge_c_no_restriction(self, toy_instance):
        """Huge C reduces BRR to cardinality-only submodular max (the
        NP-hardness reduction's regime)."""
        config = EBRRConfig(max_stops=4, max_adjacent_cost=1e6, alpha=1.0)
        result = plan_route(toy_instance, config)
        assert result.is_feasible

    def test_tiny_and_huge_alpha(self, toy_transit, toy_queries):
        for alpha in (1e-9, 1e9):
            instance = BRRInstance(
                toy_transit, toy_queries, candidates=[V3, V4, V5], alpha=alpha
            )
            config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=alpha)
            result = plan_route(instance, config)
            assert result.route.num_stops >= 1
        # Huge alpha: connectivity dominates -> existing stops chosen.
        assert result.metrics.connectivity == 4

    def test_k_equals_two(self, toy_instance):
        config = EBRRConfig(max_stops=2, max_adjacent_cost=4.0, alpha=1.0)
        result = plan_route(toy_instance, config)
        assert result.route.num_stops <= 2


class TestDisconnectedInputs:
    def test_query_cannot_reach_stop(self):
        """Disconnected component with demand but no stop: preprocessing
        must raise GraphError, not loop forever."""
        coords = [(0, 0), (1, 0), (9, 9), (10, 9)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        network = RoadNetwork(coords, edges, validate_connected=False)
        transit = TransitNetwork(network, [BusRoute("r", [0])])
        instance = BRRInstance(
            transit, QuerySet(network, [2]), candidates=[1, 3], alpha=1.0
        )
        config = EBRRConfig(max_stops=2, max_adjacent_cost=2.0, alpha=1.0)
        with pytest.raises(GraphError):
            plan_route(instance, config)


class TestCorruptFiles:
    def test_truncated_dimacs(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.network.dimacs import read_dimacs

        gr = tmp_path / "t.gr"
        co = tmp_path / "t.co"
        gr.write_text("p sp 2 2\na 1 2")  # truncated arc line
        co.write_text("p aux sp co 2\nv 1 0 0\nv 2 1 1\n")
        with pytest.raises(DataFormatError):
            read_dimacs(gr, co)

    def test_binary_garbage_transit(self, toy_network, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.transit.gtfs import load_transit

        (tmp_path / "routes.csv").write_bytes(b"\x00\xff\x00binary")
        with pytest.raises((DataFormatError, UnicodeDecodeError)):
            load_transit(toy_network, tmp_path)

    def test_empty_routes_file(self, toy_network, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.transit.gtfs import load_transit

        (tmp_path / "routes.csv").write_text("")
        with pytest.raises(DataFormatError):
            load_transit(toy_network, tmp_path)
