"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_city_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--city", "atlantis"])

    def test_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.city == "chicago"
        assert args.max_stops == 20
        assert args.max_adjacent_cost == 2.0


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--city", "orlando", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Orlando" in out
        assert "S_existing" in out

    def test_plan(self, capsys):
        code = main(
            ["plan", "--city", "orlando", "--scale", "0.05", "-k", "6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stops:" in out
        assert "utility" in out

    def test_plan_explain(self, capsys):
        code = main(
            ["plan", "--city", "orlando", "--scale", "0.05", "-k", "5",
             "--explain"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "EBRR run report" in out
        assert "Theorem 4 guarantee" in out

    def test_plan_explicit_alpha(self, capsys):
        code = main(
            ["plan", "--city", "orlando", "--scale", "0.05", "-k", "6",
             "--alpha", "10.0"]
        )
        assert code == 0
        assert "alpha=10.00" in capsys.readouterr().out

    def test_sweep_with_csv(self, capsys, tmp_path):
        target = tmp_path / "rows.csv"
        code = main(
            ["sweep", "--city", "orlando", "--scale", "0.05",
             "--ks", "4,6", "--csv", str(target)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Walking cost vs K" in out
        assert "Connectivity vs K" in out
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert "walk_cost" in header

    def test_sweep_bad_ks(self, capsys):
        assert main(["sweep", "--ks", "4,banana"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_sweep_empty_ks(self, capsys):
        assert main(["sweep", "--ks", ""]) == 2

    def test_case_study(self, capsys, tmp_path):
        svg = tmp_path / "map.svg"
        geojson = tmp_path / "route.geojson"
        code = main(
            ["case-study", "--city", "orlando", "--scale", "0.05",
             "-k", "5", "--svg", str(svg), "--geojson", str(geojson)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert svg.exists()
        assert geojson.exists()
        assert "map written" in out
        import json

        doc = json.loads(geojson.read_text())
        assert doc["type"] == "FeatureCollection"


class TestTrace:
    def test_plan_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        from repro.obs import load_chrome_trace

        target = tmp_path / "plan-trace.json"
        code = main(
            ["plan", "--city", "orlando", "--scale", "0.05", "-k", "5",
             "--trace", str(target)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert target.exists()
        assert "trace written to" in out
        spans, metrics = load_chrome_trace(str(target))
        names = {s.name for s in spans}
        assert "plan_route" in names and "preprocess" in names
        assert metrics["counters"]["search.total.searches"] > 0

    def test_trace_summarize_round_trip(self, capsys, tmp_path):
        target = tmp_path / "plan-trace.json"
        assert main(
            ["plan", "--city", "orlando", "--scale", "0.05", "-k", "5",
             "--trace", str(target)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(target)]) == 0
        out = capsys.readouterr().out
        assert "trace summary:" in out
        assert "plan_route" in out
        assert "search.total.searches" in out

    def test_trace_summarize_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "nope.json")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_summarize_rejects_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}')
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err
