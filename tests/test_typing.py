"""The mypy ratchet gate.

``pyproject.toml`` holds the strict module list ([[tool.mypy.overrides]]
with ``disallow_untyped_defs``); this test runs mypy over the package
and fails on any reported error — which, given the ratchet config, can
only come from the strict modules.  Skipped when mypy is not installed
(it is an optional tool, installed by the CI typecheck job).
"""

import os
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.examples
def test_mypy_strict_modules_are_clean():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            os.path.join(REPO_ROOT, "pyproject.toml"),
            os.path.join(REPO_ROOT, "src", "repro"),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships_with_the_package():
    import repro

    package_dir = os.path.dirname(repro.__file__)
    assert os.path.isfile(os.path.join(package_dir, "py.typed"))
