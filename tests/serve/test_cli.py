"""The `repro serve` command: parser surface, env plumbing, clean boot.

The parser/env tests stay in-process (no socket is ever opened before
the failure).  The boot test runs the real ``python -m repro serve`` in
a subprocess because ``_cmd_serve`` installs a SIGTERM handler —
signal machinery only works on a process's main thread.
"""

import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "orlando"])
        assert args.command == "serve"
        assert args.dataset == ["orlando"]
        assert args.scale == 0.1
        assert args.host == "127.0.0.1"
        assert args.port is None  # resolved from $REPRO_SERVE_PORT later
        assert args.max_stops == 20
        assert args.max_inflight is None
        assert args.max_queued == 16
        assert args.deadline == 30.0
        assert args.trace_dir is None
        assert args.no_warm is False

    def test_datasets_are_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--dataset", "orlando", "--dataset", "chicago"]
        )
        assert args.dataset == ["orlando", "chicago"]

    def test_dataset_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_unknown_city_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dataset", "atlantis"])


class TestEnvPlumbing:
    def test_malformed_port_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVE_PORT", "80.5")
        code = main(["serve", "--dataset", "orlando", "--scale", "0.05"])
        assert code == 2
        err = capsys.readouterr().err
        assert "REPRO_SERVE_PORT" in err
        assert "Traceback" not in err

    def test_malformed_max_inflight_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "many")
        code = main(["serve", "--dataset", "orlando", "--scale", "0.05"])
        assert code == 2
        assert "REPRO_SERVE_MAX_INFLIGHT" in capsys.readouterr().err

    def test_port_flag_short_circuits_its_env_read(self, monkeypatch, capsys):
        # With --port pinned, a broken $REPRO_SERVE_PORT is never read;
        # resolution then proceeds to the max-inflight env var, whose
        # broken value is what actually fails — proving the flag won.
        monkeypatch.setenv("REPRO_SERVE_PORT", "nonsense")
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "broken-too")
        code = main(
            ["serve", "--dataset", "orlando", "--scale", "0.05",
             "--port", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "REPRO_SERVE_MAX_INFLIGHT" in err
        assert "REPRO_SERVE_PORT" not in err


class TestCliBoot:
    def test_serve_boots_answers_and_shuts_down_cleanly(self, tmp_path):
        """python -m repro serve on an ephemeral port: readiness banner,
        live health probe, SIGTERM, exit code 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env.pop("REPRO_SERVE_PORT", None)
        env.pop("REPRO_SERVE_MAX_INFLIGHT", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--dataset", "orlando", "--scale", "0.05",
             "--port", "0", "--no-warm"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 180
            banner = []
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                banner.append(line)
                match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, f"no readiness banner; got: {''.join(banner)!r}"

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as resp:
                assert resp.status == 200

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            assert "shutdown complete" in out
            assert "Traceback" not in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
