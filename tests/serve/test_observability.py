"""Per-request observability: one span tree per request, exportable and
store-linkable.

Each POST must leave behind (a) a request-scoped trace whose root span
carries the request id, (b) a JSONL export that round-trips through
``load_jsonl`` and validates against the Chrome ``chrome://tracing``
schema, and (c) — when ``$REPRO_STORE`` is set — a run row plus a trace
pointer linked to it.
"""

import os

import pytest

from repro.obs import Trace, chrome_trace, load_jsonl, validate_chrome_trace
from repro.serve import AdmissionController
from repro.store import RunStore

from .conftest import CITY


@pytest.fixture
def traced_harness(tmp_path, make_harness):
    trace_dir = tmp_path / "traces"
    harness = make_harness(trace_dir=str(trace_dir))
    return harness, trace_dir


def request_files(trace_dir):
    return sorted(trace_dir.glob("req-*.jsonl"))


class TestTraceExport:
    def test_one_jsonl_per_post(self, traced_harness):
        harness, trace_dir = traced_harness
        for _ in range(2):
            status, _ = harness.post("/v1/plan", {"dataset": CITY})
            assert status == 200
        status, _ = harness.post(
            "/v1/journey", {"dataset": CITY, "origin": 0, "destination": 3}
        )
        assert status == 200
        files = request_files(trace_dir)
        assert len(files) == 3
        # GETs are admission-free probes and must NOT write traces.
        harness.get("/healthz")
        harness.get("/v1/stats")
        assert len(request_files(trace_dir)) == 3

    def test_request_ids_are_distinct_and_match_files(self, traced_harness):
        harness, trace_dir = traced_harness
        ids = []
        for _ in range(3):
            status, body = harness.post("/v1/plan", {"dataset": CITY})
            assert status == 200
            ids.append(body["request_id"])
        assert len(set(ids)) == 3
        names = {path.name for path in request_files(trace_dir)}
        assert names == {f"{rid}.jsonl" for rid in ids}

    def test_span_tree_covers_request_and_planning(self, traced_harness):
        harness, trace_dir = traced_harness
        status, body = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        (path,) = request_files(trace_dir)
        spans, _metrics = load_jsonl(str(path))
        names = [s.name for s in spans]
        assert "request" in names
        assert "serve.plan" in names
        assert "plan_route" in names  # library phase spans nest underneath

        root = next(s for s in spans if s.name == "request")
        assert root.attrs["request_id"] == body["request_id"]
        assert root.attrs["endpoint"] == "/v1/plan"
        assert root.attrs["dataset"] == CITY
        assert root.parent is None
        # Everything else hangs off the request root — a real tree, not
        # a flat list of disconnected spans.
        indices = {s.index for s in spans}
        for span_ in spans:
            if span_ is not root:
                assert span_.parent in indices

    def test_trace_validates_against_chrome_schema(self, traced_harness):
        harness, trace_dir = traced_harness
        status, _ = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        (path,) = request_files(trace_dir)
        spans, _ = load_jsonl(str(path))
        trace = Trace(lane="serve")
        trace.spans = spans
        assert validate_chrome_trace(chrome_trace(trace)) == []

    def test_update_trace_includes_incremental_spans(self, traced_harness):
        harness, trace_dir = traced_harness
        status, _ = harness.post("/v1/update", {"dataset": CITY, "add": [1]})
        assert status == 200
        (path,) = request_files(trace_dir)
        spans, _ = load_jsonl(str(path))
        names = [s.name for s in spans]
        assert "serve.update" in names
        assert "update" in names  # the incremental-repair phase span


class TestStoreIntegration:
    def test_requests_land_as_linked_store_rows(
        self, tmp_path, monkeypatch, make_harness
    ):
        db = tmp_path / "runs.sqlite"
        monkeypatch.setenv("REPRO_STORE", str(db))
        trace_dir = tmp_path / "traces"
        harness = make_harness(trace_dir=str(trace_dir))

        status, body = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200

        store = RunStore(str(db))
        (run,) = store.runs(kind="serve")
        assert run["name"] == "/v1/plan"
        assert run["dataset"] == CITY
        metrics = {
            row["metric"]: row["value"]
            for row in store.metrics(run_id=run["id"])
        }
        assert metrics["request"] == body["request_id"]
        assert metrics["latency_s"] > 0
        assert metrics["spans"] >= 3

        (trace_row,) = store.traces(run_id=run["id"])
        assert os.path.basename(trace_row["path"]) == f"{body['request_id']}.jsonl"

    def test_no_store_env_means_no_rows_and_no_failures(
        self, tmp_path, monkeypatch, make_harness
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        harness = make_harness(trace_dir=str(tmp_path / "traces"))
        status, _ = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200

    def test_shed_requests_write_no_trace(self, tmp_path, make_harness):
        trace_dir = tmp_path / "traces"
        harness = make_harness(
            admission=AdmissionController(max_inflight=1, max_queued=0),
            trace_dir=str(trace_dir),
        )
        with harness.service.admission.admit():
            status, _ = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 429
        assert request_files(trace_dir) == []
