"""Live-socket fixtures for the serve suite.

Every test here exercises the daemon over a **real** loopback socket —
a ``ThreadingHTTPServer`` on an ephemeral port, torn down after each
module — so what is asserted is the wire behavior (status codes, JSON
bodies, shedding) and not a shortcut through the service object.  The
service object is still exposed on the harness for the tests that need
to manipulate admission state deterministically.

All modules share one small city (``orlando`` at scale 0.05); the
dataset registry in :mod:`repro.datasets` caches it process-wide, so
only the first module pays the generation cost while every module gets
a *fresh tenant* (fresh demand/preprocess state) over the shared
network and engine caches — exactly the sharing the daemon itself
relies on, and safe because cache state never changes results.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    AdmissionController,
    DatasetRegistry,
    PlanService,
    TenantSpec,
    create_server,
    run_server,
)

CITY = "orlando"
SCALE = 0.05


class ServeHarness:
    """One live daemon: HTTP helpers plus the underlying service."""

    def __init__(self, service, server, thread):
        self.service = service
        self.server = server
        self.thread = thread
        self.port = server.server_address[1]

    def request(self, method, path, payload=None, timeout=120.0):
        """Fire one HTTP request; returns ``(status, body_dict)`` for
        JSON responses of any status (4xx/5xx included)."""
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                body = {"raw": raw}
            return exc.code, body

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def raw_post(self, path, data, timeout=120.0):
        """POST arbitrary bytes (for malformed-body tests)."""
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8", errors="replace")

    def shutdown(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


def start_harness(*, spec=None, admission=None, trace_dir=None, warm=False):
    """Boot a daemon on an ephemeral port and return its harness."""
    registry = DatasetRegistry()
    registry.add(spec or TenantSpec(city=CITY, scale=SCALE), warm=warm)
    service = PlanService(registry, admission=admission, trace_dir=trace_dir)
    server = create_server(service)
    thread = threading.Thread(target=run_server, args=(server,), daemon=True)
    thread.start()
    return ServeHarness(service, server, thread)


@pytest.fixture(scope="module")
def live():
    """A default-config daemon shared by one test module."""
    harness = start_harness()
    yield harness
    harness.shutdown()


@pytest.fixture
def make_harness():
    """Factory for daemons with custom admission/trace/spec config."""
    harnesses = []

    def build(**kwargs):
        harness = start_harness(**kwargs)
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        harness.shutdown()
