"""The serve acceptance criterion: responses are bit-identical to the
library path.

Every comparison below is exact equality — not ``approx`` — because the
daemon promises *the same computation*, not a similar one: warm engines,
resident preprocessing, and response caching must be invisible in the
payload.  JSON float serialization round-trips exactly (``repr`` of a
float parses back to the same float), so exact comparison over the wire
is sound.
"""

import dataclasses
import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import EBRRConfig, plan_route, update_preprocess
from repro.datasets import load_city
from repro.eval.experiments import calibrated_alpha
from repro.demand import QuerySet
from repro.transit import JourneyPlanner

from .conftest import CITY, SCALE


@pytest.fixture(scope="module")
def direct():
    """The library-path ground truth for the same city/scale."""
    dataset = load_city(CITY, scale=SCALE)
    alpha = calibrated_alpha(dataset)
    instance = dataset.instance(alpha)
    config = EBRRConfig(max_stops=20, max_adjacent_cost=2.0, alpha=alpha)
    return dataset, instance, config


def direct_plan_body(instance, config):
    """Serialize a direct plan_route result the way the daemon does."""
    result = plan_route(instance, config)
    return {
        "route": {
            "route_id": result.route.route_id,
            "stops": list(result.route.stops),
            "path": list(result.route.path),
        },
        "metrics": {
            "utility": result.metrics.utility,
            "walk_cost": result.metrics.walk_cost,
            "walk_decrease": result.metrics.walk_decrease,
            "connectivity": result.metrics.connectivity,
            "num_stops": result.metrics.num_stops,
            "route_length": result.metrics.route_length,
        },
        "feasible": result.is_feasible,
        "violations": list(result.constraint_violations),
    }


def served_semantics(body):
    """The semantic slice of a served plan body (drop per-request noise)."""
    return {
        "route": body["route"],
        "metrics": body["metrics"],
        "feasible": body["feasible"],
        "violations": body["violations"],
    }


class TestPlanIdentity:
    def test_served_plan_matches_direct(self, live, direct):
        _, instance, config = direct
        status, body = live.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        assert served_semantics(body) == direct_plan_body(instance, config)

    def test_served_override_matches_direct(self, live, direct):
        _, instance, config = direct
        status, body = live.post("/v1/plan", {"dataset": CITY, "max_stops": 12})
        assert status == 200
        narrow = dataclasses.replace(config, max_stops=12)
        assert served_semantics(body) == direct_plan_body(instance, narrow)

    def test_repeat_requests_are_value_identical(self, live):
        bodies = [
            served_semantics(live.post("/v1/plan", {"dataset": CITY})[1])
            for _ in range(3)
        ]
        assert bodies[0] == bodies[1] == bodies[2]

    def test_concurrent_clients_all_match_ground_truth(self, live, direct):
        """≥2 concurrent clients, mixed request shapes, exact equality.

        This is the load-bearing test: warm caches plus the admission
        queue plus the shared planning core must never let one client's
        request shape bleed into another's response.
        """
        _, instance, config = direct
        truth = {
            20: direct_plan_body(instance, config),
            12: direct_plan_body(
                instance, dataclasses.replace(config, max_stops=12)
            ),
        }

        def fire(max_stops):
            payload = {"dataset": CITY}
            if max_stops != 20:
                payload["max_stops"] = max_stops
            status, body = live.post("/v1/plan", payload)
            return max_stops, status, body

        shapes = [20, 12, 20, 12, 20, 12]
        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(fire, shapes))

        request_ids = set()
        for max_stops, status, body in outcomes:
            assert status == 200
            assert served_semantics(body) == truth[max_stops]
            request_ids.add(body["request_id"])
        assert len(request_ids) == len(shapes)  # each request traced alone


class TestWireEncoding:
    def test_floats_round_trip_exactly(self, live, direct):
        """Raw wire bytes re-parse to the same floats the library made."""
        _, instance, config = direct
        truth = direct_plan_body(instance, config)["metrics"]
        req = urllib.request.Request(
            f"http://127.0.0.1:{live.port}/v1/plan",
            data=json.dumps({"dataset": CITY}).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=120) as resp:
            wire = resp.read()
        metrics = json.loads(wire)["metrics"]
        for key, value in truth.items():
            assert metrics[key] == value  # exact, not approx


class TestUpdateAndJourneyIdentity:
    def test_served_update_matches_direct(self, make_harness, direct):
        """A served update must land the EXACT state a direct
        update_preprocess lands, verified through the next plan."""
        dataset, instance, config = direct
        harness = make_harness(
            spec=None  # default spec == the `direct` fixture's instance
        )
        retire = instance.queries.nodes[0]
        add = [5, 6]

        status, body = harness.post(
            "/v1/update", {"dataset": CITY, "add": add, "remove": [retire]}
        )
        assert status == 200

        from repro.core import preprocess_queries

        nodes = list(instance.queries.nodes)
        nodes.remove(retire)
        nodes.extend(add)
        new_queries = QuerySet(instance.network, nodes, name="truth")
        pre = preprocess_queries(instance)
        new_instance, _, stats = update_preprocess(instance, pre, new_queries)

        assert body["stats"] == {
            "added_nodes": stats.added_nodes,
            "removed_nodes": stats.removed_nodes,
            "rescaled_nodes": stats.rescaled_nodes,
            "searches": stats.searches,
        }
        assert body["queries"] == len(new_instance.queries.nodes)

        status, plan_body = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        assert served_semantics(plan_body) == direct_plan_body(
            new_instance, config
        )

    def test_served_journey_matches_direct(self, live, direct):
        dataset, instance, config = direct
        route = plan_route(instance, config).route
        planner = JourneyPlanner(dataset.transit.with_route(route))
        truth = planner.journey(0, 9)

        status, body = live.post(
            "/v1/journey", {"dataset": CITY, "origin": 0, "destination": 9}
        )
        assert status == 200
        assert body["minutes"] == truth.minutes
        assert len(body["legs"]) == len(truth.legs)
        for wire_leg, leg in zip(body["legs"], truth.legs):
            assert wire_leg["mode"] == leg.mode
            assert wire_leg["route_id"] == leg.route_id
            assert wire_leg["nodes"] == list(leg.nodes)
            assert wire_leg["minutes"] == leg.minutes
