"""Admission control: bounded in-flight work, queue shedding, deadlines.

The unit tests pin the controller's semantics in isolation; the HTTP
tests then prove the same semantics hold on the wire — a saturated
daemon answers 429/503 with clean JSON bodies instead of hanging or
leaking a traceback.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    DeadlineExceeded,
    QueueFull,
)

from .conftest import CITY


class TestControllerUnit:
    def test_admit_and_release(self):
        controller = AdmissionController(max_inflight=2)
        with controller.admit():
            assert controller.stats()["in_flight"] == 1
        stats = controller.stats()
        assert stats["in_flight"] == 0
        assert stats["admitted"] == 1
        assert stats["completed"] == 1

    def test_queue_full_is_429(self):
        controller = AdmissionController(max_inflight=1, max_queued=0)
        with controller.admit():
            with pytest.raises(QueueFull) as excinfo:
                controller.admit()
        assert excinfo.value.status == 429
        assert isinstance(excinfo.value, AdmissionRejected)
        assert controller.stats()["rejected_queue_full"] == 1

    def test_deadline_exceeded_is_503(self):
        controller = AdmissionController(max_inflight=1, max_queued=4)
        with controller.admit():
            with pytest.raises(DeadlineExceeded) as excinfo:
                controller.admit(timeout_s=0.05)
        assert excinfo.value.status == 503
        stats = controller.stats()
        assert stats["rejected_deadline"] == 1
        assert stats["queued"] == 0  # the expired waiter left the queue

    def test_queued_request_proceeds_when_slot_frees(self):
        controller = AdmissionController(max_inflight=1, max_queued=4)
        first = controller.admit()

        results = []

        def waiter():
            with controller.admit(timeout_s=30.0):
                results.append("admitted")

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(waiter)
            # Release the slot while the second request queues.
            first.__exit__(None, None, None)
            future.result(timeout=30)
        assert results == ["admitted"]
        assert controller.stats()["admitted"] == 2

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=1, max_queued=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=1, default_timeout_s=0.0)


class TestHTTPShedding:
    def test_queue_full_sheds_429_with_clean_body(self, make_harness):
        harness = make_harness(
            admission=AdmissionController(max_inflight=1, max_queued=0)
        )
        # Occupy the only slot deterministically, then hit the wire.
        with harness.service.admission.admit():
            status, body = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 429
        assert "error" in body and "request_id" in body
        assert "Traceback" not in json.dumps(body)
        assert harness.service.admission.stats()["rejected_queue_full"] >= 1
        # The daemon recovers once the slot frees.
        status, body = harness.post("/v1/plan", {"dataset": CITY})
        assert status == 200

    def test_deadline_timeout_sheds_503_with_clean_body(self, make_harness):
        harness = make_harness(
            admission=AdmissionController(max_inflight=1, max_queued=4)
        )
        with harness.service.admission.admit():
            status, body = harness.post(
                "/v1/plan", {"dataset": CITY, "timeout_s": 0.2}
            )
        assert status == 503
        assert "no slot freed within" in body["error"]
        assert "Traceback" not in json.dumps(body)
        assert harness.service.admission.stats()["rejected_deadline"] >= 1

    def test_get_endpoints_bypass_admission(self, make_harness):
        """Health and stats probes must keep answering under saturation —
        that is the whole point of having them."""
        harness = make_harness(
            admission=AdmissionController(max_inflight=1, max_queued=0)
        )
        with harness.service.admission.admit():
            status, body = harness.get("/healthz")
            assert status == 200
            status, stats = harness.get("/v1/stats")
            assert status == 200
            assert stats["admission"]["in_flight"] == 1

    def test_concurrent_saturation_mixes_200_and_429(self, make_harness):
        harness = make_harness(
            admission=AdmissionController(max_inflight=1, max_queued=0),
            warm=True,  # pre-plan so served requests are fast cache hits
        )

        def fire(i):
            # Distinct shapes defeat the warm default-plan cache, keeping
            # the slot busy long enough for collisions to happen.
            return harness.post(
                "/v1/plan", {"dataset": CITY, "max_stops": 5 + (i % 6)}
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(fire, range(12)))

        statuses = [status for status, _ in outcomes]
        assert set(statuses) <= {200, 429}
        assert 200 in statuses  # progress under load
        assert 429 in statuses  # and real shedding, not silent queueing
        for status, body in outcomes:
            if status == 429:
                assert "error" in body
                assert "Traceback" not in json.dumps(body)
