"""Explicit engine cache capacity: config knob, engine enforcement,
and daemon-level accounting under a request stream.

The service tests use a *private* dataset shape (a scale no other serve
module loads) so capping this tenant's engine never perturbs the shared
engine the rest of the suite rides on.
"""

import pytest

from repro.core import EBRRConfig
from repro.exceptions import ConfigurationError, GraphError
from repro.network.engine import SearchEngine
from repro.network.generators import grid_city
from repro.serve import TenantSpec

from .conftest import CITY

PRIVATE_SCALE = 0.045  # distinct network => distinct engine


class TestEngineCapacity:
    def test_default_capacity(self):
        engine = SearchEngine(grid_city(4, 4, seed=3))
        assert engine.cache_capacity == 64

    def test_capacity_bounds_rows_and_points(self):
        network = grid_city(5, 5, seed=3)
        engine = SearchEngine(network)
        engine.set_cache_capacity(3)
        for source in range(10):
            engine.sssp(source)
        info = engine.cache_info()
        assert info.rows <= 3
        assert info.points <= 12
        assert info.evictions > 0

    def test_shrinking_trims_oldest_and_counts_evictions(self):
        network = grid_city(5, 5, seed=3)
        engine = SearchEngine(network)
        for source in range(8):
            engine.sssp(source)
        before = engine.cache_info()
        assert before.rows == 8
        engine.set_cache_capacity(2)
        after = engine.cache_info()
        assert after.rows == 2
        assert after.evictions == before.evictions + 6
        # The two NEWEST rows survive: hitting them is still a cache hit.
        hits_before = after.hits
        engine.sssp(7)
        assert engine.cache_info().hits == hits_before + 1

    def test_capacity_below_one_raises(self):
        engine = SearchEngine(grid_city(3, 3, seed=3))
        with pytest.raises(GraphError):
            engine.set_cache_capacity(0)

    def test_capped_engine_results_unchanged(self):
        network = grid_city(5, 5, seed=3)
        reference = SearchEngine(network)
        capped = SearchEngine(network)
        capped.set_cache_capacity(1)
        for source in (0, 7, 13, 7, 0):
            assert capped.sssp(source) == reference.sssp(source)


class TestConfigKnob:
    def test_config_validates_capacity(self):
        base = dict(max_stops=10, max_adjacent_cost=2.0)
        assert EBRRConfig(**base).cache_capacity is None
        assert EBRRConfig(**base, cache_capacity=8).cache_capacity == 8
        with pytest.raises(ConfigurationError):
            EBRRConfig(**base, cache_capacity=0)

    def test_plan_route_applies_capacity(self):
        from repro.core import plan_route
        from repro.datasets import load_city
        from repro.eval.experiments import calibrated_alpha

        dataset = load_city(CITY, scale=PRIVATE_SCALE)
        alpha = calibrated_alpha(dataset)
        instance = dataset.instance(alpha)
        engine = SearchEngine(instance.network)
        config = EBRRConfig(
            max_stops=10, max_adjacent_cost=2.0, alpha=alpha, cache_capacity=5
        )
        plan_route(instance, config, engine=engine)
        assert engine.cache_capacity == 5
        assert engine.cache_info().rows <= 5


class TestServedCapacity:
    def test_capped_tenant_under_request_stream(self, make_harness):
        harness = make_harness(
            spec=TenantSpec(city=CITY, scale=PRIVATE_SCALE, cache_capacity=4)
        )
        for max_stops in (6, 8, 10, 12, 6, 8):
            status, _ = harness.post(
                "/v1/plan", {"dataset": CITY, "max_stops": max_stops}
            )
            assert status == 200
            status, stats = harness.get("/v1/stats")
            assert status == 200
            cache = stats["datasets"][CITY]["cache"]
            assert cache["capacity"] == 4
            assert cache["rows"] <= 4
            assert cache["points"] <= 16
        assert cache["evictions"] > 0
        assert cache["hits"] > 0  # capped is bounded, not disabled
