"""Every endpoint over a live socket: happy paths, clean client errors.

The malformed-payload cases all assert the same contract: a JSON error
body with a human-complete ``error`` field and **no traceback text** —
a service that leaks ``Traceback (most recent call last)`` to clients
leaks its internals.
"""

import json

from .conftest import CITY


class TestGetEndpoints:
    def test_healthz(self, live):
        status, body = live.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == [CITY]
        assert body["uptime_s"] >= 0

    def test_datasets(self, live):
        status, body = live.get("/v1/datasets")
        assert status == 200
        (row,) = body["datasets"]
        assert row["name"] == CITY
        assert row["city"] == CITY
        assert row["max_stops"] == 20
        assert row["kernel"] in ("python", "vectorized")
        assert row["preprocess_strategy"] in ("per-query", "inverted")
        assert row["nodes"] > 0
        assert row["queries"] > 0

    def test_stats_shape(self, live):
        status, body = live.get("/v1/stats")
        assert status == 200
        admission = body["admission"]
        for key in (
            "max_inflight",
            "in_flight",
            "queued",
            "admitted",
            "rejected_queue_full",
            "rejected_deadline",
        ):
            assert isinstance(admission[key], int)
        tenant = body["datasets"][CITY]
        cache = tenant["cache"]
        for key in ("capacity", "rows", "points", "hits", "evictions"):
            assert isinstance(cache[key], int)
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert "search.total.searches" in tenant

    def test_unknown_path_404(self, live):
        status, body = live.get("/v1/nope")
        assert status == 404
        assert "unknown path" in body["error"]


class TestComputeEndpoints:
    def test_plan_default_config(self, live):
        status, body = live.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        assert body["dataset"] == CITY
        assert len(body["route"]["stops"]) <= 20
        assert body["route"]["stops"][0] in body["route"]["path"]
        assert body["feasible"] is True
        assert body["violations"] == []
        assert body["metrics"]["num_stops"] == len(body["route"]["stops"])
        assert body["config"]["max_stops"] == 20
        assert body["request_id"].startswith("req-")
        assert "total" in body["timings"]

    def test_plan_with_overrides(self, live):
        status, body = live.post(
            "/v1/plan",
            {"dataset": CITY, "max_stops": 8, "max_adjacent_cost": 3.0},
        )
        assert status == 200
        assert len(body["route"]["stops"]) <= 8
        assert body["config"]["max_stops"] == 8
        assert body["config"]["max_adjacent_cost"] == 3.0

    def test_journey(self, live):
        status, body = live.post(
            "/v1/journey", {"dataset": CITY, "origin": 0, "destination": 9}
        )
        assert status == 200
        assert body["minutes"] > 0
        assert body["legs"]
        for leg in body["legs"]:
            assert leg["mode"] in ("walk", "ride")
            assert leg["minutes"] >= 0

    def test_journey_same_node_is_free(self, live):
        status, body = live.post(
            "/v1/journey", {"dataset": CITY, "origin": 4, "destination": 4}
        )
        assert status == 200
        assert body["minutes"] == 0.0
        assert body["legs"] == []

    def test_update_add_and_remove(self, live):
        status, before = live.get("/v1/datasets")
        queries_before = before["datasets"][0]["queries"]
        existing_node = live.service.registry.get(CITY).instance.queries.nodes[0]
        status, body = live.post(
            "/v1/update",
            {"dataset": CITY, "add": [1, 2, 3], "remove": [existing_node]},
        )
        assert status == 200
        assert body["queries"] == queries_before + 3 - 1
        assert body["updates_applied"] >= 1
        stats = body["stats"]
        assert stats["searches"] == stats["added_nodes"]
        # The daemon keeps serving plans from the repaired state.
        status, plan = live.post("/v1/plan", {"dataset": CITY})
        assert status == 200
        assert plan["feasible"] is True


class TestCleanErrors:
    def assert_clean(self, body):
        text = json.dumps(body)
        assert "Traceback" not in text
        assert "  File \"" not in text

    def test_unknown_dataset_404(self, live):
        status, body = live.post("/v1/plan", {"dataset": "atlantis"})
        assert status == 404
        assert "atlantis" in body["error"]
        assert CITY in body["error"]  # names what IS being served
        self.assert_clean(body)

    def test_missing_dataset_field(self, live):
        status, body = live.post("/v1/plan", {})
        assert status == 400
        assert "dataset" in body["error"]
        self.assert_clean(body)

    def test_invalid_json_body(self, live):
        status, raw = live.raw_post("/v1/plan", b"{not json")
        assert status == 400
        assert "not valid JSON" in raw
        assert "Traceback" not in raw

    def test_non_object_json_body(self, live):
        status, raw = live.raw_post("/v1/plan", b"[1, 2, 3]")
        assert status == 400
        assert "JSON object" in raw

    def test_wrong_field_types(self, live):
        status, body = live.post(
            "/v1/plan", {"dataset": CITY, "max_stops": "ten"}
        )
        assert status == 400
        assert "max_stops" in body["error"]
        self.assert_clean(body)

    def test_max_stops_below_minimum(self, live):
        status, body = live.post(
            "/v1/plan", {"dataset": CITY, "max_stops": 1}
        )
        assert status == 400
        assert ">= 2" in body["error"]

    def test_journey_out_of_range_node(self, live):
        status, body = live.post(
            "/v1/journey",
            {"dataset": CITY, "origin": 0, "destination": 10**9},
        )
        assert status == 400
        assert "destination" in body["error"]
        self.assert_clean(body)

    def test_journey_missing_field(self, live):
        status, body = live.post("/v1/journey", {"dataset": CITY, "origin": 0})
        assert status == 400
        assert "destination" in body["error"]

    def test_update_without_changes(self, live):
        status, body = live.post("/v1/update", {"dataset": CITY})
        assert status == 400
        assert "add" in body["error"] and "remove" in body["error"]

    def test_update_retiring_absent_node_is_domain_400(self, live):
        status, body = live.post(
            "/v1/update", {"dataset": CITY, "remove": [10**6]}
        )
        assert status == 400
        assert "demand" in body["error"]
        self.assert_clean(body)

    def test_update_non_integer_list(self, live):
        status, body = live.post(
            "/v1/update", {"dataset": CITY, "add": ["a", "b"]}
        )
        assert status == 400
        assert "add" in body["error"]

    def test_post_unknown_path_404(self, live):
        status, body = live.post("/v1/replan", {"dataset": CITY})
        assert status == 404
        assert "unknown path" in body["error"]

    def test_oversized_body_413(self, live):
        blob = b'{"dataset": "' + b"x" * (1 << 20) + b'"}'
        status, raw = live.raw_post("/v1/plan", blob)
        assert status == 413
        assert "exceeds" in raw
