"""Property-based tests for the Dijkstra family, cross-checked against
networkx on random connected graphs."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.dijkstra import (
    IncrementalNearestDistance,
    distance_between,
    multi_source_costs,
    shortest_path,
    shortest_path_costs,
)
from repro.network.graph import RoadNetwork


@st.composite
def connected_networks(draw):
    """A random connected weighted graph: a random spanning tree plus
    random extra edges."""
    n = draw(st.integers(min_value=2, max_value=12))
    coords = [
        (draw(st.floats(0, 10)), draw(st.floats(0, 10))) for _ in range(n)
    ]
    edges = []
    # spanning tree
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        cost = draw(st.floats(min_value=0.1, max_value=5.0))
        edges.append((parent, v, cost))
    # extras
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            cost = draw(st.floats(min_value=0.1, max_value=5.0))
            edges.append((u, v, cost))
    return RoadNetwork(coords, edges)


def _to_networkx(network):
    graph = nx.Graph()
    graph.add_nodes_from(network.nodes())
    for u, v, cost in network.edges():
        graph.add_edge(u, v, weight=cost)
    return graph


@settings(max_examples=40, deadline=None)
@given(network=connected_networks(), source_seed=st.integers(0, 10 ** 6))
def test_costs_match_networkx(network, source_seed):
    source = source_seed % network.num_nodes
    ours = shortest_path_costs(network, source)
    reference = nx.single_source_dijkstra_path_length(
        _to_networkx(network), source
    )
    for v in network.nodes():
        assert ours[v] == pytest.approx(reference[v])


@settings(max_examples=30, deadline=None)
@given(network=connected_networks(), seed=st.integers(0, 10 ** 6))
def test_shortest_path_is_valid_and_optimal(network, seed):
    source = seed % network.num_nodes
    target = (seed // 7) % network.num_nodes
    path, cost = shortest_path(network, source, target)
    assert path[0] == source and path[-1] == target
    assert network.is_path(path)
    assert network.path_cost(path) == pytest.approx(cost)
    assert cost == pytest.approx(
        nx.dijkstra_path_length(_to_networkx(network), source, target)
    )


@settings(max_examples=30, deadline=None)
@given(network=connected_networks(), seed=st.integers(0, 10 ** 6))
def test_triangle_inequality(network, seed):
    n = network.num_nodes
    a, b, c = seed % n, (seed // 3) % n, (seed // 11) % n
    d_ab = distance_between(network, a, b)
    d_bc = distance_between(network, b, c)
    d_ac = distance_between(network, a, c)
    assert d_ac <= d_ab + d_bc + 1e-9


@settings(max_examples=30, deadline=None)
@given(network=connected_networks(), seed=st.integers(0, 10 ** 6))
def test_incremental_equals_multi_source(network, seed):
    n = network.num_nodes
    sources = sorted({seed % n, (seed // 5) % n, (seed // 23) % n})
    incremental = IncrementalNearestDistance(network)
    for s in sources:
        incremental.add_source(s)
    expected = multi_source_costs(network, sources)
    for v in network.nodes():
        assert incremental.distance[v] == pytest.approx(expected[v])


@settings(max_examples=30, deadline=None)
@given(network=connected_networks(), seed=st.integers(0, 10 ** 6))
def test_adding_sources_never_increases_distance(network, seed):
    n = network.num_nodes
    incremental = IncrementalNearestDistance(network)
    previous = [math.inf] * n
    for k in range(3):
        incremental.add_source((seed // (k + 1)) % n)
        for v in network.nodes():
            assert incremental.distance[v] <= previous[v] + 1e-12
        previous = list(incremental.distance)


@settings(max_examples=40, deadline=None)
@given(
    network=connected_networks(),
    seed=st.integers(0, 10 ** 6),
    max_cost=st.floats(min_value=0.0, max_value=20.0),
)
def test_bounded_sssp_agrees_with_unbounded_within_bound(network, seed, max_cost):
    """The cost-bounded search must return exactly the unbounded
    distances for nodes within the bound and inf beyond it."""
    source = seed % network.num_nodes
    full = shortest_path_costs(network, source)
    bounded = shortest_path_costs(network, source, max_cost=max_cost)
    for v in network.nodes():
        if full[v] <= max_cost + 1e-9:
            assert bounded[v] == full[v]
        else:
            assert bounded[v] == math.inf


@settings(max_examples=30, deadline=None)
@given(
    network=connected_networks(),
    seed=st.integers(0, 10 ** 6),
    max_cost=st.floats(min_value=0.0, max_value=20.0),
)
def test_bounded_multi_source_agrees_with_unbounded(network, seed, max_cost):
    n = network.num_nodes
    sources = sorted({seed % n, (seed // 5) % n, (seed // 23) % n})
    full = multi_source_costs(network, sources)
    bounded = multi_source_costs(network, sources, max_cost=max_cost)
    for v in network.nodes():
        if full[v] <= max_cost + 1e-9:
            assert bounded[v] == full[v]
        else:
            assert bounded[v] == math.inf
