"""The strategy-equivalence contract of Algorithm 2, asserted.

The inverted strategy (one multi-source label field + one batched
query-rooted ball per distinct query node) must produce preprocessing
output **equal** to the paper's per-query loop — same ``nn_distance``
/ ``rnn`` / ``initial_utility`` contents *including dict insertion
order* — and bit-identical downstream ``EBRRResult``s, across the
three synthetic city families, both kernel backends, and workers 1/2.
Equality is exact ``==`` on floats: query balls accumulate distances
from the query side — the reference per-query association — and the
truncation radius is forward-replayed from the label field (see
DESIGN.md "Batched preprocessing"), so in generic position the bits
match.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.preprocess import preprocess_queries
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.network.engine import SearchEngine
from repro.network.generators import grid_city, radial_city, sprawl_city
from repro.transit.builder import build_transit_network

KERNELS = ["python", "vectorized"]


def _network(family, seed, scale=1):
    if family == "grid":
        return grid_city(5 * scale, 5 * scale, seed=seed)
    if family == "radial":
        return radial_city(
            num_boroughs=3, nodes_per_borough=40 * scale, seed=seed
        )
    return sprawl_city(num_nodes=100 * scale, seed=seed)


def _instance(family, seed, scale=1):
    network = _network(family, seed, scale)
    transit = build_transit_network(
        network, num_routes=4, seed=seed + 1, stop_spacing_km=0.8
    )
    queries = hotspot_demand(
        network, 300, num_hotspots=4, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=5.0)


@st.composite
def instances(draw):
    family = draw(st.sampled_from(["grid", "radial", "sprawl"]))
    seed = draw(st.integers(0, 10 ** 4))
    return _instance(family, seed)


def assert_equal_preprocessing(per_query, inverted):
    """Equality of output contents *and* of the orderings downstream
    code iterates in (the utility queue, every RNN walk)."""
    assert per_query.nn_distance == inverted.nn_distance
    assert per_query.rnn == inverted.rnn
    assert per_query.initial_utility == inverted.initial_utility
    assert list(per_query.nn_distance) == list(inverted.nn_distance)
    assert list(per_query.rnn) == list(inverted.rnn)
    for candidate in per_query.rnn:
        assert per_query.rnn[candidate] == inverted.rnn[candidate]
    assert per_query.utility_order() == inverted.utility_order()


class TestStrategyEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=15, deadline=None)
    @given(instance=instances())
    def test_equal_preprocessing_output(self, kernel, instance):
        per_query = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel=kernel),
            strategy="per-query",
        )
        inverted = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel=kernel),
            strategy="inverted",
        )
        assert per_query.strategy == "per-query"
        assert inverted.strategy == "inverted"
        assert_equal_preprocessing(per_query, inverted)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10 ** 4))
    def test_ebrr_result_bit_identical(self, kernel, seed):
        """The full planner is bit-identical across strategies: same
        route, same path, same metric floats."""
        results = {}
        for strategy in ("per-query", "inverted"):
            instance = _instance("sprawl", seed)
            config = EBRRConfig(
                max_stops=8,
                max_adjacent_cost=2.0,
                alpha=5.0,
                kernel=kernel,
                preprocess_strategy=strategy,
            )
            results[strategy] = plan_route(instance, config)
        pq, inv = results["per-query"], results["inverted"]
        assert pq.route.stops == inv.route.stops
        assert pq.route.path == inv.route.path
        assert pq.metrics == inv.metrics


class TestAccounting:
    """The strategy-defined ``searches`` / ``settled_nodes`` contract
    (see the ``PreprocessResult`` docstring)."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("family", ["grid", "radial", "sprawl"])
    def test_inverted_definition(self, family, kernel):
        instance = _instance(family, seed=3)
        engine = SearchEngine(instance.network, kernel=kernel)
        result = preprocess_queries(instance, engine=engine, strategy="inverted")
        nodes = list(instance.query_counts)
        assert result.searches == 1 + len(nodes)
        assert len(result.nn_distance) == len(nodes)
        # Recompute the parts and check the documented sum exactly.
        field = engine.multi_source_labels(
            [i for i, f in enumerate(instance.is_existing) if f]
        )
        nn_forward = engine.label_forward_distances(field, nodes)
        labels = [field.label[node] for node in nodes]
        _counts, _members, _dists, settled = engine.batch_query_rows(
            nodes, nn_forward, labels, instance.is_candidate
        )
        assert result.settled_nodes == field.reachable + sum(settled)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_accounting_is_backend_independent(self, kernel):
        instance = _instance("grid", seed=5)
        reference = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel="python"),
            strategy="inverted",
        )
        other = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel=kernel),
            strategy="inverted",
        )
        assert (reference.searches, reference.settled_nodes) == (
            other.searches,
            other.settled_nodes,
        )


@pytest.mark.parallel
class TestWorkersParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("family", ["grid", "radial", "sprawl"])
    def test_inverted_workers_bit_identical(self, family, kernel):
        instance = _instance(family, seed=3)
        serial = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel=kernel),
            strategy="inverted",
            workers=1,
        )
        fanned = preprocess_queries(
            instance,
            engine=SearchEngine(instance.network, kernel=kernel),
            strategy="inverted",
            workers=2,
        )
        assert_equal_preprocessing(serial, fanned)
        assert (serial.searches, serial.settled_nodes) == (
            fanned.searches,
            fanned.settled_nodes,
        )

    @pytest.mark.parametrize("strategy", ["per-query", "inverted"])
    def test_accounting_worker_count_independent(self, strategy):
        """Satellite: ``searches``/``settled_nodes`` must not depend on
        how the work was sharded — per strategy, serial == workers 2."""
        instance = _instance("sprawl", seed=7)
        by_workers = {
            workers: preprocess_queries(
                instance,
                engine=SearchEngine(instance.network),
                strategy=strategy,
                workers=workers,
            )
            for workers in (1, 2)
        }
        assert (by_workers[1].searches, by_workers[1].settled_nodes) == (
            by_workers[2].searches,
            by_workers[2].settled_nodes,
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cross_strategy_cross_workers_grid(self, kernel):
        """The full 2x2 (strategy x workers) grid agrees on output."""
        reference = None
        for strategy in ("per-query", "inverted"):
            for workers in (1, 2):
                instance = _instance("grid", seed=11)
                result = preprocess_queries(
                    instance,
                    engine=SearchEngine(instance.network, kernel=kernel),
                    strategy=strategy,
                    workers=workers,
                )
                if reference is None:
                    reference = result
                else:
                    assert_equal_preprocessing(reference, result)
