"""Property-based tests for the price function and the lower-bound
price (Definitions 11/12, Algorithm 4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.price import (
    LowerBoundPrice,
    intermediate_stop_count,
    price_from_distance,
    virtual_edge_price,
)

costs = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
distances = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(distance=distances, c=costs)
def test_price_at_least_one(distance, c):
    assert price_from_distance(distance, c) >= 1


@settings(max_examples=200, deadline=None)
@given(distance=distances, c=costs)
def test_price_definition(distance, c):
    """price = minimum stops such that distance/price <= C, i.e. the
    smallest integer p >= distance/C (floored at 1, with an epsilon
    tolerance for float noise)."""
    price = price_from_distance(distance, c)
    assert distance / price <= c + 1e-6 * max(1.0, distance)
    if price > 1:
        assert distance / (price - 1) > c - 1e-6 * max(1.0, distance)


@settings(max_examples=100, deadline=None)
@given(d1=distances, d2=distances, c=costs)
def test_price_triangle(d1, d2, c):
    assert virtual_edge_price(d1 + d2, c) <= (
        virtual_edge_price(d1, c) + virtual_edge_price(d2, c)
    )


@settings(max_examples=100, deadline=None)
@given(d1=distances, d2=distances, c=costs)
def test_price_monotone(d1, d2, c):
    lo, hi = min(d1, d2), max(d1, d2)
    assert price_from_distance(lo, c) <= price_from_distance(hi, c)


@settings(max_examples=100, deadline=None)
@given(distance=distances, c=costs)
def test_intermediate_count_consistent(distance, c):
    assert intermediate_stop_count(distance, c) == (
        price_from_distance(distance, c) - 1
    )


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    return [
        (draw(st.floats(-50, 50)), draw(st.floats(-50, 50))) for _ in range(n)
    ]


@settings(max_examples=50, deadline=None)
@given(points=point_sets(), c=costs, seed=st.integers(0, 10 ** 6))
def test_lbp_equals_fresh_minimum(points, c, seed):
    """The amortized lbIndex bookkeeping returns exactly the same value
    as recomputing min distE(v, B)/C from scratch, at every step."""
    from repro.network.geometry import euclidean

    lbp = LowerBoundPrice(points, max_adjacent_cost=c)
    order = list(range(len(points)))
    # deterministic pseudo-shuffle
    order = order[seed % len(order):] + order[: seed % len(order)]
    selected = []
    for stop in order[: max(1, len(order) // 2)]:
        lbp.add_selected(stop)
        selected.append(stop)
        for probe in range(len(points)):
            fresh = max(
                1.0,
                min(euclidean(points[probe], points[s]) for s in selected) / c,
            )
            assert lbp.value(probe) == pytest.approx(fresh)


@settings(max_examples=50, deadline=None)
@given(points=point_sets(), c=costs)
def test_lbp_never_increases_as_b_grows(points, c):
    lbp = LowerBoundPrice(points, max_adjacent_cost=c)
    previous = {v: math.inf for v in range(len(points))}
    for stop in range(len(points)):
        lbp.add_selected(stop)
        for probe in range(len(points)):
            value = lbp.value(probe)
            assert value <= previous[probe] + 1e-9
            previous[probe] = value
