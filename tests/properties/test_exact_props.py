"""Property tests for the exact OPT machinery: the fast subset
evaluator must equal the direct objective on arbitrary subsets, and
greedy never beats OPT."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.exact import _FastEvaluator, optimal_stop_set
from repro.core.utility import BRRInstance
from repro.demand.query import QuerySet
from repro.network.generators import grid_city
from repro.transit.builder import build_transit_network


def _small_instance(seed, num_candidates=6):
    network = grid_city(5, 5, seed=seed, removal_fraction=0.0)
    transit = build_transit_network(
        network, num_routes=2, seed=seed + 1, stop_spacing_km=1.0
    )
    existing = set(transit.existing_stops)
    candidates = [v for v in network.nodes() if v not in existing][
        :num_candidates
    ]
    import numpy as np

    rng = np.random.default_rng(seed + 2)
    queries = QuerySet(
        network, [int(v) for v in rng.integers(0, network.num_nodes, size=40)]
    )
    return BRRInstance(transit, queries, candidates=candidates, alpha=1.5)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_fast_evaluator_equals_direct_utility(seed):
    instance = _small_instance(seed)
    evaluator = _FastEvaluator(instance)
    universe = instance.candidates + instance.existing_stops
    for size in (1, 2, 3):
        for subset in itertools.islice(
            itertools.combinations(universe, size), 40
        ):
            assert evaluator.utility(subset) == pytest.approx(
                instance.utility(list(subset)), rel=1e-9, abs=1e-9
            ), subset


@pytest.mark.parametrize("seed", [5, 6, 7])
@pytest.mark.parametrize("k", [2, 4])
def test_greedy_never_beats_opt(seed, k):
    instance = _small_instance(seed)
    config = EBRRConfig(max_stops=k, max_adjacent_cost=2.0, alpha=1.5)
    result = plan_route(instance, config)
    _, opt = optimal_stop_set(instance, k)
    assert result.metrics.utility <= opt + 1e-6


@pytest.mark.parametrize("seed", [8, 9])
def test_opt_superset_dominance(seed):
    """OPT at K is at least OPT at K-1 and at least the best single."""
    instance = _small_instance(seed)
    values = [optimal_stop_set(instance, k)[1] for k in (1, 2, 3, 4)]
    assert values == sorted(values)
    best_single = max(
        instance.utility([v])
        for v in instance.candidates + instance.existing_stops
    )
    assert values[0] == pytest.approx(best_single)


@pytest.mark.parametrize("seed", [10, 11])
def test_connectable_opt_dominated_by_unconstrained(seed):
    instance = _small_instance(seed)
    _, unconstrained = optimal_stop_set(instance, 3)
    _, constrained = optimal_stop_set(
        instance, 3, max_adjacent_cost=1.0, require_c_connectable=True
    )
    assert constrained <= unconstrained + 1e-9
