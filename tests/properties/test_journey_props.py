"""Property tests for the multimodal journey planner."""

import pytest

from repro.network.dijkstra import shortest_path_costs
from repro.transit.builder import build_transit_network
from repro.transit.journey import JourneyPlanner
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute


@pytest.fixture(scope="module")
def planner_setup():
    from repro.network.generators import grid_city

    network = grid_city(8, 8, seed=5)
    transit = build_transit_network(
        network, num_routes=4, seed=6, stop_spacing_km=0.8
    )
    return network, transit


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bounded_by_walking(planner_setup, seed):
    """Travel time never exceeds pure walking time."""
    import numpy as np

    network, transit = planner_setup
    planner = JourneyPlanner(transit, walk_speed_kmh=5.0)
    rng = np.random.default_rng(seed)
    walk_min_per_km = 60.0 / 5.0
    for _ in range(15):
        origin = int(rng.integers(0, network.num_nodes))
        costs = shortest_path_costs(network, origin)
        dest = int(rng.integers(0, network.num_nodes))
        assert planner.travel_time(origin, dest) <= (
            costs[dest] * walk_min_per_km + 1e-6
        )


@pytest.mark.parametrize("seed", [3, 4])
def test_symmetric(planner_setup, seed):
    """With symmetric boarding penalties and an undirected network, the
    journey time is symmetric in (origin, destination)."""
    import numpy as np

    network, transit = planner_setup
    planner = JourneyPlanner(transit)
    rng = np.random.default_rng(seed)
    for _ in range(10):
        a = int(rng.integers(0, network.num_nodes))
        b = int(rng.integers(0, network.num_nodes))
        assert planner.travel_time(a, b) == pytest.approx(
            planner.travel_time(b, a), rel=1e-9
        )


@pytest.mark.parametrize("seed", [5, 6])
def test_adding_route_never_hurts(planner_setup, seed):
    """More service can only add options: travel times after adding any
    route are <= before, pointwise."""
    import numpy as np

    network, transit = planner_setup
    rng = np.random.default_rng(seed)
    # build a random new route along a shortest path
    from repro.network.dijkstra import shortest_path
    from repro.transit.builder import place_stops_along_path

    a = int(rng.integers(0, network.num_nodes))
    b = int(rng.integers(0, network.num_nodes))
    if a == b:
        b = (b + 1) % network.num_nodes
    path, _ = shortest_path(network, a, b)
    stops = place_stops_along_path(network, path, 1.0)
    if len(stops) < 2:
        pytest.skip("degenerate random route")
    route = BusRoute("extra", stops, path)

    before = JourneyPlanner(transit)
    after = JourneyPlanner(transit.with_route(route))
    for _ in range(12):
        o = int(rng.integers(0, network.num_nodes))
        d = int(rng.integers(0, network.num_nodes))
        assert after.travel_time(o, d) <= before.travel_time(o, d) + 1e-6


def test_higher_boarding_penalty_never_faster(planner_setup):
    network, transit = planner_setup
    cheap = JourneyPlanner(transit, boarding_penalty_min=1.0)
    pricey = JourneyPlanner(transit, boarding_penalty_min=10.0)
    for origin, dest in ((0, network.num_nodes - 1), (3, 40), (10, 55)):
        assert cheap.travel_time(origin, dest) <= (
            pricey.travel_time(origin, dest) + 1e-9
        )


def test_faster_buses_never_slower(planner_setup):
    network, transit = planner_setup
    slow = JourneyPlanner(transit, bus_speed_kmh=12.0)
    fast = JourneyPlanner(transit, bus_speed_kmh=30.0)
    for origin, dest in ((0, network.num_nodes - 1), (5, 50)):
        assert fast.travel_time(origin, dest) <= (
            slow.travel_time(origin, dest) + 1e-9
        )


def test_triangle_inequality_relaxed(planner_setup):
    """Journey time satisfies a relaxed triangle inequality: going via a
    waypoint can only add (each leg re-pays boarding penalties, so the
    direct trip is never more than the sum of the two legs)."""
    network, transit = planner_setup
    planner = JourneyPlanner(transit)
    triples = [(0, 20, 45), (7, 33, 60), (12, 25, 50)]
    for a, b, c in triples:
        direct = planner.travel_time(a, c)
        via = planner.travel_time(a, b) + planner.travel_time(b, c)
        assert direct <= via + 1e-6
