"""Property tests for the accelerated searches (A*, ALT, CH, Yen):
every one must return exactly the Dijkstra answers on random graphs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.astar import LandmarkIndex, astar_distance, astar_path
from repro.network.contraction import ContractionHierarchy
from repro.network.dijkstra import shortest_path_costs
from repro.network.engine import engine_for
from repro.network.graph import RoadNetwork
from repro.network.ksp import k_shortest_paths


@st.composite
def planar_networks(draw):
    """Random connected graphs whose edge costs respect the Euclidean
    lower bound (required by the A* heuristic)."""
    n = draw(st.integers(min_value=3, max_value=14))
    coords = [
        (draw(st.floats(0, 10)), draw(st.floats(0, 10))) for _ in range(n)
    ]

    def edge(u, v):
        base = math.dist(coords[u], coords[v])
        detour = draw(st.floats(min_value=1.0, max_value=1.5))
        return (u, v, max(base * detour, 1e-6))

    edges = [edge(draw(st.integers(0, v - 1)), v) for v in range(1, n)]
    for _ in range(draw(st.integers(0, n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append(edge(u, v))
    return RoadNetwork(coords, edges)


@settings(max_examples=30, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_astar_matches_dijkstra(network, seed):
    source = seed % network.num_nodes
    costs = shortest_path_costs(network, source)
    for target in range(network.num_nodes):
        assert astar_distance(network, source, target) == pytest.approx(
            costs[target]
        )


@settings(max_examples=15, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_alt_matches_dijkstra(network, seed):
    index = LandmarkIndex(network, num_landmarks=3)
    source = seed % network.num_nodes
    costs = shortest_path_costs(network, source)
    for target in range(network.num_nodes):
        assert index.distance(source, target) == pytest.approx(costs[target])


@settings(max_examples=20, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_astar_engine_equivalence(network, seed):
    """A* now rides the SearchEngine's CSR: its answers must match the
    engine's, its work must be accounted to the 'astar' phase, and the
    heuristic path must produce a valid path of the optimal cost."""
    engine = engine_for(network)
    source = seed % network.num_nodes
    target = (seed // 13) % network.num_nodes
    row = engine.sssp(source, phase="equivalence")
    # The engine row is bit-identical to the legacy free function.
    assert row == shortest_path_costs(network, source)
    assert astar_distance(network, source, target) == pytest.approx(row[target])
    if source != target:
        before = engine.counters("astar").copy()
        path, cost = astar_path(network, source, target)
        after = engine.counters("astar")
        assert after.searches == before.searches + 1
        assert after.settled > before.settled
        assert cost == pytest.approx(row[target])
        assert path[0] == source and path[-1] == target
        assert network.path_cost(path) == pytest.approx(cost)


@settings(max_examples=15, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_landmark_tables_ride_the_engine_cache(network, seed):
    """LandmarkIndex sweeps are engine SSSP rows: bit-identical to the
    legacy Dijkstra and shared with (not recomputed by) the cache."""
    index = LandmarkIndex(network, num_landmarks=2, seed_node=seed % network.num_nodes)
    engine = engine_for(network)
    for landmark, table in zip(index.landmarks, index._tables):
        assert table == shortest_path_costs(network, landmark)
        # A later engine query from the same landmark is a cache hit
        # returning the very same row object.
        assert engine.sssp(landmark, phase="reuse") is table


@settings(max_examples=15, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_ch_matches_dijkstra(network, seed):
    ch = ContractionHierarchy(network)
    source = seed % network.num_nodes
    costs = shortest_path_costs(network, source)
    for target in range(network.num_nodes):
        assert ch.distance(source, target) == pytest.approx(costs[target])


@settings(max_examples=15, deadline=None)
@given(network=planar_networks(), seed=st.integers(0, 10 ** 6))
def test_yen_first_path_and_ordering(network, seed):
    source = seed % network.num_nodes
    target = (seed // 7) % network.num_nodes
    if source == target:
        return
    paths = k_shortest_paths(network, source, target, 4)
    costs = shortest_path_costs(network, source)
    assert paths[0][1] == pytest.approx(costs[target])
    values = [c for _, c in paths]
    assert values == sorted(values)
    for path, cost in paths:
        assert len(set(path)) == len(path)
        assert network.path_cost(path) == pytest.approx(cost)
