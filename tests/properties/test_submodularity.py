"""Property-based verification of Theorem 1: the utility function is
monotone submodular on randomly generated BRR instances."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import BRRInstance
from repro.demand.query import QuerySet
from repro.network.graph import RoadNetwork
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute


def _random_instance(draw):
    """A small random connected grid instance with random transit,
    candidates, queries, and alpha."""
    rows = draw(st.integers(min_value=2, max_value=4))
    cols = draw(st.integers(min_value=2, max_value=4))
    coords = []
    index = {}
    for r in range(rows):
        for c in range(cols):
            index[(r, c)] = len(coords)
            coords.append((float(c), float(r)))
    edges = []
    for (r, c), u in index.items():
        if (r, c + 1) in index:
            cost = draw(st.floats(min_value=0.5, max_value=3.0))
            edges.append((u, index[(r, c + 1)], cost))
        if (r + 1, c) in index:
            cost = draw(st.floats(min_value=0.5, max_value=3.0))
            edges.append((u, index[(r + 1, c)], cost))
    network = RoadNetwork(coords, edges)
    n = network.num_nodes

    node = st.integers(min_value=0, max_value=n - 1)
    stop_pool = draw(st.lists(node, min_size=1, max_size=4, unique=True))
    num_routes = draw(st.integers(min_value=1, max_value=5))
    # Single-stop routes at random pool stops: shared stops give the
    # coverage structure Connect needs, without path bookkeeping.
    routes = [
        BusRoute(f"r{i}", [draw(st.sampled_from(stop_pool))])
        for i in range(num_routes)
    ]
    transit = TransitNetwork(network, routes)
    existing = set(transit.existing_stops)

    candidates = [v for v in range(n) if v not in existing]
    query_nodes = draw(st.lists(node, min_size=1, max_size=8))
    alpha = draw(st.floats(min_value=0.1, max_value=10.0))
    instance = BRRInstance(
        transit,
        QuerySet(network, query_nodes),
        candidates=candidates,
        alpha=alpha,
    )
    return instance


@st.composite
def instances(draw):
    return _random_instance(draw)


@st.composite
def instance_and_sets(draw):
    instance = _random_instance(draw)
    universe = instance.candidates + instance.existing_stops
    subset = st.lists(st.sampled_from(universe), max_size=4, unique=True)
    b = draw(subset)
    b_prime = draw(subset)
    v_choices = [x for x in universe if x not in set(b) | set(b_prime)]
    if not v_choices:
        v = None
    else:
        v = draw(st.sampled_from(v_choices))
    return instance, b, b_prime, v


@settings(max_examples=30, deadline=None)
@given(data=instance_and_sets())
def test_monotone(data):
    """U(B ∪ {v}) >= U(B)."""
    instance, b, _, v = data
    if v is None:
        return
    assert instance.utility(b + [v]) >= instance.utility(b) - 1e-9


@settings(max_examples=30, deadline=None)
@given(data=instance_and_sets())
def test_submodular(data):
    """ΔU_B(v) >= ΔU_{B ∪ B'}(v) (Theorem 1)."""
    instance, b, b_prime, v = data
    if v is None:
        return
    small = instance.marginal_utility(v, b)
    union = list(dict.fromkeys(b + b_prime))
    large = instance.marginal_utility(v, union)
    assert small >= large - 1e-9


@settings(max_examples=20, deadline=None)
@given(data=instances())
def test_utility_non_negative_and_zero_on_empty(data):
    instance = data
    assert instance.utility([]) == 0.0
    for v in instance.candidates[:3]:
        assert instance.utility([v]) >= -1e-9


@settings(max_examples=20, deadline=None)
@given(data=instance_and_sets())
def test_walk_decrease_bounded_by_baseline(data):
    """0 <= Walk(S) - Walk(S ∪ B) <= Walk(S)."""
    instance, b, _, _ = data
    new_stops = [v for v in b if instance.is_candidate[v]]
    decrease = instance.walk_decrease(new_stops)
    assert -1e-9 <= decrease <= instance.baseline_walk() + 1e-9
