"""Property tests for the greedy selection: on randomized instances,
every stop the filtered/lazy machinery picks must be a true argmax of
``ΔU_B(v) / p(v, B)`` — i.e. the accelerations never change the greedy
decision, only the work done to find it."""

import math

import pytest

from repro.core.config import EBRRConfig
from repro.core.preprocess import preprocess_queries
from repro.core.selection import SelectionState, run_selection
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.network.generators import grid_city
from repro.transit.builder import build_transit_network


def _random_instance(seed):
    network = grid_city(7, 7, seed=seed)
    transit = build_transit_network(
        network, num_routes=3, seed=seed + 1, stop_spacing_km=0.9
    )
    queries = hotspot_demand(
        network, 250, num_hotspots=3, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=4.0)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_each_pick_is_a_true_argmax(seed):
    instance = _random_instance(seed)
    pre = preprocess_queries(instance)
    config = EBRRConfig(max_stops=9, max_adjacent_cost=1.5, alpha=4.0)
    trace = run_selection(instance, pre, config)

    # Replay: before each pick, exhaustively evaluate every remaining
    # stop's true ratio and confirm the pick ties the maximum.
    state = SelectionState(instance, pre, config)
    universe = instance.candidates + instance.existing_stops
    state.select(trace.selected[0])
    for picked in trace.selected[1:]:
        best_ratio = -math.inf
        for v in universe:
            if v in state.selected_set:
                continue
            ratio = state.marginal_gain(v) / state.true_price(v)
            best_ratio = max(best_ratio, ratio)
        picked_ratio = state.marginal_gain(picked) / state.true_price(picked)
        assert picked_ratio == pytest.approx(best_ratio, rel=1e-9, abs=1e-9)
        state.select(picked)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_all_variants_reach_equal_total_gain(seed):
    instance = _random_instance(seed)
    pre = preprocess_queries(instance)
    base = EBRRConfig(max_stops=9, max_adjacent_cost=1.5, alpha=4.0)
    reference = run_selection(instance, pre, base)
    for overrides in (
        dict(use_threshold_pruning=False),
        dict(use_lower_bound_price=False),
        dict(use_lazy_selection=False, use_threshold_pruning=False),
        dict(use_lazy_selection=False),
    ):
        variant_config = EBRRConfig(
            max_stops=9, max_adjacent_cost=1.5, alpha=4.0, **overrides
        )
        variant = run_selection(instance, pre, variant_config)
        assert variant.total_gain == pytest.approx(
            reference.total_gain, rel=1e-9
        )
        assert variant.total_price == reference.total_price


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_prices_match_distance_definition(seed):
    """Every recorded price equals max(1, ceil(dist(v, B)/C)) computed
    from a fresh multi-source Dijkstra at that iteration."""
    from repro.core.price import price_from_distance
    from repro.network.dijkstra import multi_source_costs

    instance = _random_instance(seed)
    pre = preprocess_queries(instance)
    config = EBRRConfig(max_stops=9, max_adjacent_cost=1.5, alpha=4.0)
    trace = run_selection(instance, pre, config)
    selected_so_far = [trace.selected[0]]
    for stop, price in zip(trace.selected[1:], trace.prices):
        dist = multi_source_costs(instance.network, selected_so_far)
        assert price == price_from_distance(dist[stop], 1.5)
        selected_so_far.append(stop)


@pytest.mark.parametrize("seed", [31, 32])
def test_total_gain_telescopes_to_exact_utility(seed):
    """Σ ΔU over the trace equals the exact utility of the selected set
    (the incremental bookkeeping never drifts from the true objective).

    Note the greedy *ratio* sequence is NOT monotone in general: prices
    are state-dependent and can drop as B grows (a distant stop becomes
    cheap once a neighbour is selected), so a later pick can legally
    have a higher ratio than an earlier one.
    """
    instance = _random_instance(seed)
    pre = preprocess_queries(instance)
    config = EBRRConfig(max_stops=12, max_adjacent_cost=1.5, alpha=4.0)
    trace = run_selection(instance, pre, config)
    assert trace.total_gain == pytest.approx(
        instance.utility(trace.selected), rel=1e-9
    )
