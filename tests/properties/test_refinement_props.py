"""Property tests for path refinement: across random instances and
configurations, the final route always satisfies the structural
contract of Definition 8 (with dense candidates)."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.network.generators import grid_city
from repro.transit.builder import build_transit_network
from repro.transit.route import BusRoute


def _instance(seed):
    network = grid_city(7, 7, seed=seed)
    transit = build_transit_network(
        network, num_routes=3, seed=seed + 1, stop_spacing_km=0.9
    )
    queries = hotspot_demand(
        network, 200, num_hotspots=3, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=3.0)


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("k", [4, 8, 14])
@pytest.mark.parametrize("c", [0.8, 1.5, 3.0])
def test_refined_route_contract(seed, k, c):
    instance = _instance(seed)
    config = EBRRConfig(max_stops=k, max_adjacent_cost=c, alpha=3.0)
    result = plan_route(instance, config)
    route = result.route

    # structural contract
    assert 1 <= route.num_stops <= k
    assert len(set(route.stops)) == route.num_stops
    assert instance.network.is_path(route.path)
    # the stop sequence embeds in the path in order (BusRoute enforces
    # it at construction; re-assert through a fresh object)
    BusRoute("check", route.stops, route.path)
    # every stop is a legal location
    for stop in route.stops:
        assert instance.is_candidate[stop] or instance.is_existing[stop]
    # dense candidates -> C feasible
    for cost in route.adjacent_stop_costs(instance.network):
        assert cost <= c + 1e-9
    assert result.is_feasible


@pytest.mark.parametrize("seed", [5, 6])
def test_refinement_weakly_improves_utility(seed):
    """Fig. 16a across random instances: refinement never loses more
    than trivia against the bare Christofides order."""
    instance = _instance(seed)
    for k in (6, 10):
        refined = plan_route(
            instance,
            EBRRConfig(max_stops=k, max_adjacent_cost=1.5, alpha=3.0),
        )
        bare = plan_route(
            instance,
            EBRRConfig(
                max_stops=k, max_adjacent_cost=1.5, alpha=3.0,
                refine_path=False,
            ),
        )
        assert refined.metrics.utility >= bare.metrics.utility - 1e-9
        assert refined.metrics.num_stops >= bare.metrics.num_stops


@pytest.mark.parametrize("seed", [7, 8])
def test_budget_fraction_monotone_selection(seed):
    """A bigger selection budget never selects fewer profitable stops."""
    instance = _instance(seed)
    counts = []
    for fraction in (1.0 / 3.0, 2.0 / 3.0, 1.0):
        config = EBRRConfig(
            max_stops=12, max_adjacent_cost=1.5, alpha=3.0,
            price_budget_fraction=fraction,
        )
        result = plan_route(instance, config)
        counts.append(len(result.trace.selected))
    assert counts == sorted(counts)
