"""Property-based tests for the Christofides tour construction."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.christofides import christofides_order, tour_price


point_sets = lambda: st.lists(  # noqa: E731 - strategy factory
    st.tuples(
        st.floats(0, 30, allow_nan=False), st.floats(0, 30, allow_nan=False)
    ),
    min_size=3,
    max_size=12,
    unique=True,
)


def _matrix(points):
    return [
        [math.dist(a, b) for b in points] for a in points
    ]


def _mst_price(matrix, c):
    """Prim MST total price — the lower bound of any spanning structure."""
    from repro.core.price import virtual_edge_price

    n = len(matrix)
    in_tree = [False] * n
    best = [math.inf] * n
    best[0] = 0.0
    total = 0
    for _ in range(n):
        u = min(
            (v for v in range(n) if not in_tree[v]), key=lambda v: best[v]
        )
        in_tree[u] = True
        if best[u] > 0:
            total += virtual_edge_price(best[u], c)
        for v in range(n):
            if not in_tree[v] and matrix[u][v] < best[v]:
                best[v] = matrix[u][v]
    return total


@settings(max_examples=60, deadline=None)
@given(points=point_sets(), c=st.floats(min_value=0.5, max_value=10.0))
def test_visits_every_stop_exactly_once(points, c):
    stops = list(range(len(points)))
    order = christofides_order(stops, _matrix(points), c)
    assert sorted(order) == stops


@settings(max_examples=40, deadline=None)
@given(points=point_sets(), c=st.floats(min_value=0.5, max_value=10.0))
def test_open_path_price_bounded(points, c):
    """The open path's price is at most the closed tour's, and the
    closed tour (MST + greedy matching, shortcut) stays within 3x the
    MST price — a generous envelope over the 3/2 theory that catches
    gross construction bugs without flaking on the greedy matching."""
    stops = list(range(len(points)))
    matrix = _matrix(points)
    order = christofides_order(stops, matrix, c)
    open_price = tour_price(order, lambda a, b: matrix[a][b], c)
    closed_price = tour_price(order, lambda a, b: matrix[a][b], c, closed=True)
    mst = _mst_price(matrix, c)
    assert open_price <= closed_price
    assert closed_price <= 3 * mst + len(points)


@settings(max_examples=20, deadline=None)
@given(points=point_sets(), c=st.floats(min_value=0.5, max_value=10.0))
def test_matches_brute_force_within_factor_two(points, c):
    if len(points) > 8:
        return  # brute force too slow
    stops = list(range(len(points)))
    matrix = _matrix(points)
    order = christofides_order(stops, matrix, c)
    got = tour_price(order, lambda a, b: matrix[a][b], c)
    best = min(
        tour_price(list(perm), lambda a, b: matrix[a][b], c)
        for perm in itertools.permutations(stops)
    )
    assert got <= 2 * best + 1
