"""Randomized end-to-end invariants: EBRR on generated instances always
produces feasible routes whose reported metrics are exactly consistent
with independent recomputation, and never beats the exhaustive optimum
where that optimum is computable."""

import pytest

from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.exact import optimal_stop_set
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.network.generators import grid_city, sprawl_city
from repro.transit.builder import build_transit_network


def _instance(seed, *, style="grid"):
    if style == "grid":
        network = grid_city(8, 8, seed=seed)
    else:
        network = sprawl_city(num_nodes=120, seed=seed)
    transit = build_transit_network(
        network, num_routes=4, seed=seed + 1, stop_spacing_km=0.8
    )
    queries = hotspot_demand(
        network, 400, num_hotspots=4, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=5.0)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("style", ["grid", "sprawl"])
def test_route_invariants(seed, style):
    instance = _instance(seed, style=style)
    config = EBRRConfig(max_stops=8, max_adjacent_cost=1.5, alpha=5.0)
    result = plan_route(instance, config)
    route = result.route

    # structural invariants
    assert len(set(route.stops)) == route.num_stops
    assert route.num_stops <= config.max_stops
    assert instance.network.is_path(route.path)
    for stop in route.stops:
        assert instance.is_candidate[stop] or instance.is_existing[stop]

    # feasibility (dense candidates -> refinement must satisfy C)
    assert result.is_feasible, result.constraint_violations

    # reported metrics equal independent recomputation
    assert result.metrics.utility == pytest.approx(
        instance.utility(route.stops)
    )
    assert result.metrics.connectivity == instance.connectivity(route.stops)
    assert result.metrics.walk_cost == pytest.approx(
        instance.baseline_walk()
        - instance.walk_decrease(
            s for s in route.stops if instance.is_candidate[s]
        )
    )


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_never_beats_opt_on_small_instances(seed):
    network = grid_city(4, 4, seed=seed, removal_fraction=0.0)
    transit = build_transit_network(
        network, num_routes=2, seed=seed, stop_spacing_km=1.0
    )
    existing = set(transit.existing_stops)
    candidates = [v for v in network.nodes() if v not in existing][:8]
    queries = hotspot_demand(network, 60, num_hotspots=2, seed=seed)
    instance = BRRInstance(transit, queries, candidates=candidates, alpha=2.0)
    config = EBRRConfig(max_stops=5, max_adjacent_cost=2.0, alpha=2.0)
    result = plan_route(instance, config)
    _, opt = optimal_stop_set(instance, 5)
    assert result.metrics.utility <= opt + 1e-6


@pytest.mark.parametrize("seed", [21, 22])
def test_selection_budget_theorem3(seed):
    """Theorem 3's mechanism: the selection's total price stays within
    one step of the 2K/3 budget, so Christofides + refinement can fit
    within K stops."""
    instance = _instance(seed)
    for k in (6, 9, 15):
        config = EBRRConfig(max_stops=k, max_adjacent_cost=1.5, alpha=5.0)
        result = plan_route(instance, config)
        trace = result.trace
        budget = 2 * k / 3
        if trace.prices:
            overshoot = trace.total_price - budget
            assert overshoot < max(trace.prices) + 1e-9
        assert result.metrics.num_stops <= k
