"""The cross-backend relaxation-order contract, asserted.

Every kernel backend must be **bit-identical** to the reference python
heapq backend (see ``repro/network/kernels/base.py``): same IEEE-754
distances, same predecessor tie-breaks, same settle order in ordered
outputs, and identical ``searches`` / ``settled`` / ``truncated``
counters (``pushes`` is explicitly backend-defined and excluded).

The suite drives both backends through every ``SearchKernel``
primitive — via the public ``SearchEngine`` methods, caches disabled
where possible — on hypothesis-chosen instances of the three synthetic
city families (grid / radial / sprawl), bounded and unbounded.
Equality assertions are exact (``==``), never approximate: that *is*
the contract.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.network.engine import SearchEngine, available_kernels
from repro.network.generators import grid_city, radial_city, sprawl_city
from repro.network.kernels.vectorized import VectorizedKernel  # reprolint: disable=RL009


@st.composite
def cities(draw):
    """Small instances of the three synthetic city families."""
    family = draw(st.sampled_from(["grid", "radial", "sprawl"]))
    seed = draw(st.integers(0, 10 ** 6))
    if family == "grid":
        return grid_city(
            draw(st.integers(3, 7)), draw(st.integers(3, 7)), seed=seed
        )
    if family == "radial":
        return radial_city(
            num_boroughs=draw(st.integers(2, 3)),
            nodes_per_borough=draw(st.integers(12, 40)),
            borough_radius_km=1.5,
            spacing_km=4.0,
            seed=seed,
        )
    return sprawl_city(draw(st.integers(20, 80)), extent_km=6.0, seed=seed)


def engines(network, use_scipy=None):
    """A fresh engine pair (reference, vectorized) over one network.

    ``use_scipy`` pins the vectorized execution path: the compiled
    scipy Dijkstra or the pure-numpy bucketed frontier fallback.  Both
    must satisfy the same bit-identity contract, so the overridden
    primitives are tested against each explicitly (``None`` means
    whatever the environment resolves, as production would)."""
    if use_scipy is None:
        vectorized = SearchEngine(network, kernel="vectorized")
    else:
        # resolve_kernel passes instances through — the sanctioned
        # escape hatch for pinning backend internals in tests.
        vectorized = SearchEngine(
            network, kernel=VectorizedKernel(use_scipy=use_scipy)
        )
    return SearchEngine(network, kernel="python"), vectorized


def bound_from(draw_value, network):
    """Map a hypothesis float in [0, 1] to a useful cost bound: None
    (unbounded) for values near 1, else a radius within the city."""
    if draw_value > 0.85:
        return None
    return 0.3 + draw_value * 4.0


def invariant_counters(engine, phase="adhoc"):
    # counters() creates an empty block when no search ran (e.g. the
    # source == target early return of distance()).
    stats = engine.counters(phase)
    return {
        "searches": stats.searches,
        "settled": stats.settled,
        "truncated": stats.truncated,
    }


def test_both_backends_registered():
    assert available_kernels() == ["python", "vectorized"]


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=40, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), b=st.floats(0, 1))
def test_sssp_bit_identical(use_scipy, network, seed, b):
    ep, ev = engines(network, use_scipy=use_scipy)
    source = seed % network.num_nodes
    max_cost = bound_from(b, network)
    rp = ep.sssp(source, max_cost=max_cost, cached=False)
    rv = ev.sssp(source, max_cost=max_cost, cached=False)
    assert rp == rv  # exact float equality, element-wise
    assert all(type(d) is float for d in rv)  # no np.float64 leakage
    assert invariant_counters(ep) == invariant_counters(ev)


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), b=st.floats(0, 1))
def test_multi_source_bit_identical(use_scipy, network, seed, b):
    ep, ev = engines(network, use_scipy=use_scipy)
    n = network.num_nodes
    sources = [seed % n, (seed // 7) % n, (seed // 91) % n]
    max_cost = bound_from(b, network)
    rp = ep.multi_source(sources, max_cost=max_cost, cached=False)
    rv = ev.multi_source(sources, max_cost=max_cost, cached=False)
    assert rp == rv
    assert invariant_counters(ep) == invariant_counters(ev)


@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6))
def test_path_bit_identical(network, seed):
    ep, ev = engines(network)
    n = network.num_nodes
    source, target = seed % n, (seed // 13) % n
    pp, cp = ep.path(source, target)
    pv, cv = ev.path(source, target)
    assert pp == pv  # same nodes — same predecessor tie-breaks
    assert cp == cv


@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), b=st.floats(0, 1))
def test_distance_bit_identical(network, seed, b):
    ep, ev = engines(network)
    n = network.num_nodes
    source, target = seed % n, (seed // 13) % n
    upper = bound_from(b, network)
    dp = ep.distance(source, target, upper_bound=upper)
    dv = ev.distance(source, target, upper_bound=upper)
    assert dp == dv
    assert invariant_counters(ep) == invariant_counters(ev)


@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(2, 9))
def test_nearest_bit_identical(network, seed, m):
    ep, ev = engines(network)
    source = seed % network.num_nodes
    is_target = lambda u: u % m == 1  # noqa: E731 - tiny shared predicate
    try:
        np_ = ep.nearest(source, is_target)
    except GraphError:
        with pytest.raises(GraphError):
            ev.nearest(source, is_target)
        return
    assert np_ == ev.nearest(source, is_target)
    assert invariant_counters(ep) == invariant_counters(ev)


@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(3, 11))
def test_query_search_bit_identical(network, seed, m):
    ep, ev = engines(network)
    n = network.num_nodes
    query = seed % n
    is_existing = [u % m == m - 1 for u in range(n)]
    is_candidate = [u % 3 == 0 and not is_existing[u] for u in range(n)]
    try:
        rp = ep.query_search(query, is_existing, is_candidate)
    except GraphError:
        with pytest.raises(GraphError):
            ev.query_search(query, is_existing, is_candidate)
        return
    rv = ev.query_search(query, is_existing, is_candidate)
    assert rp == rv  # nn stop, nn distance, and the RNN list in order
    assert invariant_counters(ep) == invariant_counters(ev)


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=40, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), b=st.floats(0.05, 1))
def test_nodes_within_bit_identical(use_scipy, network, seed, b):
    ep, ev = engines(network, use_scipy=use_scipy)
    source = seed % network.num_nodes
    max_cost = 0.2 + b * 3.0
    rp = ep.nodes_within(source, max_cost, cached=False)
    rv = ev.nodes_within(source, max_cost, cached=False)
    assert rp == rv  # same (node, dist) pairs in the same settle order
    assert all(
        type(u) is int and type(d) is float for u, d in rv
    )  # native types out of the numpy backend
    assert invariant_counters(ep) == invariant_counters(ev)


@settings(max_examples=25, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), b=st.floats(0, 1))
def test_incremental_nearest_bit_identical(network, seed, b):
    ep, ev = engines(network)
    n = network.num_nodes
    max_cost = bound_from(b, network)
    incp = ep.incremental_nearest(phase="inc")
    incv = ev.incremental_nearest(phase="inc")
    for k in range(4):
        source = (seed // (k + 1)) % n
        assert incp.add_source(source, max_cost=max_cost) == incv.add_source(
            source, max_cost=max_cost
        )
        assert incp.distance == incv.distance
    assert incp.sources == incv.sources
    assert invariant_counters(ep, "inc") == invariant_counters(ev, "inc")


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(3, 11))
def test_multi_source_labels_bit_identical(use_scipy, network, seed, m):
    ep, ev = engines(network, use_scipy=use_scipy)
    n = network.num_nodes
    sources = [u for u in range(n) if u % m == m - 1] or [seed % n]
    fp = ep.multi_source_labels(sources, cached=False)
    fv = ev.multi_source_labels(sources, cached=False)
    assert fp.distance == fv.distance  # exact float equality
    assert fp.label == fv.label  # same canonical tie-breaks
    assert fp.reachable == fv.reachable
    assert invariant_counters(ep) == invariant_counters(ev)


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=30, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(3, 11))
def test_forward_replay_bit_identical(use_scipy, network, seed, m):
    ep, ev = engines(network, use_scipy=use_scipy)
    n = network.num_nodes
    sources = [u for u in range(n) if u % m == m - 1] or [seed % n]
    field = ep.multi_source_labels(sources, cached=False)
    targets = list(range(n))
    rp = ep.label_forward_distances(field, targets)
    rv = ev.label_forward_distances(field, targets)
    assert rp == rv
    # Sources replay to exactly 0.0; everything reachable is finite.
    for s in sources:
        assert rp[s] == 0.0


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=25, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(3, 11))
def test_candidate_rnn_balls_bit_identical(use_scipy, network, seed, m):
    ep, ev = engines(network, use_scipy=use_scipy)
    n = network.num_nodes
    sources = [u for u in range(n) if u % m == m - 1] or [seed % n]
    candidates = [u for u in range(n) if u % 3 == 0 and u not in set(sources)]
    is_query = [u % 2 == 0 for u in range(n)]
    # The field comes from a third engine so the counters compared
    # below cover exactly the ball searches on each side.
    field = SearchEngine(network, kernel="python").multi_source_labels(
        sources, cached=False
    )
    bp = ep.candidate_rnn_balls(candidates, field.distance, is_query)
    bv = ev.candidate_rnn_balls(candidates, field.distance, is_query)
    assert bp == bv  # same members, same settle order, same ball sizes
    assert invariant_counters(ep) == invariant_counters(ev)


@pytest.mark.parametrize("use_scipy", [True, False], ids=["scipy", "frontier"])
@settings(max_examples=25, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6), m=st.integers(3, 11))
def test_batch_query_rows_bit_identical(use_scipy, network, seed, m):
    ep, ev = engines(network, use_scipy=use_scipy)
    n = network.num_nodes
    sources = [u for u in range(n) if u % m == m - 1] or [seed % n]
    source_set = set(sources)
    is_candidate = [u % 3 == 0 and u not in source_set for u in range(n)]
    nodes = [u for u in range(n) if u % 2 == 0]
    # The field comes from a third engine so the counters compared
    # below cover exactly the query-ball searches on each side.
    helper = SearchEngine(network, kernel="python")
    field = helper.multi_source_labels(sources, cached=False)
    nn_forward = helper.label_forward_distances(field, nodes)
    labels = [field.label[node] for node in nodes]
    rp = ep.batch_query_rows(nodes, nn_forward, labels, is_candidate)
    rv = ev.batch_query_rows(nodes, nn_forward, labels, is_candidate)
    assert rp == rv  # counts, flat members + dists, and ball sizes
    assert all(type(d) is float for d in rv[2])  # no np.float64 leakage
    assert all(type(u) is int for u in rv[1])
    assert invariant_counters(ep) == invariant_counters(ev)


@settings(max_examples=15, deadline=None)
@given(network=cities(), seed=st.integers(0, 10 ** 6))
def test_kernel_swap_preserves_cache_correctness(network, seed):
    """set_kernel keeps the caches: a row computed by one backend and
    served to the other is exactly what the other would have computed
    (the contract makes the cache backend-agnostic)."""
    engine = SearchEngine(network, kernel="python")
    source = seed % network.num_nodes
    row_python = engine.sssp(source)
    engine.set_kernel("vectorized")
    assert engine.kernel_name == "vectorized"
    cached = engine.sssp(source)
    assert cached is row_python  # same object: the cache survived
    fresh = engine.sssp(source, cached=False)
    assert fresh == row_python
