"""Exporters: golden snapshots, schema validation, round-trips.

The golden files under ``tests/obs/golden/`` snapshot the exact exporter
output for the deterministic reference trace (fake clock, fixed
metrics).  A deliberate format change regenerates them with::

    PYTHONPATH=src python -m tests.obs.test_export regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.obs import (
    chrome_trace,
    load_chrome_trace,
    load_jsonl,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

from .conftest import build_reference_trace

GOLDEN = Path(__file__).parent / "golden"


def render_chrome(trace):
    return json.dumps(chrome_trace(trace), indent=1, sort_keys=True) + "\n"


class TestGolden:
    def test_chrome_trace_matches_golden(self, reference_trace):
        expected = (GOLDEN / "chrome_trace.json").read_text()
        assert render_chrome(reference_trace) == expected

    def test_summary_matches_golden(self, reference_trace):
        expected = (GOLDEN / "summary.txt").read_text()
        assert summarize(reference_trace.spans, reference_trace.metrics) + "\n" == expected


class TestChromeTrace:
    def test_validates_own_output(self, reference_trace):
        assert validate_chrome_trace(chrome_trace(reference_trace)) == []

    def test_round_trip_preserves_tree_and_metrics(self, reference_trace, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(reference_trace, path)
        spans, metrics = load_chrome_trace(path)
        assert [s.name for s in spans] == [s.name for s in reference_trace.spans]
        assert [s.parent for s in spans] == [s.parent for s in reference_trace.spans]
        assert [s.lane for s in spans] == [s.lane for s in reference_trace.spans]
        for loaded, original in zip(spans, reference_trace.spans):
            assert loaded.start == pytest.approx(original.start, abs=1e-9)
            assert loaded.duration == pytest.approx(original.duration, abs=1e-9)
        assert metrics == reference_trace.metrics.as_dict()

    def test_summarize_agrees_between_live_and_loaded(self, reference_trace, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(reference_trace, path)
        spans, metrics = load_chrome_trace(path)
        assert summarize(spans, metrics) == summarize(
            reference_trace.spans, reference_trace.metrics
        )

    def test_lane_metadata_one_thread_per_lane(self, reference_trace):
        obj = chrome_trace(reference_trace)
        thread_names = [
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_names == ["main"]
        assert obj["metadata"]["lanes"] == ["main"]

    @pytest.mark.parametrize(
        "corrupt, problem",
        [
            ([], "top level"),
            ({"traceEvents": {}}, "must be a list"),
            ({"traceEvents": [{"ph": "Q"}]}, "ph must be"),
            (
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0,
                                  "ts": -1, "dur": 0, "args": {"span": 0}}]},
                "ts must be",
            ),
            (
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0,
                                  "ts": 0, "dur": 0, "args": {}}]},
                "args.span",
            ),
            (
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0,
                                  "ts": 0, "dur": 0,
                                  "args": {"span": 0, "parent": 7}}]},
                "dangling parent",
            ),
        ],
    )
    def test_validator_rejects_corruption(self, corrupt, problem):
        errors = validate_chrome_trace(corrupt)
        assert errors and any(problem in e for e in errors)

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": "nope"}')
        with pytest.raises(ValueError):
            load_chrome_trace(str(path))


class TestJsonl:
    def test_lines_parse_and_cover_spans_and_metrics(self, reference_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(reference_trace, str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [r["type"] for r in records]
        assert kinds[0] == "meta"
        assert kinds.count("span") == len(reference_trace.spans)
        metric_names = {r["name"] for r in records if r["type"] == "metric"}
        assert "search.total.searches" in metric_names

    def test_load_round_trips_write(self, reference_trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(reference_trace, path)
        spans, metrics = load_jsonl(path)
        assert [
            (s.name, s.start, s.duration, s.index, s.parent, s.attrs)
            for s in spans
        ] == [
            (s.name, s.start, s.duration, s.index, s.parent, s.attrs)
            for s in reference_trace.spans
        ]
        assert metrics == reference_trace.metrics.as_dict()

    def test_loaded_spans_render_a_valid_chrome_trace(
        self, reference_trace, tmp_path
    ):
        from repro.obs import Trace

        path = str(tmp_path / "trace.jsonl")
        write_jsonl(reference_trace, path)
        spans, _ = load_jsonl(path)
        reloaded = Trace(lane=reference_trace.lane)
        reloaded.spans = spans
        assert validate_chrome_trace(chrome_trace(reloaded)) == []

    @pytest.mark.parametrize(
        "content, problem",
        [
            ("", "meta"),
            ('{"type": "mystery"}\n', "unknown record type"),
            (
                '{"type": "meta", "generator": "elsewhere", "version": 1,'
                ' "lanes": [], "spans": 0}\n',
                "meta",
            ),
            (
                '{"type": "meta", "generator": "repro.obs", "version": 1,'
                ' "lanes": [], "spans": 3}\n',
                "meta says 3 spans",
            ),
            (
                '{"type": "meta", "generator": "repro.obs", "version": 1,'
                ' "lanes": [], "spans": 0}\nnot json\n',
                "not JSON",
            ),
        ],
    )
    def test_load_rejects_corrupt_files(self, tmp_path, content, problem):
        path = tmp_path / "bad.jsonl"
        path.write_text(content)
        with pytest.raises(ValueError) as excinfo:
            load_jsonl(str(path))
        assert problem in str(excinfo.value)


def regenerate():
    GOLDEN.mkdir(exist_ok=True)
    trace = build_reference_trace()
    (GOLDEN / "chrome_trace.json").write_text(render_chrome(trace))
    (GOLDEN / "summary.txt").write_text(
        summarize(trace.spans, trace.metrics) + "\n"
    )
    print(f"golden files regenerated under {GOLDEN}")


if __name__ == "__main__" and "regenerate" in sys.argv:
    regenerate()
