"""The typed metrics registry: semantics, serialization, merging."""

import pytest

from repro.network.engine import SearchStats
from repro.obs import SEARCH_STAT_FIELDS, MetricsRegistry


class TestKinds:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("searches")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.counter("searches") is counter  # get-or-create

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("rows").set(5)
        registry.gauge("rows").set(3)
        assert registry.gauge("rows").value == 3

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("chunk")
        for value in (4.0, 1.0, 7.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12.0
        assert histogram.min == 1.0
        assert histogram.max == 7.0
        assert histogram.mean == 4.0

    def test_empty_registry_is_falsy(self):
        registry = MetricsRegistry()
        assert not registry
        registry.counter("x").inc()
        assert registry


class TestSearchStatsAbsorption:
    def test_absorb_records_phase_and_total(self):
        registry = MetricsRegistry()
        stats = SearchStats(searches=3, cache_hits=1, settled=40, pushes=50)
        registry.absorb_search_stats("preprocess", stats)
        registry.absorb_search_stats("selection", stats)
        assert registry.counter("search.preprocess.searches").value == 3
        assert registry.counter("search.selection.settled").value == 40
        assert registry.counter("search.total.searches").value == 6
        assert registry.counter("search.total.pushes").value == 100

    def test_absorb_profile_covers_every_field(self):
        registry = MetricsRegistry()
        profile = {"ordering": SearchStats(searches=2, settled=9, pushes=11)}
        registry.absorb_search_profile(profile)
        for field in SEARCH_STAT_FIELDS:
            assert f"search.ordering.{field}" in registry.counters


class TestSerialization:
    def test_as_dict_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(4.0)
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.as_dict() == registry.as_dict()

    def test_as_dict_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.as_dict()["counters"]) == ["alpha", "zeta"]

    def test_merge_semantics(self):
        ours = MetricsRegistry()
        ours.counter("c").inc(2)
        ours.gauge("g").set(1)
        ours.histogram("h").observe(1.0)
        theirs = MetricsRegistry()
        theirs.counter("c").inc(3)
        theirs.counter("new").inc(1)
        theirs.gauge("g").set(9)
        theirs.histogram("h").observe(5.0)
        ours.merge(theirs)
        assert ours.counter("c").value == 5
        assert ours.counter("new").value == 1
        assert ours.gauge("g").value == 9  # last write wins
        h = ours.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (2, 6.0, 1.0, 5.0)

    def test_names_spans_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(0)
        registry.histogram("c").observe(1)
        assert list(registry.names()) == ["a", "b", "c"]
