"""Span-tree invariants: structural unit tests plus a property test
over randomly generated work trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs import (
    NULL_SPAN,
    PLAN_PHASES,
    Trace,
    current_trace,
    extract_run,
    iter_tree,
    phase_timings,
    span,
    traced,
    tracing,
)

from .conftest import FakeClock


class TestTraceStructure:
    def test_nesting_sets_parent_indices(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with trace.begin("root"):
            fake_clock.tick(1.0)
            with trace.begin("child"):
                fake_clock.tick(1.0)
                with trace.begin("grandchild"):
                    fake_clock.tick(1.0)
            with trace.begin("sibling"):
                fake_clock.tick(1.0)
        names = {s.name: s for s in trace.spans}
        assert names["root"].parent is None
        assert names["child"].parent == names["root"].index
        assert names["grandchild"].parent == names["child"].index
        assert names["sibling"].parent == names["root"].index
        assert trace.open_depth() == 0

    def test_durations_nest(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with trace.begin("root"):
            fake_clock.tick(0.5)
            with trace.begin("child"):
                fake_clock.tick(2.0)
            fake_clock.tick(0.25)
        root, child = trace.spans
        assert root.duration == 2.75
        assert child.duration == 2.0
        assert root.start <= child.start
        assert child.end <= root.end

    def test_exception_closes_span_and_marks_error(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with pytest.raises(ValueError):
            with trace.begin("work"):
                fake_clock.tick(1.0)
                raise ValueError("boom")
        (work,) = trace.spans
        assert work.attrs["error"] == "ValueError"
        assert work.duration == 1.0
        assert trace.open_depth() == 0

    def test_extract_run_rebases_to_self_contained(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with trace.begin("earlier"):
            fake_clock.tick(1.0)
        base = len(trace.spans)
        with trace.begin("run"):
            with trace.begin("phase"):
                fake_clock.tick(1.0)
        run = extract_run(trace, base)
        assert [s.name for s in run] == ["run", "phase"]
        assert run[0].index == 0 and run[0].parent is None
        assert run[1].parent == 0
        # Copies, not aliases: mutating the slice leaves the trace alone.
        run[0].attrs["x"] = 1
        assert "x" not in trace.spans[base].attrs

    def test_phase_timings_reads_plan_children(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with trace.begin("plan_route"):
            for phase in PLAN_PHASES:
                with trace.begin(phase):
                    fake_clock.tick(1.0)
        timings = phase_timings(trace.spans)
        assert set(timings) == set(PLAN_PHASES) | {"total"}
        assert timings["total"] == pytest.approx(4.0)
        for phase in PLAN_PHASES:
            assert timings[phase] == pytest.approx(1.0)

    def test_iter_tree_is_depth_first(self, fake_clock):
        trace = Trace(clock=fake_clock)
        with trace.begin("a"):
            with trace.begin("b"):
                pass
            with trace.begin("c"):
                pass
        with trace.begin("d"):
            pass
        assert [s.name for s in iter_tree(trace.spans)] == ["a", "b", "c", "d"]


class TestGlobalTrace:
    def test_span_is_noop_when_disabled(self):
        assert current_trace() is None
        handle = span("anything", attr=1)
        assert handle is NULL_SPAN
        with handle as h:
            assert h.set(more=2) is h  # chainable, records nothing

    def test_tracing_context_enables_and_restores(self):
        assert current_trace() is None
        with tracing() as trace:
            assert current_trace() is trace
            with span("inside"):
                pass
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["inside"]

    def test_tracing_restores_previous_trace_when_nested(self):
        with tracing() as outer:
            with tracing() as inner:
                with span("deep"):
                    pass
                assert current_trace() is inner
            assert current_trace() is outer
        assert [s.name for s in inner.spans] == ["deep"]
        assert outer.spans == []

    def test_traced_decorator_records_under_function_name(self):
        @traced()
        def work():
            return 42

        assert work() == 42  # disabled: plain call
        with tracing() as trace:
            assert work() == 42
        assert len(trace.spans) == 1
        assert trace.spans[0].name.endswith("work")

    def test_default_lane_stamps_new_traces(self):
        obs.set_default_lane("worker-test")
        try:
            assert Trace().lane == "worker-test"
        finally:
            obs.set_default_lane("main")
        assert Trace().lane == "main"


# ----------------------------------------------------------------------
# Property test: arbitrary work trees keep the span invariants
# ----------------------------------------------------------------------

# A work tree: (self_work_before, [children], self_work_after), with
# durations drawn from exact binary fractions so float sums stay exact.
work = st.integers(min_value=0, max_value=8).map(lambda n: n / 16.0)
trees = st.deferred(
    lambda: st.tuples(work, st.lists(trees, max_size=3), work)
)


def record(trace, clock, tree, name="n"):
    before, children, after = tree
    with trace.begin(name):
        clock.tick(before)
        for i, child in enumerate(children):
            record(trace, clock, child, name=f"{name}.{i}")
        clock.tick(after)


@settings(max_examples=60, deadline=None)
@given(forest=st.lists(trees, min_size=1, max_size=3))
def test_span_tree_invariants(forest):
    clock = FakeClock()
    trace = Trace(clock=clock)
    for i, tree in enumerate(forest):
        record(trace, clock, tree, name=f"root{i}")

    spans = trace.spans
    assert trace.open_depth() == 0
    by_index = {s.index: s for s in spans}
    assert sorted(by_index) == list(range(len(spans)))

    for s in spans:
        if s.parent is None:
            continue
        parent = by_index[s.parent]
        # Children start later and are fully contained in the parent.
        assert parent.index < s.index
        assert parent.start <= s.start
        assert s.end <= parent.end + 1e-9

    for s in spans:
        child_total = sum(c.duration for c in trace.children(s.index))
        assert child_total <= s.duration + 1e-9
