"""Shared fixtures for the obs tests: a deterministic clock and a
canonical small trace used by the exporter golden tests."""

import pytest

from repro.obs import Trace


class FakeClock:
    """A controllable monotonic clock: ``tick`` advances, calls read."""

    def __init__(self, start=0.0):
        self.t = float(start)

    def tick(self, seconds):
        self.t += seconds

    def __call__(self):
        return self.t


def build_reference_trace(clock=None):
    """The canonical deterministic trace the golden files snapshot:
    two plan-like roots, nesting, attributes, and a few metrics."""
    if clock is None:
        clock = FakeClock()
    trace = Trace(lane="main", clock=clock)
    with trace.begin("plan_route", {"route_id": "r0", "K": 5}):
        clock.tick(0.001)
        with trace.begin("preprocess"):
            clock.tick(0.25)
            with trace.begin("preprocess.searches", {"queries": 7}):
                clock.tick(0.5)
        with trace.begin("selection") as selection:
            clock.tick(0.125)
            selection.set(selected=3)
        clock.tick(0.001)
    with trace.begin("postprocess", {"max_rounds": 2}):
        clock.tick(0.0625)
    trace.metrics.counter("search.total.searches").inc(7)
    trace.metrics.counter("search.total.settled").inc(91)
    trace.metrics.gauge("engine.cache_rows").set(12)
    trace.metrics.histogram("chunk.nodes").observe(3)
    trace.metrics.histogram("chunk.nodes").observe(4)
    return trace


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def reference_trace():
    return build_reference_trace()
