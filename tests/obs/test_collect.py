"""The cross-process shard contract: drain deltas, merge re-indexing."""

import pickle

import pytest

import repro.obs as obs
from repro.obs import Trace, span
from repro.obs.collect import (
    TraceShard,
    begin_worker_trace,
    drain_shard,
    merge_shard,
    worker_lane,
)

from .conftest import FakeClock


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Worker-trace helpers mutate process globals; leave none behind."""
    yield
    obs.disable()
    obs.set_default_lane("main")


class TestWorkerTrace:
    def test_begin_worker_trace_installs_lane_and_enables(self):
        trace = begin_worker_trace()
        assert obs.current_trace() is trace
        assert trace.lane == worker_lane()
        assert trace.lane.startswith("worker-")
        with span("chunk"):
            pass
        assert trace.spans[0].lane == worker_lane()

    def test_drain_returns_none_without_worker_trace(self):
        assert obs.current_trace() is None
        assert drain_shard() is None

    def test_drain_rejects_open_spans(self):
        trace = begin_worker_trace()
        handle = trace.begin("still-open")
        with pytest.raises(RuntimeError):
            drain_shard()
        handle.__exit__(None, None, None)

    def test_drain_ships_only_the_delta(self):
        trace = begin_worker_trace()
        with span("task-1"):
            pass
        trace.metrics.counter("work").inc(3)
        trace.metrics.histogram("sizes").observe(5.0)
        first = drain_shard()
        assert [s.name for s in first.spans] == ["task-1"]
        assert first.metrics["counters"]["work"] == 3
        assert first.metrics["histograms"]["sizes"]["count"] == 1

        with span("task-2"):
            pass
        trace.metrics.counter("work").inc(2)
        second = drain_shard()
        # Spans and metrics shipped before do not ship again.
        assert [s.name for s in second.spans] == ["task-2"]
        assert second.spans[0].index == 0
        assert second.metrics["counters"]["work"] == 2
        assert "sizes" not in second.metrics.get("histograms", {})

        third = drain_shard()
        assert third.spans == []
        assert third.metrics["counters"] == {}

    def test_shards_pickle(self):
        begin_worker_trace()
        with span("task", nodes=4):
            pass
        shard = drain_shard()
        clone = pickle.loads(pickle.dumps(shard))
        assert clone.lane == shard.lane
        assert [s.name for s in clone.spans] == ["task"]
        assert clone.spans[0].attrs == {"nodes": 4}


class TestMergeShard:
    def _shard(self, names_and_parents, lane="worker-9"):
        worker = Trace(lane=lane, clock=FakeClock())
        for name, parent in names_and_parents:
            s = worker.begin(name).span
            worker.finish(s)
            s.parent = parent
        return TraceShard(lane=lane, spans=worker.spans, metrics={})

    def test_merge_reindexes_and_adopts_roots(self, fake_clock):
        parent_trace = Trace(clock=fake_clock)
        with parent_trace.begin("fanout") as fan:
            fan_index = fan.span.index
        shard = self._shard([("chunk", None), ("search", 0)])
        merge_shard(parent_trace, shard, parent=fan_index)
        chunk = parent_trace.spans[1]
        search = parent_trace.spans[2]
        assert chunk.name == "chunk"
        assert chunk.parent == fan_index  # shard root adopted
        assert search.parent == chunk.index  # internal link re-offset
        assert chunk.lane == "worker-9" and search.lane == "worker-9"

    def test_merge_without_parent_keeps_shard_roots(self, fake_clock):
        parent_trace = Trace(clock=fake_clock)
        shard = self._shard([("chunk", None)])
        merge_shard(parent_trace, shard)
        assert parent_trace.spans[0].parent is None

    def test_merge_folds_metrics(self, fake_clock):
        parent_trace = Trace(clock=fake_clock)
        parent_trace.metrics.counter("work").inc(1)
        shard = TraceShard(
            lane="worker-9", spans=[], metrics={"counters": {"work": 4}}
        )
        merge_shard(parent_trace, shard)
        assert parent_trace.metrics.counter("work").value == 5

    def test_merged_timestamps_are_not_rebased(self, fake_clock):
        # Worker clocks share the parent's monotonic timebase; merge
        # must keep span starts exactly where the worker measured them.
        worker_clock = FakeClock(start=100.0)
        worker = Trace(lane="worker-9", clock=worker_clock)
        with worker.begin("chunk"):
            worker_clock.tick(1.0)
        shard = TraceShard(lane="worker-9", spans=worker.spans, metrics={})
        parent_trace = Trace(clock=fake_clock)
        merge_shard(parent_trace, shard)
        assert parent_trace.spans[0].start == 100.0
        assert parent_trace.spans[0].duration == 1.0
