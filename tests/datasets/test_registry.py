"""Unit tests for the dataset registry."""

import pytest

from repro.datasets.registry import available_cities, clear_cache, load_city
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_available(self):
        assert available_cities() == ("chicago", "nyc", "orlando")

    def test_load_and_cache_identity(self):
        clear_cache()
        a = load_city("orlando", scale=0.05)
        b = load_city("orlando", scale=0.05)
        assert a is b
        c = load_city("orlando", scale=0.06)
        assert c is not a
        clear_cache()
        d = load_city("orlando", scale=0.05)
        assert d is not a

    def test_case_insensitive(self):
        clear_cache()
        assert load_city("Orlando", scale=0.05) is load_city(
            "ORLANDO", scale=0.05
        )

    def test_seed_override(self):
        clear_cache()
        a = load_city("orlando", scale=0.05, seed=1)
        b = load_city("orlando", scale=0.05, seed=2)
        assert a is not b
        assert a.queries.nodes != b.queries.nodes

    def test_unknown_city(self):
        with pytest.raises(ConfigurationError, match="unknown city"):
            load_city("atlantis")
