"""Unit tests for the small OPT-comparison extract."""

import pytest

from repro.datasets.small import small_nyc_extract


class TestSmallExtract:
    def test_paper_counts_default(self):
        extract = small_nyc_extract()
        assert len(extract.transit.existing_stops) == 7
        assert len(extract.candidates) == 7
        assert len(extract.queries) == 132

    def test_custom_counts(self):
        extract = small_nyc_extract(
            num_existing=5, num_candidates=4, num_query_nodes=50, seed=9
        )
        assert len(extract.transit.existing_stops) == 5
        assert len(extract.candidates) == 4
        assert len(extract.queries) == 50

    def test_candidates_disjoint_from_existing(self):
        extract = small_nyc_extract()
        existing = set(extract.transit.existing_stops)
        assert not existing.intersection(extract.candidates)

    def test_shared_stop_between_routes(self):
        """Connectivity must be a real coverage function: some stop
        serves at least two routes."""
        extract = small_nyc_extract()
        degrees = [
            extract.transit.degree(s) for s in extract.transit.existing_stops
        ]
        assert max(degrees) >= 2

    def test_instance_enumerable_by_opt(self):
        extract = small_nyc_extract()
        instance = extract.instance(alpha=1.0)
        from repro.core.exact import optimal_stop_set

        best_set, best = optimal_stop_set(instance, 3)
        assert best >= 0
        assert len(best_set) <= 3

    def test_deterministic(self):
        a = small_nyc_extract(seed=3)
        b = small_nyc_extract(seed=3)
        assert a.candidates == b.candidates
        assert a.queries.nodes == b.queries.nodes
