"""Unit tests for the synthetic city dataset builders."""

import pytest

from repro.datasets.cities import PAPER_SIZES, chicago, nyc, orlando
from repro.exceptions import ConfigurationError


class TestBuilders:
    @pytest.mark.parametrize("builder", [chicago, nyc, orlando])
    def test_complete_dataset(self, builder):
        dataset = builder(0.05)
        assert dataset.network.is_connected()
        assert dataset.transit.num_routes >= 4
        assert len(dataset.transit.existing_stops) >= 4
        assert len(dataset.queries) >= 1000
        stats = dataset.statistics()
        assert stats["S_new"] + stats["S_existing"] == stats["V"]

    def test_chicago_coastline(self):
        """Chicago's lattice is cut on the east: the bounding box is
        wider in y than x."""
        from repro.network.geometry import bounding_box

        dataset = chicago(0.05)
        min_x, min_y, max_x, max_y = bounding_box(dataset.network.coordinates())
        assert (max_y - min_y) > (max_x - min_x)

    def test_nyc_has_regions(self):
        dataset = nyc(0.05)
        assert dataset.regions is not None
        assert [name for name, _ in dataset.regions] == [
            "Brooklyn", "Manhattan", "Queens", "Bronx",
        ]

    def test_chicago_orlando_no_regions(self):
        assert chicago(0.05).regions is None
        assert orlando(0.05).regions is None

    def test_scale_grows_sizes(self):
        small = orlando(0.05)
        large = orlando(0.1)
        assert large.network.num_nodes > small.network.num_nodes
        assert len(large.queries) > len(small.queries)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            chicago(0.0)
        with pytest.raises(ConfigurationError):
            chicago(1.5)

    def test_deterministic_per_seed(self):
        a = orlando(0.05, seed=3)
        b = orlando(0.05, seed=3)
        assert a.queries.nodes == b.queries.nodes
        assert a.network.num_nodes == b.network.num_nodes

    def test_instance_construction(self):
        dataset = orlando(0.05)
        instance = dataset.instance(alpha=10.0)
        assert instance.alpha == 10.0
        assert len(instance.queries) == len(dataset.queries)
        sub = dataset.queries.subset(dataset.queries.nodes[:100])
        partial = dataset.instance(alpha=10.0, queries=sub)
        assert len(partial.queries) == 100

    def test_paper_sizes_table(self):
        assert PAPER_SIZES["Chicago"]["V"] == 58_337
        assert PAPER_SIZES["NYC"]["Q"] == 793_496
        assert set(PAPER_SIZES) == {"Chicago", "NYC", "Orlando"}
