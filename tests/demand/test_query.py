"""Unit tests for queries and the multiset Q (Definitions 4 and 6)."""

import pytest

from repro.demand.query import QuerySet, TransitQuery
from repro.exceptions import DemandError

from ..conftest import V1, V6, V7, V8


class TestTransitQuery:
    def test_nodes(self):
        q = TransitQuery(origin=3, destination=7)
        assert q.nodes() == (3, 7)

    def test_frozen(self):
        q = TransitQuery(1, 2)
        with pytest.raises(Exception):
            q.origin = 5  # type: ignore[misc]


class TestQuerySet:
    def test_from_queries_builds_multiset(self, toy_network):
        """Example 3: three queries -> Q = {v1,v1,v1,v6,v7,v8}."""
        queries = [
            TransitQuery(V6, V1),
            TransitQuery(V1, V7),
            TransitQuery(V8, V1),
        ]
        qs = QuerySet.from_queries(toy_network, queries)
        assert sorted(qs.nodes) == sorted([V1, V1, V1, V6, V7, V8])
        assert len(qs) == 6

    def test_duplicates_preserved(self, toy_network):
        qs = QuerySet(toy_network, [1, 1, 1, 2])
        assert len(qs) == 4
        assert qs.distinct_nodes() == [1, 2]

    def test_empty_rejected(self, toy_network):
        with pytest.raises(DemandError, match="at least one"):
            QuerySet(toy_network, [])

    def test_out_of_range_rejected(self, toy_network):
        with pytest.raises(DemandError, match="outside"):
            QuerySet(toy_network, [0, 99])

    def test_negative_rejected(self, toy_network):
        with pytest.raises(DemandError):
            QuerySet(toy_network, [-1])

    def test_iteration(self, toy_network):
        qs = QuerySet(toy_network, [3, 1, 3])
        assert list(qs) == [3, 1, 3]

    def test_subset(self, toy_network):
        qs = QuerySet(toy_network, [0, 1, 2, 3], name="full")
        sub = qs.subset([1, 2], name="part")
        assert sub.nodes == [1, 2]
        assert sub.name == "part"
        assert sub.network is toy_network

    def test_name_in_repr(self, toy_network):
        qs = QuerySet(toy_network, [0], name="Brooklyn")
        assert "Brooklyn" in repr(qs)
