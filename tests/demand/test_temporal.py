"""Unit tests for time-sliced demand."""

import pytest

from repro.demand.query import QuerySet
from repro.demand.temporal import (
    HOURS_PER_DAY,
    TemporalDemand,
    _window_hours,
    simulate_daily_profile,
)
from repro.exceptions import DemandError


@pytest.fixture
def demand(grid_network):
    return TemporalDemand(
        grid_network,
        {8: [0, 1, 2, 3], 17: [4, 5, 6], 23: [7], 2: [8]},
    )


class TestTemporalDemand:
    def test_hours_and_volumes(self, demand):
        assert demand.hours() == [2, 8, 17, 23]
        assert demand.volume(8) == 4
        assert demand.volume(12) == 0
        assert demand.total_volume() == 9

    def test_slice(self, demand):
        qs = demand.slice(8)
        assert isinstance(qs, QuerySet)
        assert sorted(qs.nodes) == [0, 1, 2, 3]
        assert qs.name == "h08"

    def test_slice_empty_hour_raises(self, demand):
        with pytest.raises(DemandError):
            demand.slice(12)

    def test_window(self, demand):
        qs = demand.window(8, 18)
        assert sorted(qs.nodes) == [0, 1, 2, 3, 4, 5, 6]

    def test_night_window_wraps(self, demand):
        qs = demand.night()
        assert sorted(qs.nodes) == [7, 8]

    def test_daytime(self, demand):
        qs = demand.daytime()
        assert sorted(qs.nodes) == [0, 1, 2, 3, 4, 5, 6]

    def test_peak_hour(self, demand):
        assert demand.peak_hour() == 8

    def test_empty_window_raises(self, demand):
        with pytest.raises(DemandError):
            demand.window(10, 12)

    def test_validation(self, grid_network):
        with pytest.raises(DemandError):
            TemporalDemand(grid_network, {25: [0]})
        with pytest.raises(DemandError):
            TemporalDemand(grid_network, {8: [999]})

    def test_empty_peak_raises(self, grid_network):
        with pytest.raises(DemandError):
            TemporalDemand(grid_network, {}).peak_hour()


class TestSimulateDailyProfile:
    def test_conserves_demand(self, grid_network):
        base = QuerySet(grid_network, list(range(36)) * 10)
        temporal = simulate_daily_profile(base, seed=1)
        assert temporal.total_volume() == len(base)

    def test_peaks_dominate(self, grid_network):
        base = QuerySet(grid_network, list(range(36)) * 50)
        temporal = simulate_daily_profile(
            base, peak_hours=(8, 17), peak_share=0.6, seed=2
        )
        peak_volume = temporal.volume(8) + temporal.volume(17)
        assert peak_volume > 0.4 * temporal.total_volume()

    def test_night_share(self, grid_network):
        base = QuerySet(grid_network, list(range(36)) * 50)
        temporal = simulate_daily_profile(base, night_share=0.2, seed=3)
        night = temporal.night()
        assert 0.1 < len(night) / temporal.total_volume() < 0.35

    def test_deterministic(self, grid_network):
        base = QuerySet(grid_network, list(range(36)))
        a = simulate_daily_profile(base, seed=4)
        b = simulate_daily_profile(base, seed=4)
        assert [a.volume(h) for h in range(24)] == [
            b.volume(h) for h in range(24)
        ]

    def test_invalid_shares(self, grid_network):
        base = QuerySet(grid_network, [0, 1])
        with pytest.raises(DemandError):
            simulate_daily_profile(base, peak_share=1.0)
        with pytest.raises(DemandError):
            simulate_daily_profile(base, peak_share=0.6, night_share=0.5)

    def test_planning_per_window(self, small_city):
        """End-to-end: plan a route on the night slice only."""
        from repro.core import EBRRConfig, plan_route
        from repro.core.utility import BRRInstance

        temporal = simulate_daily_profile(
            small_city.queries, night_share=0.2, seed=5
        )
        night_instance = BRRInstance(
            small_city.transit, temporal.night(), alpha=10.0
        )
        config = EBRRConfig(max_stops=6, max_adjacent_cost=2.0, alpha=10.0)
        result = plan_route(night_instance, config)
        assert result.route.num_stops >= 2


class TestWindowHours:
    def test_forward(self):
        assert _window_hours(6, 9) == [6, 7, 8]

    def test_wrapping(self):
        assert _window_hours(22, 2) == [22, 23, 0, 1]

    def test_full_day(self):
        assert len(_window_hours(0, 24)) == HOURS_PER_DAY

    def test_invalid(self):
        with pytest.raises(DemandError):
            _window_hours(-1, 5)
        with pytest.raises(DemandError):
            _window_hours(0, 25)
