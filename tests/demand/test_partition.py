"""Unit tests for demand partitioning (the effect-of-Q splits)."""

import pytest

from repro.demand.partition import by_regions, vertical_bands
from repro.demand.query import QuerySet
from repro.exceptions import DemandError


class TestVerticalBands:
    def test_equal_sizes(self, grid_network):
        qs = QuerySet(grid_network, list(range(36)))
        bands = vertical_bands(qs, 4)
        assert [len(b) for b in bands] == [9, 9, 9, 9]

    def test_ordered_south_to_north(self, grid_network):
        qs = QuerySet(grid_network, list(range(36)))
        bands = vertical_bands(qs, 4)
        maxima = [
            max(grid_network.coordinate(v)[1] for v in band) for band in bands
        ]
        assert maxima == sorted(maxima)
        assert bands[0].name == "Dataset1"
        assert bands[3].name == "Dataset4"

    def test_multiset_preserved(self, grid_network):
        qs = QuerySet(grid_network, [0, 0, 0, 35, 35, 18])
        bands = vertical_bands(qs, 2)
        rejoined = sorted(v for band in bands for v in band)
        assert rejoined == sorted(qs.nodes)

    def test_uneven_sizes_balanced(self, grid_network):
        qs = QuerySet(grid_network, list(range(10)))
        bands = vertical_bands(qs, 3)
        sizes = [len(b) for b in bands]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_bands(self, grid_network):
        qs = QuerySet(grid_network, [0, 1])
        with pytest.raises(DemandError):
            vertical_bands(qs, 3)

    def test_invalid_band_count(self, grid_network):
        qs = QuerySet(grid_network, [0, 1])
        with pytest.raises(DemandError):
            vertical_bands(qs, 0)


class TestByRegions:
    def test_voronoi_assignment(self, grid_network):
        qs = QuerySet(grid_network, list(range(36)))
        regions = [("SW", (0.0, 0.0)), ("NE", (5.0, 5.0))]
        parts = by_regions(qs, regions)
        assert parts[0].name == "SW"
        assert parts[1].name == "NE"
        assert len(parts[0]) + len(parts[1]) == 36
        # Node 0 is at (0,0); node 35 at (5,5).
        assert 0 in parts[0].nodes
        assert 35 in parts[1].nodes

    def test_empty_region_raises(self, grid_network):
        qs = QuerySet(grid_network, [0])  # only the SW corner
        with pytest.raises(DemandError, match="no query nodes"):
            by_regions(qs, [("SW", (0.0, 0.0)), ("FAR", (99.0, 99.0))])

    def test_no_regions_raises(self, grid_network):
        qs = QuerySet(grid_network, [0])
        with pytest.raises(DemandError):
            by_regions(qs, [])

    def test_multiset_preserved(self, grid_network):
        qs = QuerySet(grid_network, [0, 0, 35, 35, 35])
        parts = by_regions(qs, [("SW", (0.0, 0.0)), ("NE", (5.0, 5.0))])
        assert sorted(v for p in parts for v in p) == [0, 0, 35, 35, 35]
