"""Unit tests for the demand generators."""

import math

import pytest

from repro.demand.generators import commute_demand, hotspot_demand, uniform_demand
from repro.exceptions import DemandError
from repro.network.dijkstra import multi_source_costs
from repro.transit.builder import build_transit_network


class TestUniform:
    def test_size_and_range(self, grid_network):
        qs = uniform_demand(grid_network, 500, seed=1)
        assert len(qs) == 500
        assert all(0 <= v < grid_network.num_nodes for v in qs)

    def test_deterministic(self, grid_network):
        assert uniform_demand(grid_network, 100, seed=2).nodes == (
            uniform_demand(grid_network, 100, seed=2).nodes
        )

    def test_rejects_empty(self, grid_network):
        with pytest.raises(DemandError):
            uniform_demand(grid_network, 0)


class TestHotspot:
    def test_size(self, grid_network):
        qs = hotspot_demand(grid_network, 400, num_hotspots=3, seed=1)
        assert len(qs) == 400

    def test_clustered_more_than_uniform(self, grid_network):
        """Hotspot demand concentrates on fewer distinct nodes than
        uniform demand of the same size."""
        hot = hotspot_demand(grid_network, 400, num_hotspots=2,
                             sigma_km=0.6, seed=3)
        uni = uniform_demand(grid_network, 400, seed=3)
        assert len(set(hot.nodes)) < len(set(uni.nodes))

    def test_uncovered_bias(self, grid_network):
        """With transit supplied and uncovered_fraction=1, hotspots sit
        far from existing stops."""
        transit = build_transit_network(grid_network, num_routes=3, seed=4,
                                        stop_spacing_km=1.5)
        far = hotspot_demand(
            grid_network, 300, num_hotspots=4, sigma_km=0.4,
            transit=transit, uncovered_fraction=1.0,
            background_fraction=0.0, seed=5,
        )
        near = hotspot_demand(
            grid_network, 300, num_hotspots=4, sigma_km=0.4,
            transit=transit, uncovered_fraction=0.0,
            background_fraction=0.0, seed=5,
        )
        dist = multi_source_costs(grid_network, transit.existing_stops)
        mean_far = sum(dist[v] for v in far) / len(far)
        mean_near = sum(dist[v] for v in near) / len(near)
        assert mean_far > mean_near

    def test_parameter_validation(self, grid_network):
        with pytest.raises(DemandError):
            hotspot_demand(grid_network, 10, uncovered_fraction=1.5)
        with pytest.raises(DemandError):
            hotspot_demand(grid_network, 10, background_fraction=1.0)
        with pytest.raises(DemandError):
            hotspot_demand(grid_network, 10, num_hotspots=0)
        with pytest.raises(DemandError):
            hotspot_demand(grid_network, 0)

    def test_deterministic(self, grid_network):
        a = hotspot_demand(grid_network, 100, seed=7)
        b = hotspot_demand(grid_network, 100, seed=7)
        assert a.nodes == b.nodes


class TestCommute:
    def test_produces_od_pairs(self, grid_network):
        queries = commute_demand(grid_network, 100, seed=1)
        assert 0 < len(queries) <= 100
        for q in queries:
            assert q.origin != q.destination
            assert 0 <= q.origin < grid_network.num_nodes

    def test_destinations_core_biased(self, grid_network):
        """Destinations cluster near the geographic core."""
        queries = commute_demand(grid_network, 200, sigma_km=0.5, seed=2)
        coords = grid_network.coordinates()
        core = (2.5, 2.5)
        from repro.network.geometry import euclidean

        dest_mean = sum(
            euclidean(coords[q.destination], core) for q in queries
        ) / len(queries)
        origin_mean = sum(
            euclidean(coords[q.origin], core) for q in queries
        ) / len(queries)
        assert dest_mean <= origin_mean + 0.5

    def test_rejects_empty(self, grid_network):
        with pytest.raises(DemandError):
            commute_demand(grid_network, 0)
