"""Unit tests for the simulated ridership demand extraction."""

import math

import pytest

from repro.demand.ridership import ridership_demand, uncovered_query_nodes
from repro.exceptions import DemandError
from repro.network.dijkstra import multi_source_costs
from repro.transit.builder import build_transit_network


@pytest.fixture
def grid_transit(grid_network):
    return build_transit_network(
        grid_network, num_routes=3, seed=11, stop_spacing_km=1.5
    )


class TestRidershipDemand:
    def test_size_and_name(self, grid_transit):
        qs = ridership_demand(grid_transit, 300, seed=1, name="lynx")
        assert len(qs) == 300
        assert qs.name == "lynx"

    def test_growth_fraction_extremes(self, grid_transit, grid_network):
        near = ridership_demand(grid_transit, 300, growth_fraction=0.0, seed=2)
        far = ridership_demand(grid_transit, 300, growth_fraction=1.0, seed=2)
        dist = multi_source_costs(grid_network, grid_transit.existing_stops)
        mean_near = sum(dist[v] for v in near) / len(near)
        mean_far = sum(dist[v] for v in far) / len(far)
        assert mean_far > mean_near

    def test_deterministic(self, grid_transit):
        a = ridership_demand(grid_transit, 100, seed=3)
        b = ridership_demand(grid_transit, 100, seed=3)
        assert a.nodes == b.nodes

    def test_parameter_validation(self, grid_transit):
        with pytest.raises(DemandError):
            ridership_demand(grid_transit, 0)
        with pytest.raises(DemandError):
            ridership_demand(grid_transit, 10, growth_fraction=2.0)
        with pytest.raises(DemandError):
            ridership_demand(grid_transit, 10, num_growth_clusters=0)


class TestUncoveredQueryNodes:
    def test_matches_direct_computation(self, grid_transit, grid_network):
        qs = ridership_demand(grid_transit, 200, seed=4)
        limit = 1.0
        uncovered = uncovered_query_nodes(qs, grid_transit, walk_limit_km=limit)
        dist = multi_source_costs(grid_network, grid_transit.existing_stops)
        expected = [v for v in qs.nodes if dist[v] > limit + 1e-9]
        assert sorted(uncovered) == sorted(expected)

    def test_zero_limit_marks_non_stops(self, grid_transit, grid_network):
        qs = ridership_demand(grid_transit, 100, seed=5)
        uncovered = uncovered_query_nodes(qs, grid_transit, walk_limit_km=1e-9)
        stops = set(grid_transit.existing_stops)
        for v in qs.nodes:
            if v not in stops:
                assert v in uncovered

    def test_huge_limit_covers_all(self, grid_transit):
        qs = ridership_demand(grid_transit, 100, seed=6)
        assert uncovered_query_nodes(qs, grid_transit, walk_limit_km=1e9) == []

    def test_multiset_semantics(self, grid_transit, grid_network):
        # A node appearing twice appears twice in the uncovered list.
        dist = multi_source_costs(grid_network, grid_transit.existing_stops)
        far_node = max(grid_network.nodes(), key=lambda v: dist[v])
        from repro.demand.query import QuerySet

        qs = QuerySet(grid_network, [far_node, far_node])
        uncovered = uncovered_query_nodes(qs, grid_transit, walk_limit_km=0.1)
        assert uncovered == [far_node, far_node]
