"""Unit tests for zone grids and OD matrices."""

import pytest

from repro.demand.od_matrix import ODMatrix, ZoneGrid
from repro.demand.query import TransitQuery
from repro.exceptions import DemandError


@pytest.fixture
def grid(grid_network):
    # 6x6 unit grid network, 2 km zones -> 3x3 zones
    return ZoneGrid(grid_network, zone_km=2.0)


class TestZoneGrid:
    def test_zone_count_and_membership(self, grid, grid_network):
        assert grid.num_zones == 9
        # every node in exactly one zone
        seen = []
        for zone in grid.populated_zones():
            seen.extend(grid.nodes_in(zone))
        assert sorted(seen) == list(grid_network.nodes())

    def test_zone_of_consistent(self, grid):
        for zone in grid.populated_zones():
            for node in grid.nodes_in(zone):
                assert grid.zone_of(node) == zone

    def test_corner_nodes_in_different_zones(self, grid):
        assert grid.zone_of(0) != grid.zone_of(35)

    def test_invalid_zone_size(self, grid_network):
        with pytest.raises(DemandError):
            ZoneGrid(grid_network, zone_km=0.0)


class TestODMatrix:
    def test_from_queries_aggregates(self, grid):
        queries = [
            TransitQuery(0, 35),
            TransitQuery(1, 34),   # same zone pair as above
            TransitQuery(35, 0),   # reverse direction = distinct pair
        ]
        matrix = ODMatrix.from_queries(grid, queries)
        o, d = grid.zone_of(0), grid.zone_of(35)
        assert matrix.trips(o, d) == 2
        assert matrix.trips(d, o) == 1
        assert matrix.total_trips == 3

    def test_empty_rejected(self, grid):
        with pytest.raises(DemandError):
            ODMatrix(grid, {})

    def test_negative_rejected(self, grid):
        o = grid.populated_zones()[0]
        with pytest.raises(DemandError):
            ODMatrix(grid, {(o, o): -1.0})

    def test_empty_zone_rejected(self, grid, grid_network):
        # find an empty zone if any; on the 6x6/2km grid all 9 zones are
        # populated, so use an out-of-range pair instead
        with pytest.raises(DemandError):
            ODMatrix(grid, {(0, 999): 1.0})

    def test_sampling_respects_weights(self, grid, grid_network):
        o, d = grid.zone_of(0), grid.zone_of(35)
        matrix = ODMatrix(grid, {(o, d): 9.0, (d, o): 1.0})
        samples = matrix.sample_queries(1000, seed=3)
        forward = sum(
            1 for q in samples
            if grid.zone_of(q.origin) == o and grid.zone_of(q.destination) == d
        )
        assert 820 <= forward <= 980  # ~90%

    def test_sampled_nodes_in_right_zones(self, grid):
        o, d = grid.zone_of(0), grid.zone_of(35)
        matrix = ODMatrix(grid, {(o, d): 1.0})
        for q in matrix.sample_queries(50, seed=1):
            assert grid.zone_of(q.origin) == o
            assert grid.zone_of(q.destination) == d

    def test_sample_query_set(self, grid, grid_network):
        o, d = grid.zone_of(0), grid.zone_of(35)
        matrix = ODMatrix(grid, {(o, d): 1.0})
        qs = matrix.sample_query_set(grid_network, 40, seed=2)
        assert len(qs) == 80  # both endpoints enter Q

    def test_sampling_deterministic(self, grid):
        o, d = grid.zone_of(0), grid.zone_of(35)
        matrix = ODMatrix(grid, {(o, d): 1.0, (d, o): 2.0})
        a = matrix.sample_queries(30, seed=9)
        b = matrix.sample_queries(30, seed=9)
        assert a == b

    def test_invalid_sample_size(self, grid):
        o = grid.zone_of(0)
        d = grid.zone_of(35)
        matrix = ODMatrix(grid, {(o, d): 1.0})
        with pytest.raises(DemandError):
            matrix.sample_queries(0)

    def test_roundtrip_structure_preserved(self, grid, grid_network):
        """aggregate -> sample -> re-aggregate keeps the dominant pair
        dominant."""
        import numpy as np

        rng = np.random.default_rng(5)
        raw = [
            TransitQuery(int(rng.integers(0, 12)), int(rng.integers(24, 36)))
            for _ in range(200)
        ]
        matrix = ODMatrix.from_queries(grid, raw)
        resampled = matrix.sample_queries(200, seed=6)
        rematrix = ODMatrix.from_queries(grid, resampled)
        # Sampling noise can swap near-tied pairs; the original top pair
        # must stay among the heaviest three after the round trip.
        top_original = max(matrix.pairs(), key=lambda kv: kv[1])[0]
        top3_resampled = [
            pair
            for pair, _ in sorted(rematrix.pairs(), key=lambda kv: -kv[1])[:3]
        ]
        assert top_original in top3_resampled

    def test_end_to_end_planning(self, small_city):
        """Plan a route on OD-matrix-sampled demand."""
        from repro.core import BRRInstance, EBRRConfig, plan_route

        grid = ZoneGrid(small_city.network, zone_km=3.0)
        raw = [
            TransitQuery(o, d)
            for o, d in zip(
                small_city.queries.nodes[:100], small_city.queries.nodes[100:200]
            )
            if o != d
        ]
        matrix = ODMatrix.from_queries(grid, raw)
        qs = matrix.sample_query_set(small_city.network, 300, seed=4)
        instance = BRRInstance(small_city.transit, qs, alpha=10.0)
        config = EBRRConfig(max_stops=6, max_adjacent_cost=2.0, alpha=10.0)
        result = plan_route(instance, config)
        assert result.route.num_stops >= 2
