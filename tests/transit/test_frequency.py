"""Unit tests for frequency (headway) setting."""

import pytest

from repro.demand.query import QuerySet
from repro.exceptions import ConfigurationError
from repro.transit.frequency import (
    FrequencyPlan,
    _peak_leg_load,
    estimate_boardings,
    set_frequency,
)
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


@pytest.fixture
def new_route():
    return BusRoute("new", [V3, V4, V5], [V3, V4, V5])


class TestEstimateBoardings:
    def test_queries_board_at_nearest_route_stop(
        self, toy_transit, toy_network, new_route
    ):
        queries = QuerySet(toy_network, [V6, V7, V8])
        boardings = estimate_boardings(toy_transit, new_route, queries)
        # v6 -> v3 (3), v7 -> v4 (3), v8 -> v3 (4): all nearer than v2.
        assert boardings == [pytest.approx(2.0), pytest.approx(1.0), 0.0]

    def test_queries_closer_to_existing_do_not_board(
        self, toy_transit, toy_network, new_route
    ):
        # v1 is an existing stop itself: never boards the new route.
        queries = QuerySet(toy_network, [V1, V1])
        boardings = estimate_boardings(toy_transit, new_route, queries)
        assert sum(boardings) == 0.0

    def test_multiplicity_weighting(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V6, V6, V6])
        boardings = estimate_boardings(toy_transit, new_route, queries)
        assert boardings[0] == pytest.approx(3.0)

    def test_demand_scaling(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V6])
        boardings = estimate_boardings(
            toy_transit, new_route, queries, demand_per_query_node=2.5
        )
        assert boardings[0] == pytest.approx(2.5)


class TestSetFrequency:
    def test_plan_fields(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V6, V7, V8] * 50)
        plan = set_frequency(toy_transit, new_route, queries)
        assert plan.route_id == "new"
        assert 4.0 <= plan.headway_min <= 30.0
        assert plan.buses_per_hour == pytest.approx(60.0 / plan.headway_min)
        assert plan.boarding_penalty_min == pytest.approx(plan.headway_min / 2)
        assert len(plan.boardings) == new_route.num_stops

    def test_more_demand_shorter_headway(self, toy_transit, toy_network, new_route):
        light = set_frequency(
            toy_transit, new_route, QuerySet(toy_network, [V6] * 10)
        )
        heavy = set_frequency(
            toy_transit, new_route, QuerySet(toy_network, [V6] * 2000)
        )
        assert heavy.headway_min <= light.headway_min

    def test_no_demand_gets_max_headway(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V1])  # boards nothing
        plan = set_frequency(toy_transit, new_route, queries)
        assert plan.headway_min == 30.0

    def test_headway_clamped(self, toy_transit, toy_network, new_route):
        plan = set_frequency(
            toy_transit,
            new_route,
            QuerySet(toy_network, [V6] * 100000),
            min_headway_min=5.0,
        )
        assert plan.headway_min == 5.0

    def test_capacity_effect(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V6, V7, V8] * 100)
        small_bus = set_frequency(
            toy_transit, new_route, queries, vehicle_capacity=20
        )
        big_bus = set_frequency(
            toy_transit, new_route, queries, vehicle_capacity=120
        )
        assert small_bus.headway_min <= big_bus.headway_min

    def test_parameter_validation(self, toy_transit, toy_network, new_route):
        queries = QuerySet(toy_network, [V6])
        with pytest.raises(ConfigurationError):
            set_frequency(toy_transit, new_route, queries, vehicle_capacity=0)
        with pytest.raises(ConfigurationError):
            set_frequency(toy_transit, new_route, queries, load_factor=0.0)
        with pytest.raises(ConfigurationError):
            set_frequency(
                toy_transit, new_route, queries,
                min_headway_min=10.0, max_headway_min=5.0,
            )


class TestPeakLoad:
    def test_empty_and_single(self):
        assert _peak_leg_load([]) == 0.0
        assert _peak_leg_load([5.0]) == 0.0

    def test_symmetric_profile(self):
        # Two stops: everyone boarding at 0 rides leg 0; at 1 rides back.
        assert _peak_leg_load([10.0, 0.0]) == pytest.approx(10.0)
        assert _peak_leg_load([0.0, 10.0]) == pytest.approx(10.0)

    def test_peak_at_middle(self):
        load = _peak_leg_load([4.0, 0.0, 0.0, 4.0])
        assert load >= 4.0
