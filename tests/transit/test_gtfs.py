"""Unit tests for GTFS-like transit persistence."""

import pytest

from repro.exceptions import DataFormatError
from repro.transit.gtfs import load_transit, save_transit
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3


class TestRoundTrip:
    def test_save_load(self, toy_transit, toy_network, tmp_path):
        save_transit(toy_transit, tmp_path / "transit")
        loaded = load_transit(toy_network, tmp_path / "transit")
        assert loaded.num_routes == toy_transit.num_routes
        assert loaded.existing_stops == toy_transit.existing_stops
        originals = {r.route_id: r for r in toy_transit.routes()}
        for route in loaded.routes():
            assert route.stops == originals[route.route_id].stops
            assert route.path == originals[route.route_id].path

    def test_creates_directory(self, toy_transit, tmp_path):
        target = tmp_path / "deep" / "nested" / "dir"
        save_transit(toy_transit, target)
        assert (target / "stops.csv").exists()
        assert (target / "routes.csv").exists()

    def test_stops_file_contents(self, toy_transit, toy_network, tmp_path):
        save_transit(toy_transit, tmp_path)
        lines = (tmp_path / "stops.csv").read_text().strip().splitlines()
        assert lines[0] == "stop_node,x,y"
        assert len(lines) == 1 + len(toy_transit.existing_stops)


class TestErrors:
    def test_missing_directory(self, toy_network, tmp_path):
        with pytest.raises(DataFormatError, match="missing"):
            load_transit(toy_network, tmp_path / "nope")

    def test_bad_header(self, toy_network, tmp_path):
        (tmp_path / "routes.csv").write_text("a,b\n1,2\n")
        with pytest.raises(DataFormatError, match="header"):
            load_transit(toy_network, tmp_path)

    def test_bad_node_sequence(self, toy_network, tmp_path):
        (tmp_path / "routes.csv").write_text(
            "route_id,stop_nodes,path_nodes\nr,0|x,0|1\n"
        )
        with pytest.raises(DataFormatError):
            load_transit(toy_network, tmp_path)

    def test_empty_sequence(self, toy_network, tmp_path):
        (tmp_path / "routes.csv").write_text(
            "route_id,stop_nodes,path_nodes\nr,,0|1\n"
        )
        with pytest.raises(DataFormatError):
            load_transit(toy_network, tmp_path)

    def test_loaded_routes_validated_against_network(self, toy_network, tmp_path):
        # Node 99 does not exist on the toy network.
        (tmp_path / "routes.csv").write_text(
            "route_id,stop_nodes,path_nodes\nr,99,99\n"
        )
        from repro.exceptions import TransitError

        with pytest.raises(TransitError):
            load_transit(toy_network, tmp_path)
