"""Unit tests for the multimodal journey planner."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.transit.journey import JourneyPlanner, travel_cost_decrease
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5, V6


@pytest.fixture
def line_transit(line_network):
    """One route along the whole 6-node line, stops at 0, 2, 4, 5."""
    route = BusRoute("line", [0, 2, 4, 5], [0, 1, 2, 3, 4, 5])
    return TransitNetwork(line_network, [route])


class TestTravelTime:
    def test_same_node_zero(self, line_transit):
        planner = JourneyPlanner(line_transit)
        assert planner.travel_time(3, 3) == 0.0

    def test_pure_walk_when_no_useful_route(self, line_transit):
        # 1 km at 5 km/h = 12 minutes; bus cannot beat it over one hop
        # once the 5-minute boarding penalty is paid... actually it can
        # never since walking distance equals riding distance here.
        planner = JourneyPlanner(line_transit, walk_speed_kmh=5.0)
        assert planner.travel_time(0, 1) == pytest.approx(12.0)

    def test_bus_beats_walking_on_long_trips(self, line_transit):
        planner = JourneyPlanner(
            line_transit, walk_speed_kmh=5.0, bus_speed_kmh=20.0,
            boarding_penalty_min=5.0,
        )
        # 0 -> 5: walking = 60 min; board at 0, ride to 5 = 5 + 15 min.
        assert planner.travel_time(0, 5) == pytest.approx(20.0)

    def test_walk_then_ride(self, line_transit):
        planner = JourneyPlanner(
            line_transit, walk_speed_kmh=5.0, bus_speed_kmh=20.0,
            boarding_penalty_min=5.0,
        )
        # 1 -> 5: walk back to stop 0 (12) + 5 + ride 15 = 32, or walk
        # to stop 2 (12) + 5 + ride 9 = 26, or pure walk 48.
        assert planner.travel_time(1, 5) == pytest.approx(26.0)

    def test_rides_both_directions(self, line_transit):
        planner = JourneyPlanner(
            line_transit, walk_speed_kmh=5.0, bus_speed_kmh=20.0,
            boarding_penalty_min=1.0,
        )
        forward = planner.travel_time(0, 5)
        backward = planner.travel_time(5, 0)
        assert forward == pytest.approx(backward)

    def test_never_worse_than_walking(self, toy_transit):
        planner = JourneyPlanner(toy_transit)
        from repro.network.dijkstra import shortest_path_costs

        walk_min_per_km = 60.0 / 5.0
        for origin in range(8):
            costs = shortest_path_costs(toy_transit.road_network, origin)
            for dest in range(8):
                assert (
                    planner.travel_time(origin, dest)
                    <= costs[dest] * walk_min_per_km + 1e-9
                )

    def test_invalid_speeds(self, line_transit):
        with pytest.raises(ConfigurationError):
            JourneyPlanner(line_transit, walk_speed_kmh=0.0)
        with pytest.raises(ConfigurationError):
            JourneyPlanner(line_transit, bus_speed_kmh=-1.0)
        with pytest.raises(ConfigurationError):
            JourneyPlanner(line_transit, boarding_penalty_min=-1.0)

    def test_average_travel_time(self, line_transit):
        planner = JourneyPlanner(line_transit)
        trips = [(0, 5), (5, 0)]
        expected = (planner.travel_time(0, 5) + planner.travel_time(5, 0)) / 2
        assert planner.average_travel_time(trips) == pytest.approx(expected)

    def test_average_requires_trips(self, line_transit):
        with pytest.raises(ConfigurationError):
            JourneyPlanner(line_transit).average_travel_time([])


class TestTravelCostDecrease:
    def test_non_negative(self, toy_transit):
        new_route = BusRoute("new", [V2, V3, V4], [V2, V3, V4])
        trips = [(V6, V1), (V1, V5), (V5, V6)]
        decrease = travel_cost_decrease(toy_transit, new_route, trips)
        assert decrease >= -1e-9

    def test_useful_route_decreases_cost(self, line_network):
        # Sparse transit: a single stop (no rides possible).
        lonely = TransitNetwork(line_network, [BusRoute("r", [0])])
        new_route = BusRoute("new", [0, 2, 4, 5], [0, 1, 2, 3, 4, 5])
        trips = [(0, 5), (1, 5), (0, 4)]
        decrease = travel_cost_decrease(lonely, new_route, trips)
        assert decrease > 0.0

    def test_redundant_route_changes_nothing(self, line_transit):
        duplicate = BusRoute("dup", [0, 2, 4, 5], [0, 1, 2, 3, 4, 5])
        trips = [(0, 5), (1, 4)]
        assert travel_cost_decrease(line_transit, duplicate, trips) == (
            pytest.approx(0.0)
        )


class TestStatsParity:
    """`travel_time` and `journey` share one Dijkstra, so their search
    accounting must be identical for the same OD pair (a parent-tracking
    fork of the loop once under-counted the alight-edge pushes)."""

    def _journey_delta(self, planner, run):
        engine = planner._engine
        before = engine.counters("journey").copy()
        run()
        return engine.counters("journey") - before

    @pytest.mark.parametrize("pair", [(0, 5), (1, 5), (5, 0), (1, 4)])
    def test_travel_time_and_journey_counts_equal(self, line_transit, pair):
        origin, destination = pair
        planner = JourneyPlanner(line_transit)
        time_stats = self._journey_delta(
            planner, lambda: planner.travel_time(origin, destination)
        )
        itinerary_stats = self._journey_delta(
            planner, lambda: planner.journey(origin, destination)
        )
        assert time_stats.searches == itinerary_stats.searches == 1
        assert time_stats.settled == itinerary_stats.settled
        assert time_stats.pushes == itinerary_stats.pushes
        # The alight push must actually be counted: trips that ride a
        # bus push at least one alight edge.
        itinerary = planner.journey(origin, destination)
        if itinerary.num_boardings:
            assert time_stats.pushes > 0

    def test_journey_minutes_equal_travel_time(self, line_transit):
        planner = JourneyPlanner(line_transit)
        for origin in range(6):
            for destination in range(6):
                assert planner.journey(origin, destination).minutes == (
                    pytest.approx(planner.travel_time(origin, destination))
                )
