"""Unit tests for the transit network, ``routes(v)``, and
``Connect(B)`` — including the paper's Example 1 and Example 4."""

import pytest

from repro.exceptions import TransitError
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5


class TestConstruction:
    def test_counts(self, toy_transit):
        assert toy_transit.num_routes == 4
        assert toy_transit.existing_stops == [V1, V2]

    def test_duplicate_route_ids_rejected(self, toy_network):
        with pytest.raises(TransitError, match="duplicate"):
            TransitNetwork(
                toy_network,
                [BusRoute("r", [V1]), BusRoute("r", [V2])],
            )

    def test_invalid_path_rejected(self, toy_network):
        with pytest.raises(TransitError):
            TransitNetwork(toy_network, [BusRoute("r", [V1, V5], [V1, V5])])

    def test_skip_path_validation_still_checks_nodes(self, toy_network):
        with pytest.raises(TransitError, match="outside"):
            TransitNetwork(
                toy_network, [BusRoute("r", [99])], validate_paths=False
            )


class TestRoutesThrough:
    def test_example1_routes_of_v1(self, toy_transit):
        """Example 1/4: v1 serves routes 1, 2, 3."""
        ids = sorted(r.route_id for r in toy_transit.routes_through(V1))
        assert ids == ["route_1", "route_2", "route_3"]

    def test_routes_of_v2(self, toy_transit):
        ids = sorted(r.route_id for r in toy_transit.routes_through(V2))
        assert ids == ["route_3", "route_4"]

    def test_non_stop_has_no_routes(self, toy_transit):
        assert toy_transit.routes_through(V3) == []
        assert toy_transit.degree(V3) == 0

    def test_degree(self, toy_transit):
        assert toy_transit.degree(V1) == 3
        assert toy_transit.degree(V2) == 2

    def test_is_stop(self, toy_transit):
        assert toy_transit.is_stop(V1)
        assert not toy_transit.is_stop(V4)


class TestConnectivity:
    def test_example4_connect_v1(self, toy_transit):
        """Example 4: Connect({v1}) = 3."""
        assert toy_transit.connectivity([V1]) == 3

    def test_example4_connect_v1_v2(self, toy_transit):
        """Example 4: Connect({v1, v2}) = 4."""
        assert toy_transit.connectivity([V1, V2]) == 4

    def test_new_stops_contribute_nothing(self, toy_transit):
        """Definition 7: Connect(B) = Connect(B \\ S_new)."""
        assert toy_transit.connectivity([V3, V4, V5]) == 0
        assert toy_transit.connectivity([V1, V3]) == 3

    def test_empty_set(self, toy_transit):
        assert toy_transit.connectivity([]) == 0

    def test_coverage_not_additive(self, toy_transit):
        """Route 3 is shared: Connect is a coverage function, so
        Connect({v1}) + Connect({v2}) > Connect({v1, v2})."""
        assert (
            toy_transit.connectivity([V1]) + toy_transit.connectivity([V2])
            > toy_transit.connectivity([V1, V2])
        )

    def test_marginal_connectivity(self, toy_transit):
        covered = toy_transit.connectivity_mask([V1])
        assert toy_transit.marginal_connectivity(V2, covered) == 1
        assert toy_transit.marginal_connectivity(V1, covered) == 0
        assert toy_transit.marginal_connectivity(V3, covered) == 0

    def test_mask_popcount_equals_connectivity(self, toy_transit):
        mask = toy_transit.connectivity_mask([V1, V2])
        assert bin(mask).count("1") == toy_transit.connectivity([V1, V2])


class TestMutation:
    def test_with_route_adds(self, toy_transit):
        new_route = BusRoute("new", [V3, V4], [V3, V4])
        extended = toy_transit.with_route(new_route)
        assert extended.num_routes == 5
        assert extended.is_stop(V3)
        # New object; the original is untouched.
        assert toy_transit.num_routes == 4
        assert not toy_transit.is_stop(V3)

    def test_with_route_extends_connectivity(self, toy_transit):
        extended = toy_transit.with_route(BusRoute("new", [V2, V3], [V2, V3]))
        assert extended.connectivity([V3]) == 1

    def test_stops_as_objects(self, toy_transit):
        stops = toy_transit.stops_as_objects()
        assert [s.node for s in stops] == [V1, V2]

    def test_existing_stop_mask(self, toy_transit, toy_network):
        mask = toy_transit.existing_stop_mask()
        assert mask[V1] and mask[V2]
        assert sum(mask) == 2
