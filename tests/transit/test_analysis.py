"""Unit tests for transit network analytics."""

import pytest

from repro.demand.query import QuerySet
from repro.exceptions import ConfigurationError
from repro.transit.analysis import (
    demand_coverage,
    route_overlap_matrix,
    summarize_transit,
    transfer_degree_histogram,
)

from ..conftest import V1, V2, V3, V6, V7, V8


class TestSummarize:
    def test_toy_summary(self, toy_transit):
        summary = summarize_transit(toy_transit, coverage_radius_km=4.0)
        assert summary.num_routes == 4
        assert summary.num_stops == 2
        # only route_3 has a leg (v1-v2, cost 4)
        assert summary.total_route_km == pytest.approx(4.0)
        assert summary.mean_stop_spacing_km == pytest.approx(4.0)
        assert summary.max_stop_spacing_km == pytest.approx(4.0)
        assert summary.mean_stops_per_route == pytest.approx(1.25)
        # both stops are transfer stops (v1: 3 routes, v2: 2 routes)
        assert summary.transfer_stops == 2
        assert summary.max_transfer_degree == 3

    def test_coverage_radius(self, toy_transit):
        tight = summarize_transit(toy_transit, coverage_radius_km=0.5)
        loose = summarize_transit(toy_transit, coverage_radius_km=100.0)
        assert tight.node_coverage == pytest.approx(2 / 8)  # the stops only
        assert loose.node_coverage == pytest.approx(1.0)

    def test_invalid_radius(self, toy_transit):
        with pytest.raises(ConfigurationError):
            summarize_transit(toy_transit, coverage_radius_km=0.0)

    def test_on_generated_city(self, small_city):
        summary = summarize_transit(small_city.transit)
        assert summary.num_routes == small_city.transit.num_routes
        assert 0.0 < summary.node_coverage <= 1.0
        assert summary.mean_stop_spacing_km > 0


class TestHistogram:
    def test_toy_histogram(self, toy_transit):
        histogram = transfer_degree_histogram(toy_transit)
        assert histogram == {3: 1, 2: 1}  # v1 on 3 routes, v2 on 2

    def test_counts_sum_to_stops(self, small_city):
        histogram = transfer_degree_histogram(small_city.transit)
        assert sum(histogram.values()) == len(
            small_city.transit.existing_stops
        )


class TestOverlap:
    def test_toy_overlap(self, toy_transit):
        matrix = route_overlap_matrix(toy_transit)
        # routes: r1={v1}, r2={v1}, r3={v1,v2}, r4={v2}
        assert matrix[0][0] == 1
        assert matrix[2][2] == 2
        assert matrix[0][1] == 1  # r1 and r2 share v1
        assert matrix[0][3] == 0  # r1 and r4 share nothing
        assert matrix[2][3] == 1  # r3 and r4 share v2
        # symmetry
        for i in range(4):
            for j in range(4):
                assert matrix[i][j] == matrix[j][i]


class TestDemandCoverage:
    def test_toy_profile(self, toy_transit, toy_network):
        queries = QuerySet(toy_network, [V1, V6, V7, V8])
        profile = demand_coverage(
            toy_transit, queries, radii_km=(1.0, 7.0, 11.0)
        )
        assert profile[1.0] == pytest.approx(0.25)  # only v1 itself
        assert profile[7.0] == pytest.approx(0.5)   # + v6 at 7
        assert profile[11.0] == pytest.approx(1.0)  # all

    def test_monotone_in_radius(self, small_city):
        profile = demand_coverage(
            small_city.transit, small_city.queries, radii_km=(0.2, 0.4, 0.8)
        )
        values = [profile[r] for r in sorted(profile)]
        assert values == sorted(values)

    def test_empty_radii_rejected(self, toy_transit, toy_queries):
        with pytest.raises(ConfigurationError):
            demand_coverage(toy_transit, toy_queries, radii_km=())
