"""Unit tests for journey itinerary reconstruction."""

import math

import pytest

from repro.transit.journey import Itinerary, JourneyLeg, JourneyPlanner
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute


@pytest.fixture
def line_transit(line_network):
    route = BusRoute("line", [0, 2, 4, 5], [0, 1, 2, 3, 4, 5])
    return TransitNetwork(line_network, [route])


class TestItinerary:
    def test_duration_matches_travel_time(self, line_transit, line_network):
        planner = JourneyPlanner(line_transit)
        for origin in range(6):
            for destination in range(6):
                itinerary = planner.journey(origin, destination)
                assert itinerary.minutes == pytest.approx(
                    planner.travel_time(origin, destination)
                ), f"{origin}->{destination}"

    def test_same_node_empty(self, line_transit):
        itinerary = JourneyPlanner(line_transit).journey(3, 3)
        assert itinerary.legs == ()
        assert itinerary.minutes == 0.0
        assert itinerary.describe() == "stay put"

    def test_walk_then_ride_legs(self, line_transit):
        planner = JourneyPlanner(
            line_transit, walk_speed_kmh=5.0, bus_speed_kmh=20.0,
            boarding_penalty_min=5.0,
        )
        itinerary = planner.journey(1, 5)
        assert [leg.mode for leg in itinerary.legs] == ["walk", "ride"]
        walk, ride = itinerary.legs
        assert walk.nodes == (1, 2)
        assert ride.nodes == (2, 4, 5)
        assert ride.route_id == "line"
        assert walk.minutes == pytest.approx(12.0)
        assert ride.minutes == pytest.approx(14.0)  # 5 board + 9 ride
        assert itinerary.num_boardings == 1

    def test_pure_walk_single_leg(self, line_transit):
        planner = JourneyPlanner(line_transit)
        itinerary = planner.journey(0, 1)
        assert [leg.mode for leg in itinerary.legs] == ["walk"]
        assert itinerary.legs[0].nodes == (0, 1)
        assert itinerary.num_boardings == 0

    def test_pure_ride(self, line_transit):
        planner = JourneyPlanner(
            line_transit, boarding_penalty_min=1.0
        )
        itinerary = planner.journey(0, 5)
        assert [leg.mode for leg in itinerary.legs] == ["ride"]
        assert itinerary.legs[0].nodes == (0, 2, 4, 5)

    def test_describe_mentions_route(self, line_transit):
        planner = JourneyPlanner(line_transit, boarding_penalty_min=1.0)
        text = planner.journey(0, 5).describe()
        assert "ride line" in text

    def test_transfer_itinerary(self, grid_network):
        """Two crossing routes: a corner-to-corner trip can transfer."""
        # route A along the bottom row, route B up the last column
        bottom = list(range(6))
        right = [5, 11, 17, 23, 29, 35]
        transit = TransitNetwork(
            grid_network,
            [
                BusRoute("A", bottom, bottom),
                BusRoute("B", right, right),
            ],
        )
        planner = JourneyPlanner(
            transit, walk_speed_kmh=3.0, bus_speed_kmh=40.0,
            boarding_penalty_min=1.0,
        )
        itinerary = planner.journey(0, 35)
        rides = [leg for leg in itinerary.legs if leg.mode == "ride"]
        assert len(rides) == 2
        assert {leg.route_id for leg in rides} == {"A", "B"}
        assert itinerary.num_boardings == 2
        assert itinerary.minutes == pytest.approx(
            planner.travel_time(0, 35)
        )

    def test_on_generated_city(self, small_city):
        planner = JourneyPlanner(small_city.transit)
        import numpy as np

        rng = np.random.default_rng(3)
        for _ in range(8):
            o = int(rng.integers(0, small_city.network.num_nodes))
            d = int(rng.integers(0, small_city.network.num_nodes))
            itinerary = planner.journey(o, d)
            assert itinerary.minutes == pytest.approx(
                planner.travel_time(o, d)
            )
            # legs chain: each leg starts where the previous ended
            for a, b in zip(itinerary.legs, itinerary.legs[1:]):
                assert a.nodes[-1] == b.nodes[0]
