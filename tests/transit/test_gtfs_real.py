"""Unit tests for the standard-GTFS importer."""

import math

import pytest

from repro.exceptions import DataFormatError, TransitError
from repro.network.dimacs import KM_PER_DEGREE
from repro.transit.gtfs_real import GtfsImportReport, load_gtfs_feed


def _write_feed(directory, stops, trips, stop_times):
    """stops: [(id, lat, lon)], trips: [(route, trip)],
    stop_times: [(trip, stop, seq)]."""
    (directory / "stops.txt").write_text(
        "stop_id,stop_name,stop_lat,stop_lon\n"
        + "".join(f"{s},{s}-name,{lat},{lon}\n" for s, lat, lon in stops)
    )
    (directory / "trips.txt").write_text(
        "route_id,service_id,trip_id\n"
        + "".join(f"{r},weekday,{t}\n" for r, t in trips)
    )
    (directory / "stop_times.txt").write_text(
        "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
        + "".join(f"{t},,,{s},{q}\n" for t, s, q in stop_times)
    )


def _lonlat(network, node):
    """Inverse of the importer's projection at cos_lat = 1."""
    x, y = network.coordinate(node)
    return y / KM_PER_DEGREE, x / KM_PER_DEGREE  # (lat, lon)


@pytest.fixture
def feed_dir(tmp_path, grid_network):
    """A two-route feed whose stops sit exactly on grid nodes."""
    route_a_nodes = [0, 2, 4]
    route_b_nodes = [4, 16, 28]
    stops = []
    for node in sorted(set(route_a_nodes + route_b_nodes)):
        lat, lon = _lonlat(grid_network, node)
        stops.append((f"s{node}", lat, lon))
    trips = [("A", "A1"), ("A", "A2"), ("B", "B1")]
    stop_times = (
        # A1 is the longer (representative) trip for route A
        [("A1", f"s{n}", i) for i, n in enumerate(route_a_nodes)]
        + [("A2", f"s{n}", i) for i, n in enumerate(route_a_nodes[:2])]
        + [("B1", f"s{n}", i) for i, n in enumerate(route_b_nodes)]
    )
    _write_feed(tmp_path, stops, trips, stop_times)
    return tmp_path


class TestImport:
    def test_routes_and_stops(self, grid_network, feed_dir):
        transit, report = load_gtfs_feed(grid_network, feed_dir, cos_lat=1.0)
        assert transit.num_routes == 2
        assert report.num_routes == 2
        assert report.num_stops == 5
        by_id = {r.route_id: r for r in transit.routes()}
        assert list(by_id["A"].stops) == [0, 2, 4]
        assert list(by_id["B"].stops) == [4, 16, 28]

    def test_snapping_exact_on_node_positions(self, grid_network, feed_dir):
        _, report = load_gtfs_feed(grid_network, feed_dir, cos_lat=1.0)
        assert report.max_snap_km == pytest.approx(0.0, abs=1e-6)

    def test_offset_stops_snap_to_nearest(self, grid_network, tmp_path):
        lat, lon = _lonlat(grid_network, 7)
        # nudge the stop 100 m east: still snaps to node 7
        stops = [("x", lat, lon + 0.1 / KM_PER_DEGREE),
                 ("y", *_lonlat(grid_network, 9))]
        _write_feed(
            tmp_path, stops, [("R", "T")],
            [("T", "x", 0), ("T", "y", 1)],
        )
        transit, report = load_gtfs_feed(grid_network, tmp_path, cos_lat=1.0)
        assert list(transit.routes()[0].stops) == [7, 9]
        assert report.max_snap_km == pytest.approx(0.1, abs=1e-3)

    def test_representative_trip_is_longest(self, grid_network, feed_dir):
        transit, _ = load_gtfs_feed(grid_network, feed_dir, cos_lat=1.0)
        route_a = next(r for r in transit.routes() if r.route_id == "A")
        assert route_a.num_stops == 3  # A1, not the 2-stop A2

    def test_route_paths_valid(self, grid_network, feed_dir):
        transit, _ = load_gtfs_feed(grid_network, feed_dir, cos_lat=1.0)
        for route in transit.routes():
            route.validate_on(grid_network)

    def test_plannable_after_import(self, grid_network, feed_dir):
        from repro.core import BRRInstance, EBRRConfig, plan_route
        from repro.demand.query import QuerySet

        transit, _ = load_gtfs_feed(grid_network, feed_dir, cos_lat=1.0)
        queries = QuerySet(grid_network, [30, 31, 32, 33, 34, 35])
        instance = BRRInstance(transit, queries, alpha=1.0)
        config = EBRRConfig(max_stops=4, max_adjacent_cost=2.0, alpha=1.0)
        result = plan_route(instance, config)
        assert result.route.num_stops >= 2


class TestErrors:
    def test_missing_file(self, grid_network, tmp_path):
        with pytest.raises(DataFormatError, match="missing GTFS"):
            load_gtfs_feed(grid_network, tmp_path)

    def test_missing_columns(self, grid_network, tmp_path):
        (tmp_path / "stops.txt").write_text("stop_id\nx\n")
        (tmp_path / "trips.txt").write_text("route_id,trip_id\nR,T\n")
        (tmp_path / "stop_times.txt").write_text(
            "trip_id,stop_id,stop_sequence\nT,x,0\n"
        )
        with pytest.raises(DataFormatError, match="header"):
            load_gtfs_feed(grid_network, tmp_path)

    def test_bad_latitude(self, grid_network, tmp_path):
        _write_feed(
            tmp_path, [("x", "not-a-number", 0.0)], [("R", "T")],
            [("T", "x", 0)],
        )
        with pytest.raises(DataFormatError):
            load_gtfs_feed(grid_network, tmp_path)

    def test_single_stop_route_skipped(self, grid_network, tmp_path):
        lat, lon = _lonlat(grid_network, 3)
        _write_feed(tmp_path, [("x", lat, lon)], [("R", "T")], [("T", "x", 0)])
        with pytest.raises(TransitError, match="no usable routes"):
            load_gtfs_feed(grid_network, tmp_path, cos_lat=1.0)

    def test_skipped_routes_reported(self, grid_network, tmp_path):
        lat0, lon0 = _lonlat(grid_network, 0)
        lat4, lon4 = _lonlat(grid_network, 4)
        lat9, lon9 = _lonlat(grid_network, 9)
        _write_feed(
            tmp_path,
            [("a", lat0, lon0), ("b", lat4, lon4), ("c", lat9, lon9)],
            [("good", "G"), ("bad", "B")],
            [("G", "a", 0), ("G", "b", 1), ("B", "c", 0)],
        )
        transit, report = load_gtfs_feed(grid_network, tmp_path, cos_lat=1.0)
        assert transit.num_routes == 1
        assert report.skipped_routes == ["bad"]
