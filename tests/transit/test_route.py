"""Unit tests for bus stops and bus routes (Definition 3 / 8)."""

import pytest

from repro.exceptions import TransitError
from repro.transit.route import BusRoute
from repro.transit.stop import BusStop

from ..conftest import V1, V2, V3, V4


class TestBusStop:
    def test_defaults(self):
        stop = BusStop(node=7)
        assert stop.stop_id == "stop_7"
        assert stop.name == ""

    def test_custom_id(self):
        stop = BusStop(node=3, stop_id="union_station", name="Union Station")
        assert stop.stop_id == "union_station"

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            BusStop(node=-1)

    def test_frozen(self):
        stop = BusStop(node=1)
        with pytest.raises(Exception):
            stop.node = 2  # type: ignore[misc]


class TestBusRouteConstruction:
    def test_path_defaults_to_stops(self):
        route = BusRoute("r", [1, 2, 3])
        assert route.path == (1, 2, 3)
        assert route.num_stops == 3

    def test_stop_set(self):
        route = BusRoute("r", [3, 1, 2])
        assert route.stop_set == frozenset({1, 2, 3})

    def test_empty_rejected(self):
        with pytest.raises(TransitError, match="no stops"):
            BusRoute("r", [])

    def test_duplicate_stop_rejected(self):
        with pytest.raises(TransitError, match="twice"):
            BusRoute("r", [1, 2, 1])

    def test_stops_must_follow_path_order(self):
        BusRoute("ok", [0, 2], [0, 1, 2])
        with pytest.raises(TransitError, match="in order"):
            BusRoute("bad", [2, 0], [0, 1, 2])

    def test_stop_missing_from_path_rejected(self):
        with pytest.raises(TransitError, match="in order"):
            BusRoute("bad", [0, 9], [0, 1, 2])


class TestBusRouteOnNetwork:
    def test_validate_on_network(self, toy_network):
        route = BusRoute("r", [V1, V3], [V1, V2, V3])
        route.validate_on(toy_network)  # no raise

    def test_validate_rejects_non_path(self, toy_network):
        route = BusRoute("r", [V1, V4], [V1, V4])
        with pytest.raises(TransitError, match="not a road path"):
            route.validate_on(toy_network)

    def test_validate_rejects_unknown_node(self, toy_network):
        route = BusRoute("r", [99])
        with pytest.raises(TransitError, match="outside"):
            route.validate_on(toy_network)

    def test_length(self, toy_network):
        route = BusRoute("r", [V1, V4], [V1, V2, V3, V4])
        assert route.length(toy_network) == pytest.approx(12.0)

    def test_single_stop_length_zero(self, toy_network):
        assert BusRoute("r", [V1]).length(toy_network) == 0.0

    def test_adjacent_stop_costs(self, toy_network):
        route = BusRoute("r", [V1, V3, V4], [V1, V2, V3, V4])
        assert route.adjacent_stop_costs(toy_network) == [
            pytest.approx(8.0),
            pytest.approx(4.0),
        ]

    def test_satisfies_constraints(self, toy_network):
        route = BusRoute("r", [V1, V2, V3], [V1, V2, V3])
        assert route.satisfies_constraints(toy_network, max_stops=3,
                                           max_adjacent_cost=4.0)
        assert not route.satisfies_constraints(toy_network, max_stops=2,
                                               max_adjacent_cost=4.0)
        assert not route.satisfies_constraints(toy_network, max_stops=3,
                                               max_adjacent_cost=3.0)

    def test_path_revisiting_node_is_allowed(self, toy_network):
        # Out-and-back path through v2: a valid bus path.
        route = BusRoute("r", [V1, V3], [V1, V2, V1, V2, V3])
        assert route.length(toy_network) == pytest.approx(16.0)
