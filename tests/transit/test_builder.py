"""Unit tests for the synthetic transit builder."""

import pytest

from repro.exceptions import TransitError
from repro.transit.builder import build_transit_network, place_stops_along_path


class TestPlaceStops:
    def test_endpoints_always_stops(self, line_network):
        stops = place_stops_along_path(line_network, [0, 1, 2, 3, 4, 5], 2.0)
        assert stops[0] == 0
        assert stops[-1] == 5

    def test_spacing_respected(self, line_network):
        stops = place_stops_along_path(line_network, [0, 1, 2, 3, 4, 5], 2.0)
        for a, b in zip(stops, stops[1:]):
            assert abs(a - b) <= 2  # unit edges: cost == id gap

    def test_tight_spacing_takes_every_node(self, line_network):
        stops = place_stops_along_path(line_network, [0, 1, 2, 3], 1.0)
        assert stops == [0, 1, 2, 3]

    def test_spacing_larger_than_path(self, line_network):
        stops = place_stops_along_path(line_network, [0, 1, 2], 10.0)
        assert stops == [0, 2]

    def test_empty_path(self, line_network):
        assert place_stops_along_path(line_network, [], 1.0) == []

    def test_single_node_path(self, line_network):
        assert place_stops_along_path(line_network, [3], 1.0) == [3]

    def test_invalid_spacing(self, line_network):
        with pytest.raises(TransitError):
            place_stops_along_path(line_network, [0, 1], 0.0)

    def test_no_duplicate_stops(self, toy_network):
        # Out-and-back path; dedup must keep stop order.
        stops = place_stops_along_path(toy_network, [0, 1, 0, 1, 2], 4.0)
        assert len(stops) == len(set(stops))


class TestBuildTransit:
    def test_builds_requested_routes(self, grid_network):
        transit = build_transit_network(grid_network, num_routes=5, seed=3,
                                        stop_spacing_km=1.5)
        assert transit.num_routes == 5
        assert len(transit.existing_stops) >= 2

    def test_each_route_valid_on_network(self, grid_network):
        transit = build_transit_network(grid_network, num_routes=4, seed=1)
        for route in transit.routes():
            route.validate_on(grid_network)
            assert route.num_stops >= 2

    def test_deterministic(self, grid_network):
        a = build_transit_network(grid_network, num_routes=3, seed=7)
        b = build_transit_network(grid_network, num_routes=3, seed=7)
        assert [r.stops for r in a.routes()] == [r.stops for r in b.routes()]

    def test_hub_concentration_creates_shared_stops(self, grid_network):
        transit = build_transit_network(
            grid_network, num_routes=8, seed=2, hub_concentration=3.0
        )
        degrees = [transit.degree(s) for s in transit.existing_stops]
        assert max(degrees) >= 2, "expected at least one transfer stop"

    def test_invalid_route_count(self, grid_network):
        with pytest.raises(TransitError):
            build_transit_network(grid_network, num_routes=0)

    def test_network_too_small(self):
        from repro.network.graph import RoadNetwork

        tiny = RoadNetwork([(0, 0), (1, 0)], [(0, 1, 1.0)])
        with pytest.raises(TransitError):
            build_transit_network(tiny, num_routes=2)

    def test_stop_spacing_bounds_adjacent_costs(self, grid_network):
        spacing = 2.0
        transit = build_transit_network(
            grid_network, num_routes=4, seed=5, stop_spacing_km=spacing
        )
        longest_edge = max(c for _, _, c in grid_network.edges())
        for route in transit.routes():
            for cost in route.adjacent_stop_costs(grid_network):
                assert cost <= max(spacing, longest_edge) + 1e-9
