"""Unit tests for the transit feed validator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute
from repro.transit.validation import ValidationReport, validate_feed

from ..conftest import V1, V2, V3, V4, V5


class TestReport:
    def test_severity_buckets(self):
        report = ValidationReport()
        report.add("info", "a", "note")
        report.add("warning", "b", "warn")
        assert not report.ok
        assert len(report.by_severity("info")) == 1
        assert "1 warnings" in report.summary()

    def test_ok_with_only_info(self):
        report = ValidationReport()
        report.add("info", "a", "note")
        assert report.ok

    def test_unknown_severity(self):
        with pytest.raises(ConfigurationError):
            ValidationReport().add("fatal", "x", "boom")


class TestValidateFeed:
    def test_healthy_generated_feed(self, small_city):
        report = validate_feed(
            small_city.transit, max_stop_spacing_km=2.0
        )
        assert not report.by_severity("error")

    def test_flags_single_stop_route(self, toy_transit):
        report = validate_feed(toy_transit)
        codes = [f.code for f in report.findings]
        assert "too-few-stops" in codes  # routes 1, 2, 4 have one stop

    def test_flags_wide_spacing(self, toy_network):
        transit = TransitNetwork(
            toy_network,
            [BusRoute("wide", [V1, V3], [V1, V2, V3])],  # 8 km leg
        )
        report = validate_feed(transit, max_stop_spacing_km=5.0)
        wide = [f for f in report.findings if f.code == "spacing-too-wide"]
        assert wide and wide[0].route_id == "wide"

    def test_flags_detour(self, toy_network):
        # v1 -> v2 via v3: cost 8 vs direct 4 -> detour factor 2
        transit = TransitNetwork(
            toy_network,
            [BusRoute("loopy", [V1, V2], [V1, V2, V3, V2])],
        )
        report = validate_feed(
            transit, max_detour_factor=1.5, max_stop_spacing_km=50.0
        )
        assert any(f.code == "excessive-detour" for f in report.findings)

    def test_flags_missing_transfers(self, toy_network):
        transit = TransitNetwork(
            toy_network, [BusRoute("solo", [V1, V2], [V1, V2])]
        )
        report = validate_feed(transit, max_stop_spacing_km=5.0)
        assert any(f.code == "no-transfer-stops" for f in report.findings)

    def test_transfer_present_not_flagged(self, toy_transit):
        report = validate_feed(toy_transit)
        assert not any(f.code == "no-transfer-stops" for f in report.findings)

    def test_single_route_share_reported(self, small_city):
        report = validate_feed(small_city.transit)
        assert any(f.code == "single-route-stops" for f in report.findings)

    def test_invalid_band(self, toy_transit):
        with pytest.raises(ConfigurationError):
            validate_feed(
                toy_transit, min_stop_spacing_km=3.0, max_stop_spacing_km=2.0
            )
