"""Shared test fixtures.

The central fixture is the **paper toy instance**: the road network of
Figure 2 with the transit routes, candidate stops, and queries of
Examples 1-10, reconstructed so that every worked number in the paper
(walking costs, utilities, prices, thresholds, selection order) can be
asserted exactly:

* nodes (0-based here, ``v1..v8`` in the paper)::

      v1 --4-- v2 --4-- v3 --4-- v4 --4-- v5
                        /|\\      |
                      3/ | \\4   3|
                     v6  |  v8   v7
                       \\4______/
                        (v6--v7)

* edges: (v1,v2,4) (v2,v3,4) (v3,v4,4) (v4,v5,4) (v3,v6,3) (v3,v8,4)
  (v4,v7,3) (v6,v7,4);
* ``S_existing = {v1, v2}`` served by four routes — routes 1, 2 pass
  v1, route 3 passes v1 and v2, route 4 passes v2 (Example 1);
* ``S_new = {v3, v4, v5}`` (Example 5);
* queries ``q1=(v6,v1), q2=(v1,v7), q3=(v8,v1)`` so that
  ``Q = {v1,v1,v1,v6,v7,v8}`` (Example 3).

Checks derivable from the paper: ``Walk(S_existing)=26``,
``Walk({v1..v4})=10``, ``Connect({v1})=3``, ``Connect({v1,v2})=4``,
``U({v1,v2,v3,v4})=20`` at α=1, ``U(v3)=12``, ``U(v4)=8``, ``U(v5)=4``,
``p(v3,{v1})=2``, ``p(v2,{v1})=1``, ``lbp(v4)=3`` (Example 9).
"""

from __future__ import annotations

import pytest

from repro.core.utility import BRRInstance
from repro.demand.query import QuerySet, TransitQuery
from repro.network.graph import RoadNetwork
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

# 0-based ids for the paper's v1..v8
V1, V2, V3, V4, V5, V6, V7, V8 = range(8)

TOY_COORDS = [
    (0.0, 0.0),   # v1
    (4.0, 0.0),   # v2
    (8.0, 0.0),   # v3
    (12.0, 0.0),  # v4
    (16.0, 0.0),  # v5
    (8.0, 3.0),   # v6
    (12.0, 3.0),  # v7
    (8.0, -4.0),  # v8
]

TOY_EDGES = [
    (V1, V2, 4.0),
    (V2, V3, 4.0),
    (V3, V4, 4.0),
    (V4, V5, 4.0),
    (V3, V6, 3.0),
    (V3, V8, 4.0),
    (V4, V7, 3.0),
    (V6, V7, 4.0),
]


@pytest.fixture
def toy_network() -> RoadNetwork:
    """The Figure 2 road network."""
    return RoadNetwork(TOY_COORDS, TOY_EDGES)


@pytest.fixture
def toy_transit(toy_network) -> TransitNetwork:
    """Example 1: four routes; v1 serves routes 1-3, v2 serves 3-4."""
    routes = [
        BusRoute("route_1", [V1]),
        BusRoute("route_2", [V1]),
        BusRoute("route_3", [V1, V2], [V1, V2]),
        BusRoute("route_4", [V2]),
    ]
    return TransitNetwork(toy_network, routes)


@pytest.fixture
def toy_queries(toy_network) -> QuerySet:
    """Example 3: Q = {v1, v1, v1, v6, v7, v8}."""
    queries = [
        TransitQuery(V6, V1),
        TransitQuery(V1, V7),
        TransitQuery(V8, V1),
    ]
    return QuerySet.from_queries(toy_network, queries, name="toy")


@pytest.fixture
def toy_instance(toy_transit, toy_queries) -> BRRInstance:
    """The full Example 5 instance: S_new = {v3, v4, v5}, alpha = 1."""
    return BRRInstance(
        toy_transit, toy_queries, candidates=[V3, V4, V5], alpha=1.0
    )


# ----------------------------------------------------------------------
# Generic small fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def line_network() -> RoadNetwork:
    """A 6-node path graph with unit edges at integer coordinates."""
    coords = [(float(i), 0.0) for i in range(6)]
    edges = [(i, i + 1, 1.0) for i in range(5)]
    return RoadNetwork(coords, edges)


@pytest.fixture
def grid_network() -> RoadNetwork:
    """A deterministic 6x6 unit grid (36 nodes)."""
    coords = []
    index = {}
    for r in range(6):
        for c in range(6):
            index[(r, c)] = len(coords)
            coords.append((float(c), float(r)))
    edges = []
    for (r, c), u in index.items():
        if (r, c + 1) in index:
            edges.append((u, index[(r, c + 1)], 1.0))
        if (r + 1, c) in index:
            edges.append((u, index[(r + 1, c)], 1.0))
    return RoadNetwork(coords, edges)


@pytest.fixture
def small_city():
    """A cached small synthetic city for integration tests."""
    from repro.datasets import load_city

    return load_city("chicago", scale=0.06, seed=42)
