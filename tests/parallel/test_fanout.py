"""The fan-out contract: parallel execution is *bit-identical* to
serial, not merely approximately equal.

Every assertion here uses exact ``==`` on floats on purpose — the
deterministic-reduce design (contiguous chunks in caller order,
order-preserving merge, exact float pickling) promises the same bits,
and these tests are the enforcement.
"""

import pytest

from repro.core.config import EBRRConfig
from repro.core.preprocess import preprocess_queries
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.exceptions import ConfigurationError
from repro.network.engine import SearchEngine
from repro.network.generators import grid_city, radial_city, sprawl_city
from repro.parallel import sweep_plans
from repro.parallel.fanout import resolve_workers, run_query_searches, split_chunks
from repro.transit.builder import build_transit_network

pytestmark = pytest.mark.parallel


def _instance(style, seed):
    if style == "grid":
        network = grid_city(8, 8, seed=seed)
    elif style == "radial":
        network = radial_city(num_boroughs=3, nodes_per_borough=60, seed=seed)
    else:
        network = sprawl_city(num_nodes=120, seed=seed)
    transit = build_transit_network(
        network, num_routes=4, seed=seed + 1, stop_spacing_km=0.8
    )
    queries = hotspot_demand(
        network, 300, num_hotspots=4, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=5.0)


def _stats_tuple(stats):
    return (stats.searches, stats.settled, stats.pushes, stats.truncated)


class TestParallelPreprocess:
    @pytest.mark.parametrize("style", ["grid", "radial", "sprawl"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_to_serial(self, style, workers):
        instance = _instance(style, seed=3)
        serial_engine = SearchEngine(instance.network)
        serial = preprocess_queries(instance, engine=serial_engine, workers=1)
        par_engine = SearchEngine(instance.network)
        par = preprocess_queries(instance, engine=par_engine, workers=workers)

        assert serial.nn_distance == par.nn_distance
        assert serial.rnn == par.rnn
        assert serial.initial_utility == par.initial_utility
        assert serial.searches == par.searches
        assert serial.settled_nodes == par.settled_nodes
        # Dict insertion order is part of the contract too (the utility
        # queue and every downstream iteration depend on it).
        assert list(serial.nn_distance) == list(par.nn_distance)
        assert list(serial.rnn) == list(par.rnn)
        assert serial.utility_order() == par.utility_order()

    def test_profile_parity(self):
        instance = _instance("grid", seed=5)
        serial_engine = SearchEngine(instance.network)
        preprocess_queries(instance, engine=serial_engine, workers=1)
        par_engine = SearchEngine(instance.network)
        preprocess_queries(instance, engine=par_engine, workers=2)
        assert _stats_tuple(serial_engine.counters("preprocess")) == _stats_tuple(
            par_engine.counters("preprocess")
        )

    def test_invalid_workers_rejected(self):
        instance = _instance("grid", seed=3)
        with pytest.raises(ConfigurationError):
            preprocess_queries(instance, workers=0)
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)


class TestRunQuerySearches:
    def test_row_order_matches_input(self):
        instance = _instance("sprawl", seed=9)
        nodes = list(instance.query_counts)
        rows, stats = run_query_searches(
            instance.network,
            instance.is_existing,
            instance.is_candidate,
            nodes,
            workers=2,
        )
        assert [row[0] for row in rows] == nodes
        assert stats.searches == len(nodes)

    def test_empty_input(self):
        instance = _instance("grid", seed=3)
        rows, stats = run_query_searches(
            instance.network,
            instance.is_existing,
            instance.is_candidate,
            [],
            workers=2,
        )
        assert rows == []
        assert stats.searches == 0


class TestSplitChunks:
    def test_partition_properties(self):
        items = list(range(103))
        chunks = split_chunks(items, 8)
        assert [x for chunk in chunks for x in chunk] == items  # order kept
        assert len(chunks) == 8
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1  # near-even

    def test_more_chunks_than_items(self):
        chunks = split_chunks([1, 2], 10)
        assert chunks == [[1], [2]]


class TestSweep:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sweep_matches_serial(self, workers):
        instance = _instance("grid", seed=7)
        configs = [
            EBRRConfig(max_stops=k, max_adjacent_cost=1.5, alpha=5.0)
            for k in (4, 6, 8)
        ]
        serial = sweep_plans(instance, configs, workers=1)
        par = sweep_plans(instance, configs, workers=workers)
        assert len(serial) == len(par) == len(configs)
        for a, b in zip(serial, par):
            assert a.route.route_id == b.route.route_id
            assert a.route.stops == b.route.stops
            assert a.route.path == b.route.path
            assert a.metrics.utility == b.metrics.utility
            assert a.metrics.walk_cost == b.metrics.walk_cost
            assert a.metrics.connectivity == b.metrics.connectivity

    def test_sweep_folds_preprocess_stats_back(self):
        instance = _instance("grid", seed=7)
        configs = [
            EBRRConfig(max_stops=k, max_adjacent_cost=1.5, alpha=5.0)
            for k in (4, 6)
        ]
        serial_engine = SearchEngine(instance.network)
        sweep_plans(instance, configs, workers=1, engine=serial_engine)
        par_engine = SearchEngine(instance.network)
        sweep_plans(instance, configs, workers=2, engine=par_engine)
        assert _stats_tuple(serial_engine.counters("preprocess")) == _stats_tuple(
            par_engine.counters("preprocess")
        )

    def test_route_ids_length_mismatch(self):
        instance = _instance("grid", seed=7)
        configs = [EBRRConfig(max_stops=4, max_adjacent_cost=1.5, alpha=5.0)]
        with pytest.raises(ConfigurationError):
            sweep_plans(instance, configs, route_ids=["a", "b"])


class TestRunCandidateBalls:
    def _parts(self, instance):
        engine = SearchEngine(instance.network)
        stops = [i for i, f in enumerate(instance.is_existing) if f]
        field = engine.multi_source_labels(stops)
        is_query = [False] * instance.network.num_nodes
        for node in instance.query_counts:
            is_query[node] = True
        return engine, field, is_query, list(instance.candidates)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_to_serial(self, workers):
        from repro.parallel.fanout import run_candidate_balls

        instance = _instance("sprawl", seed=9)
        engine, field, is_query, candidates = self._parts(instance)
        serial = engine.candidate_rnn_balls(
            candidates, field.distance, is_query
        )
        fanned, stats = run_candidate_balls(
            instance.network, field.distance, is_query, candidates,
            workers=workers,
        )
        assert fanned == serial  # same members, same order, same sizes
        assert stats.searches == len(candidates)
        assert stats.settled == sum(settled for _m, settled in serial)

    def test_empty_candidates(self):
        from repro.parallel.fanout import run_candidate_balls

        instance = _instance("grid", seed=3)
        _engine, field, is_query, _candidates = self._parts(instance)
        balls, stats = run_candidate_balls(
            instance.network, field.distance, is_query, [], workers=2
        )
        assert balls == []
        assert stats.searches == 0

    def test_inverted_preprocess_profile_parity(self):
        """The parent engine's ``preprocess`` profile is identical
        whether the balls ran in-process or in a pool."""
        instance = _instance("grid", seed=5)
        serial_engine = SearchEngine(instance.network)
        preprocess_queries(
            instance, engine=serial_engine, strategy="inverted", workers=1
        )
        par_engine = SearchEngine(instance.network)
        preprocess_queries(
            instance, engine=par_engine, strategy="inverted", workers=2
        )
        assert _stats_tuple(serial_engine.counters("preprocess")) == _stats_tuple(
            par_engine.counters("preprocess")
        )


class TestRunQueryRows:
    def _parts(self, instance):
        engine = SearchEngine(instance.network)
        stops = [i for i, f in enumerate(instance.is_existing) if f]
        field = engine.multi_source_labels(stops)
        nodes = list(instance.query_counts)
        nn_forward = engine.label_forward_distances(field, nodes)
        labels = [field.label[node] for node in nodes]
        return engine, nodes, nn_forward, labels

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_to_serial(self, workers):
        from repro.parallel.fanout import run_query_rows

        instance = _instance("sprawl", seed=9)
        engine, nodes, nn_forward, labels = self._parts(instance)
        serial = engine.batch_query_rows(
            nodes, nn_forward, labels, instance.is_candidate
        )
        fanned, stats = run_query_rows(
            instance.network, nodes, nn_forward, labels,
            instance.is_candidate, workers=workers,
        )
        assert fanned == serial  # all four columns, bit-for-bit
        assert stats.searches == len(nodes)
        assert stats.settled == sum(serial[3])

    def test_empty_nodes(self):
        from repro.parallel.fanout import run_query_rows

        instance = _instance("grid", seed=3)
        columns, stats = run_query_rows(
            instance.network, [], [], [], instance.is_candidate, workers=2
        )
        assert columns == ([], [], [], [])
        assert stats.searches == 0
