"""Cross-process trace collection: a ``--workers N`` run must produce
one coherent trace — spans from every worker lane, and ``search.*``
metric totals *exactly* equal to the serial run (same integers, not
approximately)."""

import pytest

import repro.obs as obs
from repro.core.config import EBRRConfig
from repro.core.ebrr import plan_route
from repro.core.utility import BRRInstance
from repro.demand.generators import hotspot_demand
from repro.network.engine import SearchEngine
from repro.network.generators import grid_city
from repro.parallel import sweep_plans
from repro.transit.builder import build_transit_network

pytestmark = pytest.mark.parallel


def _instance(seed=3):
    network = grid_city(8, 8, seed=seed)
    transit = build_transit_network(
        network, num_routes=4, seed=seed + 1, stop_spacing_km=0.8
    )
    queries = hotspot_demand(
        network, 300, num_hotspots=4, transit=transit, seed=seed + 2
    )
    return BRRInstance(transit, queries, alpha=5.0)


def _traced_plan(instance, workers, kernel=None, strategy=None):
    # A fresh engine per run: a shared one would serve later runs from
    # cache and skew the search counters the parity assertion compares.
    engine = SearchEngine(instance.network, kernel=kernel)
    config = EBRRConfig(
        max_stops=10, max_adjacent_cost=2.0, alpha=5.0, workers=workers,
        kernel=kernel, preprocess_strategy=strategy,
    )
    with obs.tracing() as trace:
        result = plan_route(instance, config, engine=engine)
    return trace, result


def _search_totals(trace):
    return {
        name: value
        for name, value in trace.metrics.as_dict()["counters"].items()
        if name.startswith("search.")
    }


class TestPlanRouteFoldBack:
    @pytest.mark.parametrize("kernel", [None, "vectorized"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_metric_totals_identical_to_serial(self, workers, kernel):
        # Runs under both search backends: the worker engines inherit
        # the kernel (pickled by name into the pool initializer), and
        # every search.total.* counter — pushes included, since serial
        # and parallel use the *same* backend — must match exactly.
        instance = _instance()
        serial_trace, serial_result = _traced_plan(
            instance, workers=1, kernel=kernel
        )
        par_trace, par_result = _traced_plan(
            instance, workers=workers, kernel=kernel
        )
        assert _search_totals(par_trace) == _search_totals(serial_trace)
        assert par_result.route.stops == serial_result.route.stops

    @pytest.mark.parametrize("workers", [2])
    def test_kernels_agree_across_process_boundaries(self, workers):
        """The full parallel pipeline is bit-identical across backends
        on the invariant counters and the planned route."""
        instance = _instance()
        traces = {}
        results = {}
        for kernel in ("python", "vectorized"):
            traces[kernel], results[kernel] = _traced_plan(
                instance, workers=workers, kernel=kernel
            )
        assert (
            results["python"].route.stops == results["vectorized"].route.stops
        )
        assert results["python"].route.path == results["vectorized"].route.path
        totals_p = _search_totals(traces["python"])
        totals_v = _search_totals(traces["vectorized"])
        invariant = {
            name: value
            for name, value in totals_p.items()
            if not name.endswith(".pushes")  # backend-defined counter
        }
        assert invariant == {
            name: value
            for name, value in totals_v.items()
            if not name.endswith(".pushes")
        }
        # The gauge records which backend ran the searches.
        assert traces["python"].metrics.gauges["search.kernel"].value == 0
        assert traces["vectorized"].metrics.gauges["search.kernel"].value == 1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_trace_has_worker_lanes(self, workers):
        trace, _ = _traced_plan(_instance(), workers=workers)
        lanes = {span.lane for span in trace.spans}
        assert "main" in lanes
        worker_lanes = {l for l in lanes if l.startswith("worker-")}
        assert worker_lanes, f"no worker lanes in {sorted(lanes)}"
        chunk_lanes = {
            span.lane for span in trace.spans if span.name == "fanout.chunk"
        }
        assert chunk_lanes <= worker_lanes

    def test_worker_spans_hang_under_the_fanout_span(self):
        trace, _ = _traced_plan(_instance(), workers=2)
        by_index = {span.index: span for span in trace.spans}
        fanout = next(s for s in trace.spans if s.name == "fanout")
        for chunk in (s for s in trace.spans if s.name == "fanout.chunk"):
            assert by_index[chunk.parent] is fanout

    def test_merged_trace_exports_valid_chrome_json(self):
        trace, _ = _traced_plan(_instance(), workers=2)
        obj = obs.chrome_trace(trace)
        assert obs.validate_chrome_trace(obj) == []
        lanes = obj["metadata"]["lanes"]
        assert lanes[0] == "main" and len(lanes) >= 2

    def test_serial_run_ships_no_shards(self):
        trace, _ = _traced_plan(_instance(), workers=1)
        assert {span.lane for span in trace.spans} == {"main"}
        assert any(span.name == "preprocess.searches" for span in trace.spans)


class TestSweepFoldBack:
    def test_sweep_shards_carry_worker_plan_spans(self):
        instance = _instance()
        configs = [
            EBRRConfig(max_stops=k, max_adjacent_cost=2.0, alpha=5.0)
            for k in (6, 8, 10, 12)
        ]
        with obs.tracing() as trace:
            results = sweep_plans(instance, configs, workers=2)
        assert len(results) == 4
        lanes = {span.lane for span in trace.spans}
        assert any(l.startswith("worker-") for l in lanes)
        plan_spans = [s for s in trace.spans if s.name == "plan_route"]
        assert len(plan_spans) == 4  # one per config, shipped home
        sweep_span = next(s for s in trace.spans if s.name == "sweep")
        by_index = {s.index: s for s in trace.spans}
        for plan_span in plan_spans:
            assert by_index[plan_span.parent] is sweep_span
        assert obs.validate_chrome_trace(obs.chrome_trace(trace)) == []

    def test_sweep_trace_metrics_match_result_stats(self):
        # The trace totals must equal the sum over the results' own
        # search_stats — the workers recorded them, shards shipped them,
        # nothing was double-counted on merge.
        instance = _instance()
        configs = [
            EBRRConfig(max_stops=k, max_adjacent_cost=2.0, alpha=5.0)
            for k in (6, 10)
        ]
        with obs.tracing() as trace:
            results = sweep_plans(instance, configs, workers=2)
        expected = sum(r.total_search_stats.searches for r in results)
        counters = trace.metrics.as_dict()["counters"]
        assert counters["search.total.searches"] == expected


class TestInvertedStrategyTraces:
    """The inverted preprocessing path must keep the same trace
    discipline as per-query: serial/parallel metric parity, worker
    lanes for the ball chunks, and the new ``preprocess.labels`` /
    ``preprocess.balls`` spans and counters present either way."""

    @pytest.mark.parametrize("kernel", [None, "vectorized"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_metric_totals_identical_to_serial(self, workers, kernel):
        instance = _instance()
        serial_trace, serial_result = _traced_plan(
            instance, workers=1, kernel=kernel, strategy="inverted"
        )
        par_trace, par_result = _traced_plan(
            instance, workers=workers, kernel=kernel, strategy="inverted"
        )
        assert _search_totals(par_trace) == _search_totals(serial_trace)
        assert par_result.route.stops == serial_result.route.stops

    def test_strategies_agree_on_route_and_invariant_counters(self):
        instance = _instance()
        traces, results = {}, {}
        for strategy in ("per-query", "inverted"):
            traces[strategy], results[strategy] = _traced_plan(
                instance, workers=1, strategy=strategy
            )
        assert (
            results["per-query"].route.stops == results["inverted"].route.stops
        )
        assert (
            results["per-query"].route.path == results["inverted"].route.path
        )

    def test_preprocess_spans_and_counters_present(self):
        trace, _ = _traced_plan(_instance(), workers=1, strategy="inverted")
        names = {span.name for span in trace.spans}
        assert "preprocess.labels" in names
        assert "preprocess.balls" in names
        counters = trace.metrics.as_dict()["counters"]
        assert counters["preprocess.labels.sources"] > 0
        assert counters["preprocess.labels.reachable"] > 0
        assert counters["preprocess.balls.count"] > 0
        assert counters["preprocess.balls.settled"] > 0

    def test_ball_chunks_run_in_worker_lanes(self):
        trace, _ = _traced_plan(_instance(), workers=2, strategy="inverted")
        lanes = {span.lane for span in trace.spans}
        worker_lanes = {l for l in lanes if l.startswith("worker-")}
        assert worker_lanes, f"no worker lanes in {sorted(lanes)}"
        chunk_lanes = {
            span.lane for span in trace.spans if span.name == "fanout.ball_chunk"
        }
        assert chunk_lanes and chunk_lanes <= worker_lanes
        by_index = {span.index: span for span in trace.spans}
        fanout = next(s for s in trace.spans if s.name == "fanout")
        for chunk in (s for s in trace.spans if s.name == "fanout.ball_chunk"):
            assert by_index[chunk.parent] is fanout
        assert obs.validate_chrome_trace(obs.chrome_trace(trace)) == []
