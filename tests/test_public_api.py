"""Public API surface tests.

A library's ``__all__`` is a contract: every listed name must import,
every public callable must carry a docstring, and the top-level package
must re-export the objects the README shows.  These tests freeze that
contract so refactors cannot silently drop API.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.network",
    "repro.transit",
    "repro.demand",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.eval",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_import(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must define __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert (package.__doc__ or "").strip(), f"{package_name} needs a docstring"


class TestReadmeContract:
    """The names the README's snippets use must exist at the promised
    locations with the promised signatures."""

    def test_quickstart_names(self):
        import repro

        assert callable(repro.plan_route)
        assert callable(repro.evaluate_route)
        assert callable(repro.optimal_stop_set)
        config = repro.EBRRConfig(max_stops=5, max_adjacent_cost=2.0, alpha=1.0)
        assert config.price_budget > 0

    def test_dataset_entry_points(self):
        from repro.datasets import available_cities, load_city

        assert set(available_cities()) == {"chicago", "nyc", "orlando"}
        assert callable(load_city)

    def test_real_data_entry_points(self):
        from repro.network import read_dimacs, write_dimacs
        from repro.transit import load_gtfs_feed, load_transit, save_transit

        for func in (read_dimacs, write_dimacs, load_transit, save_transit,
                     load_gtfs_feed):
            assert callable(func)

    def test_plan_route_signature(self):
        import repro

        signature = inspect.signature(repro.plan_route)
        assert list(signature.parameters)[:2] == ["instance", "config"]
        assert "preprocess" in signature.parameters
        assert "route_id" in signature.parameters

    def test_exceptions_hierarchy_exported(self):
        import repro

        for name in (
            "ReproError", "GraphError", "DataFormatError", "TransitError",
            "DemandError", "ConfigurationError", "InfeasibleRouteError",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, repro.ReproError)

    def test_version(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_cli_entry(self):
        from repro.cli import build_parser, main

        assert callable(main)
        parser = build_parser()
        assert parser.prog == "repro"
