"""Unit tests for the seed-robustness harness."""

import pytest

from repro.eval.sensitivity import seed_robustness
from repro.exceptions import ConfigurationError


class TestSeedRobustness:
    @pytest.fixture(scope="class")
    def rows(self):
        return seed_robustness(
            "orlando", [41, 42], scale=0.05, max_stops=6
        )

    def test_one_row_per_algorithm(self, rows):
        assert {row["algorithm"] for row in rows} == {
            "EBRR", "ETA-Pre", "vk-TSP",
        }

    def test_aggregates_present(self, rows):
        for row in rows:
            assert row["seeds"] == 2
            for metric in ("walk_cost", "connectivity", "time_s"):
                assert row[f"{metric}_mean"] >= 0
                assert row[f"{metric}_std"] >= 0
                assert 0 <= row[f"{metric}_wins"] <= 2

    def test_wins_at_least_one_winner_per_metric(self, rows):
        for metric in ("walk_cost", "connectivity", "time_s"):
            total_wins = sum(row[f"{metric}_wins"] for row in rows)
            assert total_wins >= 2  # one (or tied several) per seed

    def test_needs_two_seeds(self):
        with pytest.raises(ConfigurationError):
            seed_robustness("orlando", [1], scale=0.05)
