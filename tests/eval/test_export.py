"""Unit tests for CSV/JSON export."""

import csv
import json

import pytest

from repro.eval.export import load_rows_json, rows_to_csv, rows_to_json
from repro.exceptions import ConfigurationError


@pytest.fixture
def rows():
    return [
        {"K": 10, "algorithm": "EBRR", "walk_cost": 5.5},
        {"K": 20, "algorithm": "EBRR", "walk_cost": 4.25, "extra": "x"},
    ]


class TestCsv:
    def test_roundtrip(self, rows, tmp_path):
        target = tmp_path / "out.csv"
        rows_to_csv(rows, target)
        with open(target, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["K"] == "10"
        assert loaded[1]["extra"] == "x"
        assert loaded[0]["extra"] == ""

    def test_column_selection(self, rows, tmp_path):
        target = tmp_path / "out.csv"
        rows_to_csv(rows, target, columns=["algorithm", "K"])
        header = target.read_text().splitlines()[0]
        assert header == "algorithm,K"

    def test_creates_directories(self, rows, tmp_path):
        target = tmp_path / "a" / "b" / "out.csv"
        rows_to_csv(rows, target)
        assert target.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            rows_to_csv([], tmp_path / "out.csv")


class TestJson:
    def test_roundtrip(self, rows, tmp_path):
        target = tmp_path / "out.json"
        rows_to_json(rows, target, metadata={"scale": 0.12})
        loaded = load_rows_json(target)
        assert loaded == rows
        with open(target) as handle:
            document = json.load(handle)
        assert document["metadata"]["scale"] == 0.12

    def test_numpy_scalars_serialized(self, tmp_path):
        import numpy as np

        target = tmp_path / "np.json"
        rows_to_json([{"v": np.float64(1.5), "n": np.int64(3)}], target)
        loaded = load_rows_json(target)
        assert loaded[0]["v"] == 1.5
        assert loaded[0]["n"] == 3

    def test_bad_document_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"rows": "nope"}')
        with pytest.raises(ConfigurationError):
            load_rows_json(target)
