"""Unit tests for the plain-text reporters."""

import math

from repro.eval.reporting import (
    format_series,
    format_table,
    format_value,
    print_and_save,
    save_report,
)


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(3.14159, float_digits=1) == "3.1"

    def test_large_floats_grouped(self):
        assert format_value(123456.7) == "123,456.7"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_large_ints_grouped(self):
        assert format_value(1234567) == "1,234,567"
        assert format_value(999) == "999"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"

    def test_strings_passthrough(self):
        assert format_value("EBRR") == "EBRR"


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_alignment_and_title(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyyy"}]
        text = format_table(rows, title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1].startswith("a")
        # all rows same width
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_explicit_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        text = format_table(rows, columns=["a", "b"])
        assert "9" in text


class TestFormatSeries:
    def test_fig_layout(self):
        rows = [
            {"K": 10, "algorithm": "EBRR", "walk": 5.0},
            {"K": 20, "algorithm": "EBRR", "walk": 4.0},
            {"K": 10, "algorithm": "vk-TSP", "walk": 9.0},
            {"K": 20, "algorithm": "vk-TSP", "walk": 8.5},
        ]
        text = format_series(rows, x="K", series="algorithm", value="walk")
        lines = text.splitlines()
        assert lines[0] == "walk vs K"
        assert lines[1].split() == ["algorithm", "10", "20"]
        assert lines[3].split() == ["EBRR", "5.000", "4.000"]
        assert lines[4].split() == ["vk-TSP", "9.000", "8.500"]

    def test_custom_title(self):
        rows = [{"K": 1, "alg": "a", "v": 1}]
        text = format_series(rows, x="K", series="alg", value="v", title="T")
        assert text.splitlines()[0] == "T"

    def test_empty(self):
        assert "(no rows)" in format_series(
            [], x="K", series="alg", value="v"
        )


class TestPersistence:
    def test_save_report(self, tmp_path):
        target = tmp_path / "deep" / "report.txt"
        save_report("hello", target)
        assert target.read_text() == "hello\n"

    def test_print_and_save(self, tmp_path, capsys):
        target = tmp_path / "r.txt"
        print_and_save("content", target)
        assert "content" in capsys.readouterr().out
        assert target.read_text() == "content\n"

    def test_print_without_path(self, capsys):
        print_and_save("just print")
        assert "just print" in capsys.readouterr().out
