"""Unit tests for GeoJSON export."""

import json

import pytest

from repro.demand.query import QuerySet
from repro.eval.geojson import GeoJsonWriter, route_to_geojson
from repro.exceptions import ConfigurationError
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V6


class TestGeoJsonWriter:
    def test_route_features(self, toy_network):
        writer = GeoJsonWriter(toy_network)
        route = BusRoute("r", [V1, V2, V3], [V1, V2, V3])
        writer.add_route(route, planner="EBRR")
        doc = writer.feature_collection()
        assert doc["type"] == "FeatureCollection"
        kinds = [f["properties"]["kind"] for f in doc["features"]]
        assert kinds.count("route") == 1
        assert kinds.count("stop") == 3
        line = next(
            f for f in doc["features"] if f["geometry"]["type"] == "LineString"
        )
        assert line["properties"]["planner"] == "EBRR"
        assert len(line["geometry"]["coordinates"]) == 3
        assert line["geometry"]["coordinates"][0] == [0.0, 0.0]  # v1

    def test_stop_order_recorded(self, toy_network):
        writer = GeoJsonWriter(toy_network)
        writer.add_route(BusRoute("r", [V3, V2], [V3, V2]))
        stops = [
            f for f in writer.feature_collection()["features"]
            if f["properties"]["kind"] == "stop"
        ]
        assert [s["properties"]["stop_order"] for s in stops] == [0, 1]

    def test_demand_weights(self, toy_network):
        writer = GeoJsonWriter(toy_network)
        writer.add_demand(QuerySet(toy_network, [V6, V6, V1]))
        weights = {
            f["properties"]["node"]: f["properties"]["weight"]
            for f in writer.feature_collection()["features"]
        }
        assert weights == {V6: 2, V1: 1}

    def test_lonlat_conversion(self, toy_network):
        from repro.network.dimacs import KM_PER_DEGREE

        writer = GeoJsonWriter(toy_network, to_lonlat=True)
        writer.add_stop(V2)  # planar (4, 0)
        point = writer.feature_collection()["features"][0]
        lon, lat = point["geometry"]["coordinates"]
        assert lon == pytest.approx(4.0 / KM_PER_DEGREE)
        assert lat == 0.0

    def test_save_and_parse(self, toy_network, tmp_path):
        writer = GeoJsonWriter(toy_network)
        writer.add_stop(V1)
        target = tmp_path / "geo" / "out.geojson"
        writer.save(target)
        with open(target) as handle:
            doc = json.load(handle)
        assert doc["features"][0]["properties"]["node"] == V1

    def test_empty_save_rejected(self, toy_network, tmp_path):
        with pytest.raises(ConfigurationError):
            GeoJsonWriter(toy_network).save(tmp_path / "empty.geojson")


class TestOneCall:
    def test_route_to_geojson(self, toy_network, tmp_path):
        route = BusRoute("green", [V1, V2], [V1, V2])
        target = tmp_path / "route.geojson"
        route_to_geojson(toy_network, route, target, utility=20.0)
        with open(target) as handle:
            doc = json.load(handle)
        line = next(
            f for f in doc["features"] if f["geometry"]["type"] == "LineString"
        )
        assert line["properties"]["utility"] == 20.0
        assert line["properties"]["route_id"] == "green"
