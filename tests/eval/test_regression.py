"""Unit tests for the results regression comparator."""

import math

import pytest

from repro.eval.regression import ComparisonReport, compare_rows
from repro.exceptions import ConfigurationError


@pytest.fixture
def baseline():
    return [
        {"algorithm": "EBRR", "K": 10, "walk_cost": 100.0, "time_s": 1.0},
        {"algorithm": "EBRR", "K": 20, "walk_cost": 80.0, "time_s": 2.0},
        {"algorithm": "vk-TSP", "K": 10, "walk_cost": 150.0, "time_s": 3.0},
    ]


class TestCompareRows:
    def test_identical_is_ok(self, baseline):
        report = compare_rows(
            baseline, baseline,
            key_columns=["algorithm", "K"], metrics=["walk_cost", "time_s"],
        )
        assert report.ok
        assert report.compared_cells == 6

    def test_small_drift_within_tolerance(self, baseline):
        after = [dict(r) for r in baseline]
        after[0]["walk_cost"] = 103.0  # +3%
        report = compare_rows(
            baseline, after,
            key_columns=["algorithm", "K"], metrics=["walk_cost"],
            tolerance=0.05,
        )
        assert report.ok

    def test_regression_detected(self, baseline):
        after = [dict(r) for r in baseline]
        after[1]["walk_cost"] = 120.0  # +50%
        report = compare_rows(
            baseline, after,
            key_columns=["algorithm", "K"], metrics=["walk_cost"],
        )
        assert not report.ok
        assert len(report.regressions) == 1
        regression = report.regressions[0]
        assert regression.key == ("EBRR", 20)
        assert regression.metric == "walk_cost"
        assert regression.relative_change == pytest.approx(0.5)

    def test_improvement_also_reported(self, baseline):
        after = [dict(r) for r in baseline]
        after[0]["walk_cost"] = 50.0  # -50%: still a change to review
        report = compare_rows(
            baseline, after,
            key_columns=["algorithm", "K"], metrics=["walk_cost"],
        )
        assert report.regressions[0].relative_change == pytest.approx(-0.5)

    def test_missing_and_new_rows(self, baseline):
        after = baseline[:-1] + [
            {"algorithm": "k-means", "K": 10, "walk_cost": 1.0, "time_s": 1.0}
        ]
        report = compare_rows(
            baseline, after, key_columns=["algorithm", "K"], metrics=["walk_cost"],
        )
        assert report.missing_keys == [("vk-TSP", 10)]
        assert report.new_keys == [("k-means", 10)]
        assert "1 rows missing" in report.summary()

    def test_zero_baseline_infinite_change(self):
        before = [{"k": 1, "m": 0.0}]
        after = [{"k": 1, "m": 5.0}]
        report = compare_rows(before, after, key_columns=["k"], metrics=["m"])
        assert math.isinf(report.regressions[0].relative_change)

    def test_duplicate_keys_rejected(self):
        rows = [{"k": 1, "m": 1.0}, {"k": 1, "m": 2.0}]
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_rows(rows, rows, key_columns=["k"], metrics=["m"])

    def test_missing_key_column_rejected(self):
        with pytest.raises(ConfigurationError, match="missing key column"):
            compare_rows(
                [{"m": 1.0}], [{"m": 1.0}], key_columns=["k"], metrics=["m"]
            )

    def test_negative_tolerance_rejected(self, baseline):
        with pytest.raises(ConfigurationError):
            compare_rows(
                baseline, baseline, key_columns=["K"],
                metrics=["walk_cost"], tolerance=-1.0,
            )

    def test_roundtrip_through_json(self, baseline, tmp_path):
        """The intended workflow: two runs exported to JSON, compared."""
        from repro.eval.export import load_rows_json, rows_to_json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        rows_to_json(baseline, a)
        rows_to_json(baseline, b)
        report = compare_rows(
            load_rows_json(a), load_rows_json(b),
            key_columns=["algorithm", "K"], metrics=["walk_cost", "time_s"],
        )
        assert report.ok
