"""Unit tests for the timing helpers."""

import time

from repro.eval.timing import stopwatch, timed


class TestStopwatch:
    def test_records_elapsed(self):
        sink = {}
        with stopwatch(sink, "phase"):
            time.sleep(0.01)
        assert sink["phase"] >= 0.005

    def test_records_on_exception(self):
        sink = {}
        try:
            with stopwatch(sink, "phase"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "phase" in sink


class TestTimed:
    def test_returns_result_and_time(self):
        result, elapsed = timed(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0.0
