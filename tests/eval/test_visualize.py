"""Unit tests for the SVG map renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.demand.query import QuerySet
from repro.eval.visualize import MapRenderer, render_case_study
from repro.exceptions import ConfigurationError
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V6

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestMapRenderer:
    def test_empty_document_valid(self, toy_network):
        renderer = MapRenderer(toy_network)
        root = _parse(renderer.to_svg())
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "800"

    def test_network_layer_line_count(self, toy_network):
        renderer = MapRenderer(toy_network)
        renderer.draw_network()
        root = _parse(renderer.to_svg())
        lines = root.findall(f".//{SVG_NS}line")
        assert len(lines) == toy_network.num_edges

    def test_stops_layer(self, toy_network):
        renderer = MapRenderer(toy_network)
        renderer.draw_existing_stops([V1, V2])
        root = _parse(renderer.to_svg())
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 2

    def test_demand_radius_scales_with_multiplicity(self, toy_network):
        renderer = MapRenderer(toy_network)
        queries = QuerySet(toy_network, [V6, V6, V6, V1])
        renderer.draw_demand(queries)
        root = _parse(renderer.to_svg())
        radii = sorted(
            float(c.get("r")) for c in root.findall(f".//{SVG_NS}circle")
        )
        assert len(radii) == 2  # two distinct nodes
        assert radii[1] > radii[0]

    def test_route_layer(self, toy_network):
        renderer = MapRenderer(toy_network)
        route = BusRoute("r", [V1, V2, V3], [V1, V2, V3])
        renderer.draw_route(route)
        root = _parse(renderer.to_svg())
        assert root.findall(f".//{SVG_NS}polyline")
        assert len(root.findall(f".//{SVG_NS}circle")) == 3

    def test_title_escaped(self, toy_network):
        renderer = MapRenderer(toy_network)
        renderer.draw_title("K<30 & C>1")
        text = renderer.to_svg()
        assert "K&lt;30 &amp; C&gt;1" in text
        _parse(text)  # still valid XML

    def test_coordinates_within_viewport(self, toy_network):
        renderer = MapRenderer(toy_network, width_px=400, margin_px=10)
        renderer.draw_existing_stops(list(toy_network.nodes()))
        root = _parse(renderer.to_svg())
        width = float(root.get("width"))
        height = float(root.get("height"))
        for circle in root.findall(f".//{SVG_NS}circle"):
            assert 0 <= float(circle.get("cx")) <= width
            assert 0 <= float(circle.get("cy")) <= height

    def test_invalid_width(self, toy_network):
        with pytest.raises(ConfigurationError):
            MapRenderer(toy_network, width_px=10)

    def test_save_creates_dirs(self, toy_network, tmp_path):
        renderer = MapRenderer(toy_network)
        target = tmp_path / "maps" / "toy.svg"
        renderer.save(target)
        assert target.exists()
        _parse(target.read_text())


class TestRenderCaseStudy:
    def test_one_call(self, toy_network, toy_transit, toy_queries, tmp_path):
        route = BusRoute("green", [V1, V2, V3, V4], [V1, V2, V3, V4])
        target = tmp_path / "case.svg"
        render_case_study(
            toy_network,
            toy_queries,
            toy_transit.existing_stops,
            route,
            target,
            title="toy case study",
        )
        text = target.read_text()
        root = _parse(text)
        assert "toy case study" in text
        assert root.findall(f".//{SVG_NS}polyline")

    def test_without_route(self, toy_network, toy_transit, toy_queries, tmp_path):
        target = tmp_path / "none.svg"
        render_case_study(
            toy_network, toy_queries, toy_transit.existing_stops, None, target
        )
        assert target.exists()
