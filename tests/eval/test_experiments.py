"""Integration tests for the experiment runners (small scale — the
benchmarks run them at full reproduction scale)."""

import pytest

from repro.datasets import load_city, small_nyc_extract
from repro.eval.experiments import (
    ABLATION_VARIANTS,
    ablation_study,
    calibrated_alpha,
    case_study,
    dataset_statistics,
    demand_partitions,
    effect_of_k,
    effect_of_q,
    opt_comparison,
    scaled_alpha,
    time_vs_alpha,
    time_vs_c,
    travel_cost_experiment,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def city():
    return load_city("chicago", scale=0.06, seed=42)


@pytest.fixture(scope="module")
def alpha(city):
    return calibrated_alpha(city)


class TestAlphaHelpers:
    def test_scaled_alpha_ratio(self, city):
        from repro.datasets.cities import PAPER_SIZES

        value = scaled_alpha(city, 2000.0)
        expected = 2000.0 * len(city.queries) / PAPER_SIZES["Chicago"]["Q"]
        assert value == pytest.approx(expected)

    def test_calibrated_alpha_positive_and_cached(self, city):
        a = calibrated_alpha(city)
        b = calibrated_alpha(city)
        assert a > 0
        assert a == b
        assert calibrated_alpha(city, balance=0.5) == pytest.approx(2 * a)

    def test_calibrated_alpha_rejects_bad_balance(self, city):
        with pytest.raises(ConfigurationError):
            calibrated_alpha(city, balance=0.0)


class TestEffectOfK(object):
    def test_rows_complete(self, city, alpha):
        rows = effect_of_k(city, [6, 10], alpha=alpha)
        assert len(rows) == 2 * 3  # two K values, three planners
        for row in rows:
            assert row["walk_cost"] > 0
            assert row["connectivity"] >= 0
            assert row["time_s"] >= 0
            assert row["K"] in (6, 10)

    def test_ebrr_walk_cost_weakly_improves_with_k(self, city, alpha):
        rows = effect_of_k(city, [4, 16], alpha=alpha)
        ebrr = {r["K"]: r["walk_cost"] for r in rows if r["algorithm"] == "EBRR"}
        assert ebrr[16] <= ebrr[4] * 1.05


class TestEffectOfQ:
    def test_partitions_cover_demand(self, city):
        parts = demand_partitions(city)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == len(city.queries)

    def test_rows(self, city, alpha):
        rows = effect_of_q(city, max_stops=8, alpha=alpha)
        assert len(rows) == 4 * 3
        names = {row["Q"] for row in rows}
        assert names == {"Dataset1", "Dataset2", "Dataset3", "Dataset4"}


class TestOptComparison:
    def test_ratio_bounds(self):
        extract = small_nyc_extract()
        rows = opt_comparison(extract, [4, 6])
        for row in rows:
            assert row["EBRR"] <= row["OPT"] + 1e-9
            assert 0.0 <= row["ratio"] <= 1.0 + 1e-9


class TestTravelCost:
    def test_rows_non_negative(self, city, alpha):
        rows = travel_cost_experiment(
            city, [6], alpha=alpha, num_trips=20, seed=1
        )
        assert len(rows) == 3
        for row in rows:
            assert row["decrease_min"] >= -1e-9


class TestTimeSweeps:
    def test_time_vs_c(self, city):
        rows = time_vs_c([city], [1.0, 2.0], max_stops=8)
        assert len(rows) == 2
        assert all(row["time_s"] >= 0 for row in rows)

    def test_time_vs_alpha(self, city):
        rows = time_vs_alpha([city], [1000.0, 2000.0], max_stops=8)
        assert len(rows) == 2
        assert {row["paper_alpha"] for row in rows} == {1000.0, 2000.0}


class TestAblation:
    def test_all_variants_run(self, city, alpha):
        rows = ablation_study(
            city, [6], alpha=alpha, variants=list(ABLATION_VARIANTS)
        )
        assert len(rows) == len(ABLATION_VARIANTS)
        utilities = {row["variant"]: row["utility"] for row in rows}
        # The selection variants agree; refinement-less differs.
        assert utilities["vanilla"] == pytest.approx(
            utilities["EBRR"], rel=0.25
        )

    def test_unknown_variant_rejected(self, city, alpha):
        with pytest.raises(ConfigurationError, match="unknown"):
            ablation_study(city, [6], alpha=alpha, variants=["nope"])

    def test_refinement_adds_stops(self, city, alpha):
        rows = ablation_study(
            city, [12], alpha=alpha,
            variants=["EBRR", "w/o path refinement"],
        )
        stops = {row["variant"]: row["num_stops"] for row in rows}
        assert stops["EBRR"] >= stops["w/o path refinement"]


class TestCaseStudy:
    def test_rows(self, city, alpha):
        from repro.demand import ridership_demand

        queries = ridership_demand(city.transit, 800, seed=3)
        rows = case_study(city, queries, max_stops=8, alpha=alpha)
        assert len(rows) == 3
        for row in rows:
            assert 0 <= row["uncovered_covered"] <= row["uncovered_total"]
            assert 0.0 <= row["coverage_pct"] <= 100.0


class TestDatasetStatistics:
    def test_table(self, city):
        rows = dataset_statistics([city])
        assert rows[0]["dataset"] == "Chicago"
        assert rows[0]["paper_V"] == 58_337
