"""Unit tests for the evaluation metrics."""

import pytest

from repro.eval.metrics import (
    approximation_ratio,
    connectivity,
    mean_walk_to_nearest_stop,
    uncovered_demand_coverage,
    utility,
    walking_cost,
)
from repro.exceptions import ConfigurationError
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5


@pytest.fixture
def paper_route():
    return BusRoute("green", [V1, V2, V3, V4], [V1, V2, V3, V4])


class TestObjectiveMetrics:
    def test_walking_cost_example3(self, toy_instance, paper_route):
        assert walking_cost(toy_instance, paper_route) == pytest.approx(10.0)

    def test_connectivity_example4(self, toy_instance, paper_route):
        assert connectivity(toy_instance, paper_route) == 4

    def test_utility_example5(self, toy_instance, paper_route):
        assert utility(toy_instance, paper_route) == pytest.approx(20.0)

    def test_metrics_consistent_with_evaluate_route(self, toy_instance, paper_route):
        from repro.core.ebrr import evaluate_route

        metrics = evaluate_route(toy_instance, paper_route)
        assert metrics.walk_cost == pytest.approx(
            walking_cost(toy_instance, paper_route)
        )
        assert metrics.connectivity == connectivity(toy_instance, paper_route)
        assert metrics.utility == pytest.approx(
            utility(toy_instance, paper_route)
        )


class TestApproximationRatio:
    def test_basic(self):
        assert approximation_ratio(8.0, 10.0) == pytest.approx(0.8)

    def test_zero_optimum(self):
        assert approximation_ratio(0.0, 0.0) == 1.0

    def test_negative_optimum_rejected(self):
        with pytest.raises(ConfigurationError):
            approximation_ratio(1.0, -1.0)


class TestUncoveredCoverage:
    def test_toy_coverage(self, toy_queries, toy_transit):
        """With a 4 km walk limit, v7 (11 from v2) is uncovered; the
        paper route brings it within 3 of v4."""
        route = BusRoute("green", [V1, V2, V3, V4], [V1, V2, V3, V4])
        covered, total = uncovered_demand_coverage(
            toy_queries, toy_transit, route, walk_limit_km=4.0
        )
        # Uncovered initially: v6 (7), v7 (11), v8 (8) -> 3 nodes.
        assert total == 3
        # Route covers v6 (3 to v3), v7 (3 to v4), v8 (4 to v3).
        assert covered == 3

    def test_no_uncovered(self, toy_queries, toy_transit):
        route = BusRoute("r", [V1], [V1])
        covered, total = uncovered_demand_coverage(
            toy_queries, toy_transit, route, walk_limit_km=100.0
        )
        assert (covered, total) == (0, 0)

    def test_partial_coverage(self, toy_queries, toy_transit):
        route = BusRoute("r", [V4], [V4])  # only helps v7
        covered, total = uncovered_demand_coverage(
            toy_queries, toy_transit, route, walk_limit_km=4.0
        )
        assert total == 3
        assert covered == 1


class TestMeanWalk:
    def test_example_value(self, toy_queries):
        # Walk(S_existing) = 26 over 6 query nodes.
        assert mean_walk_to_nearest_stop(toy_queries, [V1, V2]) == (
            pytest.approx(26.0 / 6.0)
        )

    def test_more_stops_closer(self, toy_queries):
        before = mean_walk_to_nearest_stop(toy_queries, [V1, V2])
        after = mean_walk_to_nearest_stop(toy_queries, [V1, V2, V3, V4])
        assert after < before

    def test_empty_stops_rejected(self, toy_queries):
        with pytest.raises(ConfigurationError):
            mean_walk_to_nearest_stop(toy_queries, [])
