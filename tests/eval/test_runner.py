"""Unit tests for the uniform planner runner."""

import pytest

from repro.core.config import EBRRConfig
from repro.eval.runner import EBRRPlanner, default_planners, run_planners


@pytest.fixture
def instance(small_city):
    return small_city.instance(alpha=25.0)


@pytest.fixture
def config():
    return EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=25.0)


class TestEBRRPlanner:
    def test_plan_matches_plan_route(self, instance, config):
        from repro.core.ebrr import plan_route

        plan = EBRRPlanner().plan(instance, config)
        direct = plan_route(instance, config)
        assert plan.route.stops == direct.route.stops
        assert plan.metrics.utility == pytest.approx(direct.metrics.utility)

    def test_reuse_preprocessing_same_answer(self, instance, config):
        cold = EBRRPlanner(reuse_preprocessing=False).plan(instance, config)
        warm_planner = EBRRPlanner(reuse_preprocessing=True)
        warm_planner.plan(instance, config)  # fills the cache
        warm = warm_planner.plan(instance, config)
        assert warm.route.stops == cold.route.stops

    def test_reuse_skips_preprocess_time(self, instance, config):
        planner = EBRRPlanner(reuse_preprocessing=True)
        planner.plan(instance, config)
        second = planner.plan(instance, config)
        assert second.timings["preprocess"] <= 0.01

    def test_invalidate_cache(self, instance, config):
        planner = EBRRPlanner(reuse_preprocessing=True)
        planner.plan(instance, config)
        planner.invalidate_cache()
        refreshed = planner.plan(instance, config)
        assert refreshed.route.num_stops >= 2

    def test_name(self):
        assert EBRRPlanner().name == "EBRR"


class TestRunPlanners:
    def test_default_planners_names(self):
        names = [p.name for p in default_planners()]
        assert names == ["EBRR", "ETA-Pre", "vk-TSP"]

    def test_all_planners_produce_plans(self, instance, config):
        plans = run_planners(instance, config, default_planners(seed=1))
        assert set(plans) == {"EBRR", "ETA-Pre", "vk-TSP"}
        for plan in plans.values():
            assert plan.route.num_stops >= 2
            assert plan.metrics.walk_cost > 0
            plan.route.validate_on(instance.network)

    def test_order_preserved(self, instance, config):
        planners = default_planners(seed=1)
        plans = run_planners(instance, config, planners)
        assert list(plans) == [p.name for p in planners]
