"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) with a generous timeout.  These are the slowest
tests in the suite; run ``pytest -m "not examples"`` to skip them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _example_env():
    """The child interpreter's environment.

    The examples import ``repro``; when running from a source checkout
    the package lives under ``src/``, which the child process does not
    inherit from pytest's own import setup.  Prepending ``src`` to
    PYTHONPATH covers the checkout case and is harmless when ``repro``
    is pip-installed (the installed package still wins site-packages
    resolution order only if ``src`` is absent — and when both exist
    they are the same code).
    """
    env = dict(os.environ)
    if SRC_DIR.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
        )
    return env


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.examples
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=tmp_path,  # artefacts (SVGs) land in the temp dir
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{name} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"
