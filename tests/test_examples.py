"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) with a generous timeout.  These are the slowest
tests in the suite; run ``pytest -m "not examples"`` to skip them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.examples
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=tmp_path,  # artefacts (SVGs) land in the temp dir
    )
    assert result.returncode == 0, (
        f"{name} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"
