"""Unit tests for the experiment-store DAO (:mod:`repro.store.db`)."""

import sqlite3

import pytest

from repro.core.config import EBRRConfig
from repro.exceptions import ConfigurationError
from repro.store import RunStore, config_hash, store_from_env
from repro.store.bench import gate_rows


@pytest.fixture
def store():
    with RunStore(":memory:") as s:
        yield s


class TestConfigHash:
    def test_dict_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_different_configs_differ(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_dataclass_stable(self):
        a = EBRRConfig(max_stops=4, max_adjacent_cost=2.0, alpha=1.0)
        b = EBRRConfig(max_stops=4, max_adjacent_cost=2.0, alpha=1.0)
        c = EBRRConfig(max_stops=5, max_adjacent_cost=2.0, alpha=1.0)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)

    def test_short_hex(self):
        digest = config_hash({"a": 1})
        assert len(digest) == 16
        int(digest, 16)  # hex


class TestRunsRoundTrip:
    def test_record_and_read_back(self, store):
        run_id = store.record_run(
            "sweep",
            "sweep-0",
            dataset="toy",
            seed=7,
            config={"K": 4},
            git_rev="abc123",
            metrics={"utility": 20.0, "feasible": True, "label": "green"},
        )
        rows = store.runs()
        assert len(rows) == 1
        row = rows[0]
        assert row["id"] == run_id
        assert row["kind"] == "sweep"
        assert row["name"] == "sweep-0"
        assert row["dataset"] == "toy"
        assert row["seed"] == 7
        assert row["git_rev"] == "abc123"
        assert row["config_hash"] == config_hash({"K": 4})
        assert store.run_config(run_id) == {"K": 4}

    def test_metrics_typed(self, store):
        run_id = store.record_run(
            "planner",
            "EBRR",
            git_rev="r",
            metrics={"utility": 20.0, "feasible": True, "note": "hi"},
        )
        by_key = {m["metric"]: m["value"] for m in store.metrics(run_id=run_id)}
        assert by_key["utility"] == 20.0
        assert by_key["feasible"] == "true"
        assert by_key["note"] == "hi"

    def test_metric_filter(self, store):
        a = store.record_run("s", "a", git_rev="r", metrics={"x": 1, "y": 2})
        store.record_run("s", "b", git_rev="r", metrics={"x": 3})
        rows = store.metrics(metric="x")
        assert [r["value"] for r in rows] == [1.0, 3.0]
        rows = store.metrics(run_id=a)
        assert [r["metric"] for r in rows] == ["x", "y"]

    def test_dataset_and_kind_filters(self, store):
        store.record_run("sweep", "a", dataset="toy", git_rev="r")
        store.record_run("planner", "b", dataset="toy", git_rev="r")
        store.record_run("sweep", "c", dataset="grid", git_rev="r")
        assert len(store.runs(dataset="toy")) == 2
        assert len(store.runs(kind="sweep")) == 2
        assert len(store.runs(dataset="toy", kind="sweep")) == 1

    def test_last_and_since(self, store):
        for i in range(5):
            store.record_run("s", f"run-{i}", git_rev="r")
        rows = store.runs(last=2)
        assert [r["name"] for r in rows] == ["run-3", "run-4"]
        # created_at is ISO-8601 UTC, so string comparison is temporal.
        assert len(store.runs(since="2000-01-01")) == 5
        assert store.runs(since="9999-01-01") == []

    def test_run_config_absent(self, store):
        run_id = store.record_run("s", "bare", git_rev="r")
        assert store.run_config(run_id) is None


class TestBenchSeries:
    def test_unchanged_payload_is_idempotent(self, store):
        first = store.record_bench("fullscale", {"speedup": 8.0}, gate="passed")
        again = store.record_bench("fullscale", {"speedup": 8.0}, gate="passed")
        assert first == again
        assert len(store.benches()) == 1

    def test_changed_payload_appends(self, store):
        store.record_bench("fullscale", {"speedup": 8.0}, gate="passed")
        store.record_bench("fullscale", {"speedup": 9.0}, gate="passed")
        rows = store.benches(bench="fullscale")
        assert len(rows) == 2
        assert [r["payload"]["speedup"] for r in rows] == [8.0, 9.0]

    def test_latest_benches_newest_per_name_sorted(self, store):
        store.record_bench("b", {"v": 1})
        store.record_bench("a", {"v": 1})
        store.record_bench("b", {"v": 2})
        latest = store.latest_benches()
        assert [r["bench"] for r in latest] == ["a", "b"]
        assert latest[1]["payload"] == {"v": 2}

    def test_gates_view_normalizes(self, store):
        store.record_bench(
            "fullscale", {"speedup": 8.0}, gate="passed",
            headline_metric="speedup", headline_value=8.0,
        )
        store.record_bench(
            "parallel", {"w": 1}, gate="skipped",
            headline_metric="best_worker_speedup", headline_value=0.6,
            cpu_limited=True,
        )
        store.record_bench("mystery", {"v": 1})  # no gate declared
        gates = {row["bench"]: row for row in gate_rows(store)}
        assert gates["fullscale"]["gate"] == "passed"
        assert gates["fullscale"]["headline"] == {
            "metric": "speedup", "value": 8.0,
        }
        assert gates["parallel"]["gate"] == "skipped"
        assert gates["parallel"]["cpu_limited"] is True
        assert gates["mystery"]["gate"] == "absent"
        assert "cpu_limited" not in gates["fullscale"]
        assert "mystery" not in {
            row["bench"] for row in gate_rows(store, include_absent=False)
        }


class TestTraces:
    def test_record_and_filter(self, store):
        run_id = store.record_run("s", "a", git_rev="r")
        store.record_trace("/tmp/a.json", kind="chrome", run_id=run_id)
        store.record_trace("/tmp/b.jsonl", kind="jsonl")
        assert len(store.traces()) == 2
        rows = store.traces(run_id=run_id)
        assert len(rows) == 1
        assert rows[0]["path"] == "/tmp/a.json"
        assert rows[0]["kind"] == "chrome"


class TestStoreFromEnv:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert store_from_env() is None

    def test_blank_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "   ")
        assert store_from_env() is None

    def test_path_opts_in(self, monkeypatch, tmp_path):
        db = tmp_path / "runs.db"
        monkeypatch.setenv("REPRO_STORE", str(db))
        with store_from_env() as store:
            store.record_run("s", "a", git_rev="r")
        with RunStore(db) as store:
            assert len(store.runs()) == 1

    def test_garbage_file_is_clear_error(self, monkeypatch, tmp_path):
        bad = tmp_path / "not-a-db"
        bad.write_text("this is not sqlite")
        monkeypatch.setenv("REPRO_STORE", str(bad))
        with pytest.raises(ConfigurationError, match="REPRO_STORE"):
            store_from_env()

    def test_reopen_existing_database(self, tmp_path):
        db = tmp_path / "runs.db"
        with RunStore(db) as store:
            store.record_run("s", "a", git_rev="r")
        with RunStore(db) as store:
            store.record_run("s", "b", git_rev="r")
            assert [r["name"] for r in store.runs()] == ["a", "b"]

    def test_close_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        store.close()
        store.close()

    def test_closed_store_rejects_writes(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        store.close()
        with pytest.raises((sqlite3.ProgrammingError, AttributeError)):
            store.record_run("s", "a", git_rev="r")
