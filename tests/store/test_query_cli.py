"""``repro query`` end-to-end: populate a store, query every view.

The determinism tests pin the CLI contract CI leans on: querying an
unchanged database twice is byte-identical, in every format.
"""

import json

import pytest

from repro.cli import main
from repro.store import RunStore, import_bench_payload


@pytest.fixture
def db(tmp_path):
    """A small populated database: two runs, two benches, one trace."""
    path = tmp_path / "runs.db"
    with RunStore(path) as store:
        a = store.record_run(
            "sweep", "sweep-0", dataset="toy", git_rev="abc123",
            config={"K": 4}, metrics={"utility": 20.0, "feasible": True},
        )
        store.record_run(
            "planner", "EBRR", dataset="toy", git_rev="abc123",
            config={"K": 6}, metrics={"utility": 18.5},
        )
        import_bench_payload(
            store, "fullscale", {"gate": "passed", "speedup": 8.0}
        )
        import_bench_payload(
            store,
            "parallel",
            {
                "gate": "skipped",
                "cpu_limited": True,
                "workers": {"2": {"speedup": 0.6}},
            },
        )
        store.record_trace("/tmp/trace.json", kind="chrome", run_id=a)
    return str(path)


def _query(capsys, *argv):
    code = main(["query", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestViews:
    def test_runs_table(self, capsys, db):
        code, out, _ = _query(capsys, "runs", "--db", db)
        assert code == 0
        assert "sweep-0" in out
        assert "EBRR" in out
        assert "abc123" in out

    def test_runs_kind_filter(self, capsys, db):
        code, out, _ = _query(capsys, "runs", "--db", db, "--kind", "planner")
        assert code == 0
        assert "EBRR" in out
        assert "sweep-0" not in out

    def test_metrics_filter_and_csv(self, capsys, db):
        code, out, _ = _query(
            capsys, "metrics", "--db", db, "--metric", "utility",
            "--format", "csv",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0] == "run_id,kind,name,dataset,metric,value"
        assert len(lines) == 3  # header + one utility row per run
        assert all("utility" in line for line in lines[1:])

    def test_benches_hide_payload(self, capsys, db):
        code, out, _ = _query(
            capsys, "benches", "--db", db, "--format", "json"
        )
        assert code == 0
        rows = json.loads(out)
        assert {r["bench"] for r in rows} == {"fullscale", "parallel"}
        assert all("payload" not in r for r in rows)

    def test_gates_view_normalized(self, capsys, db):
        code, out, _ = _query(capsys, "gates", "--db", db, "--format", "json")
        assert code == 0
        gates = {r["bench"]: r for r in json.loads(out)}
        assert gates["fullscale"]["gate"] == "passed"
        assert gates["fullscale"]["value"] == 8.0
        assert gates["parallel"]["gate"] == "skipped"
        assert gates["parallel"]["cpu_limited"] is True
        assert gates["parallel"]["metric"] == "best_worker_speedup"
        assert gates["parallel"]["workers"] == 2

    def test_traces_view(self, capsys, db):
        code, out, _ = _query(capsys, "traces", "--db", db)
        assert code == 0
        assert "/tmp/trace.json" in out
        assert "chrome" in out

    def test_last_filter(self, capsys, db):
        code, out, _ = _query(
            capsys, "runs", "--db", db, "--last", "1", "--format", "json"
        )
        assert code == 0
        rows = json.loads(out)
        assert [r["name"] for r in rows] == ["EBRR"]


class TestDeterminism:
    @pytest.mark.parametrize("fmt", ["table", "csv", "json"])
    @pytest.mark.parametrize(
        "view", ["runs", "metrics", "benches", "gates", "traces"]
    )
    def test_unchanged_db_renders_identically(self, capsys, db, view, fmt):
        _, first, _ = _query(capsys, view, "--db", db, "--format", fmt)
        _, second, _ = _query(capsys, view, "--db", db, "--format", fmt)
        assert first == second


class TestDatabaseResolution:
    def test_no_db_anywhere_is_exit_two(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        code, _, err = _query(capsys, "runs")
        assert code == 2
        assert "REPRO_STORE" in err

    def test_env_var_fallback(self, capsys, monkeypatch, db):
        monkeypatch.setenv("REPRO_STORE", db)
        code, out, _ = _query(capsys, "runs")
        assert code == 0
        assert "sweep-0" in out

    def test_db_flag_wins_over_env(self, capsys, monkeypatch, db, tmp_path):
        other = tmp_path / "other.db"
        with RunStore(other) as store:
            store.record_run("sweep", "other-run", git_rev="r")
        monkeypatch.setenv("REPRO_STORE", db)
        code, out, _ = _query(capsys, "runs", "--db", str(other))
        assert code == 0
        assert "other-run" in out
        assert "sweep-0" not in out


class TestGatesCheck:
    def _baseline(self, tmp_path, gates):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"gates": gates}))
        return str(path)

    def test_check_passes_against_own_gates(self, capsys, db, tmp_path):
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "bench": "fullscale",
                    "gate": "passed",
                    "headline": {"metric": "speedup", "value": 8.0},
                }
            ],
        )
        code, out, _ = _query(capsys, "gates", "--db", db, "--check", baseline)
        assert code == 0
        assert "no regressions" in out

    def test_check_fails_on_injected_regression(self, capsys, db, tmp_path):
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "bench": "fullscale",
                    "gate": "passed",
                    # Commit a much larger speedup than the store holds:
                    # the current 8.0 is now a >25% drop.
                    "headline": {"metric": "speedup", "value": 100.0},
                }
            ],
        )
        code, _, err = _query(capsys, "gates", "--db", db, "--check", baseline)
        assert code == 1
        assert "speedup-regression" in err

    def test_check_missing_baseline_is_exit_two(self, capsys, db, tmp_path):
        code, _, err = _query(
            capsys, "gates", "--db", db,
            "--check", str(tmp_path / "nope.json"),
        )
        assert code == 2
        assert "cannot load" in err
