"""Store recording by the instrumented writers: sweeps and planner runs."""

import pytest

from repro.core.config import EBRRConfig
from repro.eval.runner import default_planners, run_planners
from repro.parallel.sweep import sweep_plans
from repro.store import RunStore, config_hash


def _configs(ks):
    return [
        EBRRConfig(max_stops=k, max_adjacent_cost=4.0, alpha=1.0) for k in ks
    ]


class TestSweepRecording:
    def test_one_row_per_config(self, toy_instance, tmp_path):
        configs = _configs([3, 4])
        with RunStore(tmp_path / "runs.db") as store:
            results = sweep_plans(
                toy_instance, configs, store=store, dataset="toy"
            )
            rows = store.runs(kind="sweep")
            assert [r["name"] for r in rows] == ["sweep-0", "sweep-1"]
            assert all(r["dataset"] == "toy" for r in rows)
            assert [r["config_hash"] for r in rows] == [
                config_hash(c) for c in configs
            ]
            metrics = {
                m["metric"]: m["value"]
                for m in store.metrics(run_id=rows[1]["id"])
            }
        assert metrics["K"] == 4.0
        assert metrics["workers"] == 1.0
        assert metrics["utility"] == pytest.approx(results[1].metrics.utility)
        assert metrics["feasible"] in ("true", "false")
        assert any(key.startswith("time.") for key in metrics)
        assert any(key.startswith("search.") for key in metrics)

    def test_parallel_sweep_records_in_parent(self, toy_instance, tmp_path):
        configs = _configs([3, 4])
        with RunStore(tmp_path / "runs.db") as store:
            sweep_plans(
                toy_instance, configs, workers=2, store=store, dataset="toy"
            )
            rows = store.runs(kind="sweep")
            metrics = {
                m["metric"]: m["value"]
                for m in store.metrics(run_id=rows[0]["id"])
            }
        assert len(rows) == 2
        assert metrics["workers"] == 2.0

    def test_env_var_opts_in(self, toy_instance, tmp_path, monkeypatch):
        db = tmp_path / "runs.db"
        monkeypatch.setenv("REPRO_STORE", str(db))
        sweep_plans(toy_instance, _configs([4]), dataset="toy")
        with RunStore(db) as store:
            assert len(store.runs(kind="sweep")) == 1

    def test_no_store_records_nothing(self, toy_instance, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        results = sweep_plans(toy_instance, _configs([4]))
        assert len(results) == 1  # recording is a no-op, planning is not


class TestPlannerRecording:
    def test_one_row_per_planner(self, toy_instance, tmp_path):
        config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
        planners = default_planners(seed=0)
        with RunStore(tmp_path / "runs.db") as store:
            plans = run_planners(
                toy_instance, config, planners,
                dataset="toy", store=store,
            )
            rows = store.runs(kind="planner")
            assert [r["name"] for r in rows] == [p.name for p in planners]
            metrics = {
                m["metric"]: m["value"]
                for m in store.metrics(run_id=rows[0]["id"])
            }
        assert set(plans) == {p.name for p in planners}
        assert metrics["utility"] == pytest.approx(
            plans[planners[0].name].metrics.utility
        )
        assert metrics["K"] == 4.0

    def test_env_var_opts_in(self, toy_instance, tmp_path, monkeypatch):
        db = tmp_path / "runs.db"
        monkeypatch.setenv("REPRO_STORE", str(db))
        config = EBRRConfig(max_stops=4, max_adjacent_cost=4.0, alpha=1.0)
        run_planners(
            toy_instance, config, default_planners(seed=0), dataset="toy"
        )
        with RunStore(db) as store:
            assert len(store.runs(kind="planner")) == 3
