"""Payload normalization, directory import, and the trajectory export.

The golden file under ``golden/`` pins the exporter's full output for a
fixture results directory; the byte-determinism test and the
committed-trajectory test enforce the contract CI relies on.
"""

import json
from pathlib import Path

import pytest

from repro.store import (
    RunStore,
    export_trajectory,
    gate_state,
    headline,
    import_bench_dir,
    import_bench_payload,
)
from repro.store.bench import is_cpu_limited

GOLDEN = Path(__file__).parent / "golden"
RESULTS_DIR = Path(__file__).parents[2] / "benchmarks" / "results"

#: A miniature results directory covering every payload shape the
#: normalizer knows: ladder (largest.speedup), per-worker dicts,
#: overhead-vs-limit, and a gateless free-form payload.
FIXTURE_PAYLOADS = {
    "ladder": {
        "gate": "passed",
        "largest": {"speedup": 4.5, "n": 2000},
        "tiers": [{"n": 500, "speedup": 2.1}, {"n": 2000, "speedup": 4.5}],
    },
    "workers": {
        "gate": "skipped",
        "cpu_limited": True,
        "workers": {
            "2": {"speedup": 1.4},
            "4": {"speedup": 1.9},
            "8": {"speedup": 1.6},
        },
    },
    "overhead": {
        "disabled_overhead_pct": 0.4,
        "max_disabled_overhead_pct": 2.0,
    },
    "freeform": {"note": "no gate, no headline"},
}


def _write_fixture_dir(root):
    for name, payload in FIXTURE_PAYLOADS.items():
        (root / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    # The trajectory artifact itself must never be imported as a bench.
    (root / "BENCH_trajectory.json").write_text("{}\n")
    return root


class TestHeadline:
    def test_ladder_largest_speedup(self):
        assert headline(FIXTURE_PAYLOADS["ladder"]) == {
            "metric": "speedup", "value": 4.5,
        }

    def test_worker_dict_picks_best_worker(self):
        head = headline(FIXTURE_PAYLOADS["workers"])
        assert head == {
            "metric": "best_worker_speedup", "value": 1.9, "workers": 4,
        }

    def test_worker_tie_prefers_more_workers(self):
        head = headline(
            {"workers": {"2": {"speedup": 1.5}, "4": {"speedup": 1.5}}}
        )
        assert head["workers"] == 4

    def test_worker_dict_ignores_junk_entries(self):
        head = headline(
            {"workers": {"oops": {"speedup": 9.0}, "2": {"speedup": 1.1}}}
        )
        assert head == {
            "metric": "best_worker_speedup", "value": 1.1, "workers": 2,
        }

    def test_flat_scalars(self):
        assert headline({"speedup": 3.0})["metric"] == "speedup"
        assert headline({"disabled_overhead_pct": 0.5}) == {
            "metric": "disabled_overhead_pct", "value": 0.5,
        }

    def test_unrecognised_is_none(self):
        assert headline(FIXTURE_PAYLOADS["freeform"]) is None


class TestGateState:
    def test_gate_string_passthrough(self):
        assert gate_state({"gate": "passed"}) == "passed"
        assert gate_state({"gate": "skipped"}) == "skipped"

    def test_bool_passed(self):
        assert gate_state({"passed": True}) == "passed"
        assert gate_state({"passed": False}) == "failed"

    def test_overhead_vs_limit(self):
        assert gate_state(FIXTURE_PAYLOADS["overhead"]) == "passed"
        assert gate_state(
            {"disabled_overhead_pct": 3.0, "max_disabled_overhead_pct": 2.0}
        ) == "failed"

    def test_no_gate_is_none(self):
        assert gate_state(FIXTURE_PAYLOADS["freeform"]) is None

    def test_cpu_limited(self):
        assert is_cpu_limited(FIXTURE_PAYLOADS["workers"])
        assert not is_cpu_limited(FIXTURE_PAYLOADS["ladder"])


class TestImportAndExport:
    def test_fixture_dir_matches_golden(self, tmp_path):
        _write_fixture_dir(tmp_path)
        with RunStore(":memory:") as store:
            names = import_bench_dir(store, tmp_path)
            trajectory = export_trajectory(store)
        assert names == sorted(FIXTURE_PAYLOADS)
        rendered = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
        golden = (GOLDEN / "trajectory.json").read_text()
        assert rendered == golden

    def test_trajectory_artifact_never_imported(self, tmp_path):
        _write_fixture_dir(tmp_path)
        with RunStore(":memory:") as store:
            names = import_bench_dir(store, tmp_path)
        assert "trajectory" not in names

    def test_reimport_does_not_grow_history(self, tmp_path):
        _write_fixture_dir(tmp_path)
        with RunStore(":memory:") as store:
            import_bench_dir(store, tmp_path)
            first = len(store.benches())
            import_bench_dir(store, tmp_path)
            assert len(store.benches()) == first

    def test_export_is_byte_deterministic(self, tmp_path):
        _write_fixture_dir(tmp_path)
        with RunStore(":memory:") as store:
            import_bench_dir(store, tmp_path)
            once = json.dumps(export_trajectory(store), sort_keys=True)
            twice = json.dumps(export_trajectory(store), sort_keys=True)
        assert once == twice

    def test_import_payload_normalizes(self):
        with RunStore(":memory:") as store:
            import_bench_payload(store, "workers", FIXTURE_PAYLOADS["workers"])
            row = store.benches(bench="workers")[0]
        assert row["gate"] == "skipped"
        assert row["headline_metric"] == "best_worker_speedup"
        assert row["headline_value"] == pytest.approx(1.9)
        assert row["cpu_limited"] is True

    def test_gateless_bench_still_exported(self, tmp_path):
        _write_fixture_dir(tmp_path)
        with RunStore(":memory:") as store:
            import_bench_dir(store, tmp_path)
            trajectory = export_trajectory(store)
        assert "freeform" in trajectory["benches"]
        assert "freeform" not in [g["bench"] for g in trajectory["gates"]]


class TestCommittedTrajectory:
    def test_exporter_reproduces_committed_artifact(self):
        """Importing the repo's own results directory and exporting must
        reproduce the committed ``BENCH_trajectory.json`` byte-for-byte
        (the acceptance contract for ``collect_bench.py``)."""
        committed = RESULTS_DIR / "BENCH_trajectory.json"
        if not committed.exists():  # pragma: no cover - fresh checkout
            pytest.skip("no committed trajectory")
        with RunStore(":memory:") as store:
            import_bench_dir(store, RESULTS_DIR)
            trajectory = export_trajectory(store)
        rendered = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
        assert rendered == committed.read_text()
