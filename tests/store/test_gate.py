"""Regression-gate semantics (:mod:`repro.store.gate`)."""

import json

import pytest

from repro.store.gate import DEFAULT_TOLERANCE, check_regression, main


def _trajectory(*gates):
    return {"artifact": "BENCH_trajectory", "gates": list(gates)}


def _gate(bench, state="passed", metric="speedup", value=None, **extra):
    row = {"bench": bench, "gate": state}
    if value is not None:
        row["headline"] = {"metric": metric, "value": value}
    row.update(extra)
    return row


BASELINE = _trajectory(
    _gate("fullscale", value=8.0),
    _gate("preprocess", value=4.0),
    _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
)


class TestCheckRegression:
    def test_identical_passes(self):
        failures, warnings = check_regression(BASELINE, BASELINE)
        assert failures == []
        assert warnings == []

    def test_gate_regression_is_hard_failure(self):
        current = _trajectory(
            _gate("fullscale", state="failed", value=8.0),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        failures, _ = check_regression(current, BASELINE)
        assert [f["kind"] for f in failures] == ["gate-regression"]
        assert failures[0]["bench"] == "fullscale"

    def test_speedup_drop_beyond_tolerance_fails(self):
        current = _trajectory(
            _gate("fullscale", value=8.0 * (1 - DEFAULT_TOLERANCE) - 0.1),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        failures, _ = check_regression(current, BASELINE)
        assert [f["kind"] for f in failures] == ["speedup-regression"]

    def test_speedup_within_tolerance_passes(self):
        current = _trajectory(
            _gate("fullscale", value=8.0 * (1 - DEFAULT_TOLERANCE) + 0.1),
            _gate("preprocess", value=4.5),  # faster is always fine
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        failures, warnings = check_regression(current, BASELINE)
        assert failures == []
        assert warnings == []

    def test_overhead_headlines_are_not_speedups(self):
        # A larger (worse) overhead number is not tolerance-banded: only
        # the gate verdict governs non-speedup headlines.
        current = _trajectory(
            _gate("fullscale", value=8.0),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=1.9),
        )
        failures, _ = check_regression(current, BASELINE)
        assert failures == []

    def test_skipped_current_is_warning_not_failure(self):
        current = _trajectory(
            _gate("fullscale", state="skipped", value=0.6, cpu_limited=True),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        failures, warnings = check_regression(current, BASELINE)
        assert failures == []
        assert [w["kind"] for w in warnings] == ["skipped"]
        assert "cpu_limited" in warnings[0]["detail"]

    def test_missing_bench_warns_by_default(self):
        current = _trajectory(
            _gate("fullscale", value=8.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        failures, warnings = check_regression(current, BASELINE)
        assert failures == []
        assert [w["bench"] for w in warnings] == ["preprocess"]
        assert warnings[0]["kind"] == "missing"

    def test_required_missing_bench_fails(self):
        current = _trajectory(_gate("fullscale", value=8.0))
        failures, _ = check_regression(
            current, BASELINE, require=["preprocess"]
        )
        assert ("preprocess", "missing") in [
            (f["bench"], f["kind"]) for f in failures
        ]

    def test_custom_tolerance(self):
        current = _trajectory(
            _gate("fullscale", value=7.0),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        tight, _ = check_regression(current, BASELINE, tolerance=0.05)
        loose, _ = check_regression(current, BASELINE, tolerance=0.5)
        assert len(tight) == 1
        assert loose == []

    def test_new_bench_in_current_is_ignored(self):
        current = _trajectory(
            _gate("fullscale", value=8.0),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
            _gate("brand_new", value=1.0),
        )
        failures, warnings = check_regression(current, BASELINE)
        assert failures == []
        assert warnings == []


class TestMainCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", BASELINE)
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        assert main(["--current", current, "--baseline", baseline]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        bad = _trajectory(
            _gate("fullscale", value=1.0),
            _gate("preprocess", value=4.0),
            _gate("trace_overhead", metric="disabled_overhead_pct", value=0.01),
        )
        current = self._write(tmp_path, "current.json", bad)
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        assert main(["--current", current, "--baseline", baseline]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "speedup-regression" in err

    def test_unreadable_file_exit_two(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        code = main(
            ["--current", str(tmp_path / "nope.json"), "--baseline", baseline]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--require", "--tolerance"])
    def test_flags_accepted(self, tmp_path, flag):
        current = self._write(tmp_path, "current.json", BASELINE)
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        value = "fullscale" if flag == "--require" else "0.1"
        assert main(
            ["--current", current, "--baseline", baseline, flag, value]
        ) == 0
