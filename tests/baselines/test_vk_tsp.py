"""Unit tests for the vk-TSP baseline."""

import numpy as np
import pytest

from repro.baselines.vk_tsp import VkTSP, _TrajectoryIndex
from repro.baselines.trajectories import synthesize_trajectories
from repro.core.config import EBRRConfig


@pytest.fixture
def instance(small_city):
    return small_city.instance(alpha=25.0)


@pytest.fixture
def config():
    return EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=25.0)


class TestPlan:
    def test_produces_route(self, instance, config):
        plan = VkTSP(seed=1).plan(instance, config)
        assert 2 <= plan.route.num_stops <= config.max_stops
        plan.route.validate_on(instance.network)

    def test_route_path_contiguous(self, instance, config):
        plan = VkTSP(seed=2).plan(instance, config)
        assert instance.network.is_path(plan.route.path)

    def test_deterministic(self, instance, config):
        a = VkTSP(seed=4).plan(instance, config)
        b = VkTSP(seed=4).plan(instance, config)
        assert a.route.stops == b.route.stops

    def test_timings(self, instance, config):
        plan = VkTSP(seed=1).plan(instance, config)
        assert plan.timings["total"] >= 0
        assert plan.timings["preprocess"] >= 0

    def test_longer_k_longer_route(self, instance):
        short = VkTSP(seed=3).plan(
            instance, EBRRConfig(max_stops=4, max_adjacent_cost=2.0, alpha=25.0)
        )
        long = VkTSP(seed=3).plan(
            instance, EBRRConfig(max_stops=16, max_adjacent_cost=2.0, alpha=25.0)
        )
        assert long.route.length(instance.network) >= (
            short.route.length(instance.network) - 1e-9
        )

    def test_route_follows_demand(self, instance, config):
        """The grown route hugs the demand corridors: its summed
        trajectory distance beats the average random *contiguous* path
        of the same node count (apples to apples — a scattered random
        node set is not a bus route)."""
        from repro.network.dijkstra import shortest_path

        planner = VkTSP(seed=5)
        plan = planner.plan(instance, config)
        index = planner._preprocess(instance)
        route_dist = _summed_distance(index, plan.route.path)

        rng = np.random.default_rng(0)
        random_dists = []
        for _ in range(5):
            a, b = rng.integers(0, instance.network.num_nodes, size=2)
            if a == b:
                continue
            path, _cost = shortest_path(instance.network, int(a), int(b))
            random_dists.append(
                _summed_distance(index, path[: len(plan.route.path)])
            )
        assert route_dist < sum(random_dists) / len(random_dists)


class TestTrajectoryIndex:
    def test_distances_match_brute_force(self, instance):
        trajectories = synthesize_trajectories(instance.queries, 20, seed=1)
        index = _TrajectoryIndex(instance, trajectories)
        coords = instance.network.coordinates()
        node = 0
        per_traj = index.distances_from_node(node)
        assert len(per_traj) == 20
        # brute force on the same decimation (every 2nd node + endpoint)
        import math

        for t, path in enumerate(trajectories):
            sampled = path[::2]
            if sampled[-1] != path[-1]:
                sampled.append(path[-1])
            expected = min(
                math.dist(coords[node], coords[v]) for v in sampled
            )
            assert per_traj[t] == pytest.approx(expected)

    def test_busiest_edge_is_max_frequency(self, instance):
        trajectories = synthesize_trajectories(instance.queries, 30, seed=2)
        index = _TrajectoryIndex(instance, trajectories)
        from repro.baselines.trajectories import edge_frequencies

        freq = edge_frequencies(trajectories)
        edge = index.busiest_edge()
        assert freq[edge] == max(freq.values())


def _summed_distance(index, nodes):
    import numpy as np

    current = index.distances_from_node(nodes[0])
    for node in nodes[1:]:
        current = np.minimum(current, index.distances_from_node(node))
    return float(current.sum())
