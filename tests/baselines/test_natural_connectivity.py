"""Unit tests for the natural-connectivity measure (ETA-Pre's
objective), cross-checked against direct eigenvalue computation."""

import math

import numpy as np
import pytest

from repro.baselines.natural_connectivity import (
    NaturalConnectivityGain,
    connectivity_gain,
    natural_connectivity,
    stop_graph_adjacency,
)
from repro.transit.network import TransitNetwork
from repro.transit.route import BusRoute

from ..conftest import V1, V2, V3, V4, V5


class TestNaturalConnectivity:
    def test_empty_graph(self):
        assert natural_connectivity(np.zeros((0, 0))) == 0.0

    def test_isolated_vertices(self):
        """All eigenvalues 0 -> ln((1/n)*n*e^0) = 0."""
        assert natural_connectivity(np.zeros((5, 5))) == pytest.approx(0.0)

    def test_single_edge(self):
        """K2 eigenvalues are ±1: nc = ln((e + 1/e)/2) = ln(cosh 1)."""
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert natural_connectivity(adjacency) == pytest.approx(
            math.log(math.cosh(1.0))
        )

    def test_denser_graph_higher(self):
        """Natural connectivity grows with redundancy: the triangle
        beats the 3-path."""
        triangle = np.array(
            [[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float
        )
        path = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        assert natural_connectivity(triangle) > natural_connectivity(path)

    def test_matches_naive_formula(self):
        rng = np.random.default_rng(2)
        n = 12
        adjacency = (rng.random((n, n)) < 0.3).astype(float)
        adjacency = np.triu(adjacency, 1)
        adjacency = adjacency + adjacency.T
        naive = math.log(np.exp(np.linalg.eigvalsh(adjacency)).sum() / n)
        assert natural_connectivity(adjacency) == pytest.approx(naive)


class TestStopGraph:
    def test_adjacency_from_routes(self, toy_transit):
        matrix, index = stop_graph_adjacency(toy_transit)
        assert matrix.shape == (2, 2)
        assert matrix[index[V1], index[V2]] == 1.0  # route_3's leg

    def test_extra_route_extends_vertex_set(self, toy_transit):
        extra = BusRoute("x", [V2, V3, V4], [V2, V3, V4])
        matrix, index = stop_graph_adjacency(toy_transit, [extra])
        assert matrix.shape == (4, 4)
        assert matrix[index[V3], index[V4]] == 1.0


class TestGain:
    def test_gain_positive_for_connecting_route(self, toy_transit):
        route = BusRoute("new", [V2, V3, V4], [V2, V3, V4])
        assert connectivity_gain(toy_transit, route) > 0.0

    def test_cached_matches_direct(self, toy_transit):
        evaluator = NaturalConnectivityGain(toy_transit)
        for stops in ([V2, V3], [V1, V2], [V3, V4, V5]):
            path = stops  # stops are network-adjacent chains here
            route = BusRoute("r", stops, path)
            direct = _direct_gain(toy_transit, route)
            assert evaluator.gain(route) == pytest.approx(direct)

    def test_redundant_route_gains_nothing(self, toy_transit):
        """A route duplicating an existing stop-graph edge (v1-v2 is
        already route_3's leg) leaves the adjacency unchanged."""
        duplicate = BusRoute("dup", [V1, V2], [V1, V2])
        assert connectivity_gain(toy_transit, duplicate) == pytest.approx(0.0)

    def test_connecting_beats_isolated(self, toy_transit):
        """Extending the existing component (v1-v3) builds more natural
        connectivity than an isolated two-stop shuttle (v4-v5)."""
        connecting = connectivity_gain(
            toy_transit, BusRoute("linked", [V1, V3], [V1, V2, V3])
        )
        isolated = connectivity_gain(
            toy_transit, BusRoute("lonely", [V4, V5], [V4, V5])
        )
        assert connecting > isolated


def _direct_gain(transit, route):
    after, _ = stop_graph_adjacency(transit, [route])
    existing, _ = stop_graph_adjacency(transit)
    before = np.zeros_like(after)
    k = existing.shape[0]
    before[:k, :k] = existing
    return natural_connectivity(after) - natural_connectivity(before)
