"""Unit tests for the k-means clustering baseline."""

import numpy as np
import pytest

from repro.baselines.kmeans_route import (
    KMeansRoute,
    _init_centroids,
    _lloyd,
    _nearest_neighbor_order,
)
from repro.core.config import EBRRConfig
from repro.exceptions import ConfigurationError


@pytest.fixture
def instance(small_city):
    return small_city.instance(alpha=25.0)


@pytest.fixture
def config():
    return EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=25.0)


class TestPlan:
    def test_produces_valid_route(self, instance, config):
        plan = KMeansRoute(seed=1).plan(instance, config)
        assert 2 <= plan.route.num_stops <= config.max_stops
        plan.route.validate_on(instance.network)
        assert instance.network.is_path(plan.route.path)

    def test_deterministic(self, instance, config):
        a = KMeansRoute(seed=2).plan(instance, config)
        b = KMeansRoute(seed=2).plan(instance, config)
        assert a.route.stops == b.route.stops

    def test_stops_near_demand_mass(self, instance, config):
        """Centroid stops sit closer to the demand (on average) than
        random nodes do — the clustering is doing its job."""
        from repro.network.geometry import euclidean

        plan = KMeansRoute(seed=3).plan(instance, config)
        coords = instance.network.coordinates()
        demand_points = [coords[v] for v in instance.queries.nodes[::10]]

        def mean_min_dist(nodes):
            total = 0.0
            for p in demand_points:
                total += min(euclidean(p, coords[s]) for s in nodes)
            return total / len(demand_points)

        rng = np.random.default_rng(0)
        random_nodes = [
            int(v)
            for v in rng.integers(
                0, instance.network.num_nodes, size=plan.route.num_stops
            )
        ]
        assert mean_min_dist(plan.route.stops) <= mean_min_dist(random_nodes)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            KMeansRoute(max_iterations=0)

    def test_metrics_attached(self, instance, config):
        plan = KMeansRoute(seed=1).plan(instance, config)
        assert plan.metrics.walk_cost > 0
        assert plan.timings["total"] >= 0


class TestLloyd:
    def test_converges_on_separated_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal((0, 0), 0.1, size=(50, 2))
        b = rng.normal((10, 10), 0.1, size=(50, 2))
        points = np.vstack([a, b])
        centroids = _lloyd(points, 2, 50, 1e-4, seed=0)
        centroids = centroids[centroids[:, 0].argsort()]
        assert np.allclose(centroids[0], (0, 0), atol=0.2)
        assert np.allclose(centroids[1], (10, 10), atol=0.2)

    def test_k_equals_points(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 0.0]])
        centroids = _lloyd(points, 3, 10, 1e-6, seed=0)
        got = {tuple(c) for c in np.round(centroids, 6)}
        assert got == {(0.0, 0.0), (5.0, 5.0), (9.0, 0.0)}

    def test_init_farthest_point_spread(self):
        points = np.array([[0.0, 0.0]] * 10 + [[100.0, 0.0]] * 10)
        centroids = _init_centroids(points, 2, np.random.default_rng(0))
        xs = sorted(c[0] for c in centroids)
        assert xs == [0.0, 100.0]


class TestOrdering:
    def test_nearest_neighbor_on_line(self):
        positions = [(3.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        stops = [30, 0, 10, 20]
        order = _nearest_neighbor_order(positions, stops)
        assert order == [0, 10, 20, 30]
