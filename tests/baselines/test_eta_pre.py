"""Unit tests for the ETA-Pre baseline."""

import pytest

from repro.baselines.eta_pre import ETAPre, _cap_stops
from repro.core.config import EBRRConfig
from repro.exceptions import ConfigurationError


@pytest.fixture
def instance(small_city):
    return small_city.instance(alpha=25.0)


@pytest.fixture
def config():
    return EBRRConfig(max_stops=8, max_adjacent_cost=2.0, alpha=25.0)


class TestPlan:
    def test_produces_k_stop_route(self, instance, config):
        plan = ETAPre(num_candidates=6, seed=1).plan(instance, config)
        assert 2 <= plan.route.num_stops <= config.max_stops
        plan.route.validate_on(instance.network)

    def test_metrics_attached(self, instance, config):
        plan = ETAPre(num_candidates=4, seed=1).plan(instance, config)
        assert plan.metrics.walk_cost > 0
        assert plan.metrics.connectivity >= 0
        assert plan.timings["total"] > 0
        assert "preprocess" in plan.timings

    def test_deterministic(self, instance, config):
        a = ETAPre(num_candidates=4, seed=5).plan(instance, config)
        b = ETAPre(num_candidates=4, seed=5).plan(instance, config)
        assert a.route.stops == b.route.stops

    def test_cache_speeds_second_plan(self, instance, config):
        planner = ETAPre(num_candidates=4, seed=2)
        first = planner.plan(instance, config)
        second = planner.plan(instance, config)
        assert second.timings["preprocess"] <= first.timings["preprocess"]
        planner.invalidate_cache()

    def test_invalid_candidates(self):
        with pytest.raises(ConfigurationError):
            ETAPre(num_candidates=0)

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            ETAPre(candidate_strategy="magic")

    def test_ksp_strategy_produces_route(self, instance, config):
        plan = ETAPre(
            candidate_strategy="ksp", num_candidates=6, seed=2
        ).plan(instance, config)
        assert 2 <= plan.route.num_stops <= config.max_stops
        plan.route.validate_on(instance.network)

    def test_ksp_strategy_deterministic(self, instance, config):
        a = ETAPre(candidate_strategy="ksp", num_candidates=4, seed=3).plan(
            instance, config
        )
        b = ETAPre(candidate_strategy="ksp", num_candidates=4, seed=3).plan(
            instance, config
        )
        assert a.route.stops == b.route.stops

    def test_strategies_may_differ_but_both_valid(self, instance, config):
        grow = ETAPre(candidate_strategy="grow", num_candidates=4, seed=4)
        ksp = ETAPre(candidate_strategy="ksp", num_candidates=4, seed=4)
        for planner in (grow, ksp):
            plan = planner.plan(instance, config)
            assert plan.metrics.walk_cost > 0

    def test_may_violate_c(self, instance, config):
        """The paper: baseline routes 'could violate the constraint of
        C because their problems do not require it' — so the route is
        not guaranteed feasible, only well-formed."""
        plan = ETAPre(num_candidates=4, seed=3).plan(instance, config)
        costs = plan.route.adjacent_stop_costs(instance.network)
        assert all(c > 0 for c in costs)


class TestCapStops:
    def test_within_limit_unchanged(self):
        assert _cap_stops([1, 2, 3], 5) == [1, 2, 3]

    def test_thinning_keeps_terminals(self):
        stops = list(range(10, 30))
        capped = _cap_stops(stops, 5)
        assert len(capped) == 5
        assert capped[0] == stops[0]
        assert capped[-1] == stops[-1]

    def test_single(self):
        assert _cap_stops([4, 5, 6], 1) == [4]

    def test_no_duplicates(self):
        capped = _cap_stops(list(range(100)), 7)
        assert len(set(capped)) == len(capped)
