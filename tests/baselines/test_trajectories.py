"""Unit tests for trajectory synthesis and frequency maps."""

import pytest

from repro.baselines.trajectories import (
    edge_frequencies,
    node_frequencies,
    synthesize_trajectories,
)
from repro.demand.query import QuerySet
from repro.exceptions import DemandError


class TestSynthesis:
    def test_count_and_validity(self, grid_network):
        qs = QuerySet(grid_network, list(range(36)))
        trajectories = synthesize_trajectories(qs, 50, seed=1)
        assert len(trajectories) == 50
        for path in trajectories:
            assert len(path) >= 2
            assert grid_network.is_path(path)

    def test_endpoints_from_demand(self, grid_network):
        qs = QuerySet(grid_network, [0, 35])
        trajectories = synthesize_trajectories(qs, 10, seed=2)
        for path in trajectories:
            assert path[0] in (0, 35)
            assert path[-1] in (0, 35)

    def test_deterministic(self, grid_network):
        qs = QuerySet(grid_network, list(range(36)))
        a = synthesize_trajectories(qs, 20, seed=3)
        b = synthesize_trajectories(qs, 20, seed=3)
        assert a == b

    def test_needs_two_distinct_nodes(self, grid_network):
        qs = QuerySet(grid_network, [5, 5, 5])
        with pytest.raises(DemandError):
            synthesize_trajectories(qs, 5)

    def test_invalid_count(self, grid_network):
        qs = QuerySet(grid_network, [0, 1])
        with pytest.raises(DemandError):
            synthesize_trajectories(qs, 0)


class TestFrequencies:
    def test_edge_frequencies_normalized_keys(self):
        trajectories = [[0, 1, 2], [2, 1, 0], [0, 1]]
        freq = edge_frequencies(trajectories)
        assert freq[(0, 1)] == 3
        assert freq[(1, 2)] == 2
        assert all(u < v for u, v in freq)

    def test_node_frequencies_count_once_per_trajectory(self):
        trajectories = [[0, 1, 0, 2], [1, 2]]
        freq = node_frequencies(trajectories)
        assert freq[0] == 1
        assert freq[1] == 2
        assert freq[2] == 2

    def test_empty(self):
        assert edge_frequencies([]) == {}
        assert node_frequencies([]) == {}
