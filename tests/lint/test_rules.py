"""Fixture-snippet tests: every rule fires on a violating snippet and
stays silent on the compliant rewrite."""

import textwrap

import pytest

from repro.lint import check_source


def lint(snippet, **kwargs):
    return check_source(textwrap.dedent(snippet), path="snippet.py", **kwargs)


def rule_ids(snippet, **kwargs):
    return [v.rule_id for v in lint(snippet, **kwargs)]


# ----------------------------------------------------------------------
# RL001 — engine bypass
# ----------------------------------------------------------------------

RL001_POSITIVES = [
    "from repro.network.dijkstra import shortest_path_costs\n",
    "from .dijkstra import shortest_path_costs\n",
    "from ..network.dijkstra import multi_source_costs\n",
    "import repro.network.dijkstra\n",
    "import repro.network.dijkstra as legacy\n",
    "from repro.network import shortest_path_costs\n",
    "from .network import IncrementalNearestDistance\n",
]


@pytest.mark.parametrize("snippet", RL001_POSITIVES)
def test_rl001_fires(snippet):
    assert rule_ids(snippet) == ["RL001"]


def test_rl001_silent_on_engine_usage():
    snippet = """
        from repro.network.engine import engine_for

        def plan(network, source):
            return engine_for(network).sssp(source, phase="plan")
    """
    assert rule_ids(snippet) == []


def test_rl001_silent_on_unrelated_network_import():
    assert rule_ids("from repro.network import RoadNetwork, engine_for\n") == []


# ----------------------------------------------------------------------
# RL002 — cache-invalidation hazard
# ----------------------------------------------------------------------


def test_rl002_fires_on_foreign_writes():
    snippet = """
        def corrupt(network, u, v, cost):
            network._adj[u].append((v, cost))
            network._edge_costs[(u, v)] = cost
            network._version += 1
            del network._coords[u]
    """
    assert rule_ids(snippet) == ["RL002"] * 4


def test_rl002_fires_through_attribute_chains():
    snippet = """
        class Planner:
            def sneak(self, u, v, cost):
                self._network._adj[u].append((v, cost))
    """
    assert rule_ids(snippet) == ["RL002"]


def test_rl002_silent_on_own_state_and_reads():
    snippet = """
        class Clustering:
            def __init__(self, coords):
                self._coords = list(coords)
                self._adj = {}

            def rebuild(self):
                self._coords.sort()

        def read_only(network):
            return len(network._adj), dict(network._edge_costs)
    """
    assert rule_ids(snippet) == []


def test_rl002_silent_on_sanctioned_mutators():
    snippet = """
        def widen(network, u, v, cost):
            network.add_edge(u, v, cost)
            network.set_edge_cost(u, v, 2.0 * cost)
    """
    assert rule_ids(snippet) == []


# ----------------------------------------------------------------------
# RL003 — nondeterminism
# ----------------------------------------------------------------------


def test_rl003_fires_on_global_rng():
    snippet = """
        import random
        import numpy as np

        def jitter(xs):
            random.shuffle(xs)
            return xs[0] + np.random.normal()
    """
    assert rule_ids(snippet) == ["RL003", "RL003"]


def test_rl003_fires_on_bare_set_iteration():
    assert rule_ids("for node in set(path):\n    print(node)\n") == ["RL003"]
    assert rule_ids("result = [f(x) for x in {1, 2, 3}]\n") == ["RL003"]


def test_rl003_silent_on_seeded_generators_and_sorted_sets():
    snippet = """
        import random
        import numpy as np

        def sample(seed, items):
            rng = np.random.default_rng(seed)
            local = random.Random(seed)
            order = sorted(set(items))
            for node in order:
                pass
            return rng.normal() + local.random()
    """
    assert rule_ids(snippet) == []


def test_rl003_silent_on_set_membership():
    # Membership tests are order-independent; only iteration is flagged.
    assert rule_ids("hit = [h for h in hours if h not in set(night)]\n") == []


# ----------------------------------------------------------------------
# RL004 — float equality
# ----------------------------------------------------------------------


def test_rl004_fires_on_float_literal_comparison():
    assert rule_ids("ok = cost == 0.0\n") == ["RL004"]
    assert rule_ids("bad = 1.5 != utility\n") == ["RL004"]
    assert rule_ids("neg = walk == -0.0\n") == ["RL004"]


def test_rl004_silent_on_tolerant_and_integer_compares():
    snippet = """
        import math
        from repro.core.numeric import is_zero

        def guard(cost, count):
            return is_zero(cost) or math.isclose(cost, 1.0) or count == 0
    """
    assert rule_ids(snippet) == []


def test_rl004_silent_on_ordering_compares():
    assert rule_ids("better = cost < 0.5 or cost >= 1.0\n") == []


# ----------------------------------------------------------------------
# RL005 — mutable default arguments
# ----------------------------------------------------------------------


def test_rl005_fires_on_mutable_defaults():
    snippet = """
        def accumulate(x, acc=[]):
            acc.append(x)
            return acc

        def index(key, table={}):
            return table.setdefault(key, set())

        def pick(xs, seen=set()):
            return [x for x in xs if x not in seen]
    """
    assert rule_ids(snippet) == ["RL005"] * 3


def test_rl005_silent_on_none_default():
    snippet = """
        def accumulate(x, acc=None):
            if acc is None:
                acc = []
            acc.append(x)
            return acc
    """
    assert rule_ids(snippet) == []


# ----------------------------------------------------------------------
# RL006 — wall-clock timing
# ----------------------------------------------------------------------


def test_rl006_fires_on_time_time():
    snippet = """
        import time

        def run(f):
            start = time.time()
            f()
            return time.time() - start
    """
    assert rule_ids(snippet) == ["RL006", "RL006"]


def test_rl006_fires_on_from_time_import_time():
    assert rule_ids("from time import time\n") == ["RL006"]


def test_rl006_silent_on_perf_counter():
    # Raw perf_counter is RL008's report, not RL006's.
    snippet = """
        import time
        from time import perf_counter

        def run(f):
            start = time.perf_counter()
            f()
            return perf_counter() - start
    """
    assert rule_ids(snippet, select=["RL006"]) == []


# ----------------------------------------------------------------------
# RL007 — float-typed equality (no literal in sight)
# ----------------------------------------------------------------------


def test_rl007_fires_on_float_annotated_params():
    snippet = """
        def pick(ratio: float, best: float) -> bool:
            return ratio == best
    """
    assert rule_ids(snippet) == ["RL007"]


def test_rl007_fires_on_inferred_float_locals():
    snippet = """
        def gain(parts, total):
            share = total / len(parts)
            accumulated = 0.0
            return share != accumulated
    """
    assert rule_ids(snippet) == ["RL007"]


def test_rl007_fires_on_inline_division_compare():
    snippet = """
        def same_ratio(a, b, c, d):
            return a / b == c / d
    """
    assert rule_ids(snippet) == ["RL007"]


def test_rl007_silent_on_integer_compares():
    snippet = """
        def count_match(old, new, items):
            total = len(items)
            return old == new or total != 0
    """
    assert rule_ids(snippet) == []


def test_rl007_leaves_float_literals_to_rl004():
    # A float literal operand is RL004's report; RL007 must not
    # double-report the same comparison.
    assert rule_ids("bad = cost == 0.0\n") == ["RL004"]


def test_rl007_silent_on_tolerant_compares():
    snippet = """
        import math
        from repro.core.numeric import close

        def guard(ratio: float, best: float) -> bool:
            return close(ratio, best) or math.isclose(ratio, best)
    """
    assert rule_ids(snippet) == []


def test_rl007_scopes_are_independent():
    # The outer float name must not leak into the nested function's
    # scope inference (the nested compare is over untyped names).
    snippet = """
        def outer(items):
            share = 1.0 * len(items)

            def inner(share, other):
                return share == other

            return inner(share, share)
    """
    assert rule_ids(snippet) == []


# ----------------------------------------------------------------------
# RL008 — raw perf_counter outside repro.obs
# ----------------------------------------------------------------------


def test_rl008_fires_on_raw_perf_counter():
    snippet = """
        import time

        def run(f):
            start = time.perf_counter()
            f()
            return time.perf_counter() - start
    """
    assert rule_ids(snippet) == ["RL008", "RL008"]


def test_rl008_fires_on_from_time_import_perf_counter():
    assert rule_ids("from time import perf_counter\n") == ["RL008"]


def test_rl008_silent_on_obs_primitives():
    snippet = """
        from repro.obs import now, span, stopwatch

        def run(f, sink):
            with stopwatch(sink, "query"), span("query"):
                f()
            return now()
    """
    assert rule_ids(snippet) == []


def test_rl008_exempts_the_sanctioned_clock_module():
    snippet = "import time\nstart = time.perf_counter()\n"
    assert (
        check_source(snippet, path="src/repro/obs/clock.py", select=["RL008"])
        == []
    )
    assert (
        check_source(snippet, path="src/repro/eval/timing.py", select=["RL008"])
        == []
    )


def test_rl008_fires_outside_the_exempt_paths():
    snippet = "import time\nstart = time.perf_counter()\n"
    violations = check_source(
        snippet, path="src/repro/core/ebrr.py", select=["RL008"]
    )
    assert [v.rule_id for v in violations] == ["RL008"]


# ----------------------------------------------------------------------
# RL009 — kernel confinement
# ----------------------------------------------------------------------

RL009_POSITIVES = [
    "from repro.network.kernels import PythonKernel\n",
    "from repro.network.kernels.vectorized import VectorizedKernel\n",
    "from ..network.kernels import resolve_kernel\n",
    "from .kernels.python import PythonKernel\n",
    "import repro.network.kernels\n",
    "import repro.network.kernels.python as backend\n",
    "from repro.network.engine import PythonKernel\n",
]


@pytest.mark.parametrize("snippet", RL009_POSITIVES)
def test_rl009_fires(snippet):
    assert "RL009" in rule_ids(snippet, select=["RL009"])


def test_rl009_silent_on_name_based_selection():
    snippet = """
        from repro.network.engine import SearchEngine, available_kernels

        def build(network, name):
            assert name in available_kernels()
            return SearchEngine(network, kernel=name)
    """
    assert rule_ids(snippet, select=["RL009"]) == []


def test_rl009_exempts_the_engine_and_the_package():
    # The exemption lives in pyproject's [tool.reprolint.rule-excludes]
    # (the RL001 pattern); mirror it here.
    from repro.lint.config import LintConfig

    config = LintConfig(
        rule_excludes={
            "RL009": [
                "src/repro/network/engine.py",
                "src/repro/network/kernels/*",
            ]
        }
    )
    snippet = "from .kernels import resolve_kernel\n"
    assert (
        check_source(
            snippet,
            path="src/repro/network/engine.py",
            config=config,
            select=["RL009"],
        )
        == []
    )
    snippet = "from .python import PythonKernel\n"
    assert (
        check_source(
            snippet,
            path="src/repro/network/kernels/vectorized.py",
            config=config,
            select=["RL009"],
        )
        == []
    )


def test_rl009_fires_outside_the_exempt_paths():
    violations = check_source(
        "from repro.network.kernels import VectorizedKernel\n",
        path="src/repro/core/ebrr.py",
        select=["RL009"],
    )
    assert [v.rule_id for v in violations] == ["RL009"]
