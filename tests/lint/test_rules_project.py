"""Fire and pass fixtures for the cross-module rules RL010–RL012.

Each rule gets at least one snippet it must flag and one semantically
close snippet it must stay silent on; the acceptance criterion for the
whole-program analyzer is exactly this pair per rule.
"""

import textwrap

from repro.lint import check_source, check_sources


def lint(source, path, select):
    return check_source(textwrap.dedent(source), path=path, select=[select])


def lint_many(sources, select):
    return check_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()},
        select=[select],
    )


# ----------------------------------------------------------------------
# RL010 — worker-shipment safety
# ----------------------------------------------------------------------


def test_rl010_fires_on_lambda_task():
    violations = lint(
        """
        import multiprocessing

        def fan(chunks):
            with multiprocessing.Pool(4) as pool:
                return pool.map(lambda c: c * 2, chunks)
        """,
        "src/repro/parallel/bad.py",
        "RL010",
    )
    assert [v.rule_id for v in violations] == ["RL010"]
    assert "lambda" in violations[0].message


def test_rl010_fires_on_bound_method_task():
    violations = lint(
        """
        import multiprocessing

        def fan(worker, chunks):
            with multiprocessing.Pool(4) as pool:
                return pool.map(worker.run, chunks)
        """,
        "src/repro/parallel/bad.py",
        "RL010",
    )
    assert [v.rule_id for v in violations] == ["RL010"]
    assert "bound-method" in violations[0].message


def test_rl010_fires_on_nested_function_task():
    violations = lint(
        """
        import multiprocessing

        def fan(chunks):
            def task(c):
                return c * 2
            with multiprocessing.Pool(4) as pool:
                return pool.map(task, chunks)
        """,
        "src/repro/parallel/bad.py",
        "RL010",
    )
    assert [v.rule_id for v in violations] == ["RL010"]
    assert "nested function" in violations[0].message


def test_rl010_fires_on_shipped_engine_local():
    violations = lint(
        """
        import multiprocessing
        from repro.network.engine import engine_for

        def _init(engine):
            pass

        def fan(network, chunks):
            engine = engine_for(network)
            with multiprocessing.Pool(initializer=_init, initargs=(engine,)) as pool:
                return pool.map(_task, chunks)

        def _task(c):
            return c
        """,
        "src/repro/parallel/bad.py",
        "RL010",
    )
    assert [v.rule_id for v in violations] == ["RL010"]
    assert "SearchEngine" in violations[0].message


def test_rl010_fires_on_inline_engine_construction():
    violations = lint(
        """
        import multiprocessing
        from repro.network.engine import SearchEngine

        def _init(engine):
            pass

        def fan(network, chunks):
            with multiprocessing.Pool(
                initializer=_init, initargs=(SearchEngine(network),)
            ) as pool:
                return pool.map(_task, chunks)

        def _task(c):
            return c
        """,
        "src/repro/parallel/bad.py",
        "RL010",
    )
    assert len(violations) == 1
    assert "construct a live SearchEngine" in violations[0].message


def test_rl010_fires_on_global_mutation_reachable_from_task():
    violations = lint_many(
        {
            "src/repro/parallel/fan.py": """
                import multiprocessing
                from repro.other import mutate

                def _task(c):
                    mutate(c)
                    return c

                def fan(chunks):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_task, chunks)
            """,
            "src/repro/other.py": """
                _STATE = None

                def mutate(value):
                    global _STATE
                    _STATE = value
            """,
        },
        "RL010",
    )
    assert [v.rule_id for v in violations] == ["RL010"]
    # Flagged at the definition of the mutating helper, cross-module.
    assert violations[0].path == "src/repro/other.py"
    assert "_STATE" in violations[0].message


def test_rl010_passes_module_level_task_and_initializer_globals():
    violations = lint(
        """
        import multiprocessing

        _ENGINE = None

        def _init(network):
            # Initializers ARE the sanctioned per-process state installer.
            global _ENGINE
            _ENGINE = network

        def _task(c):
            return c * 2

        def fan(network, chunks):
            with multiprocessing.Pool(initializer=_init, initargs=(network,)) as pool:
                return pool.map(_task, chunks)
        """,
        "src/repro/parallel/good.py",
        "RL010",
    )
    assert violations == []


def test_rl010_ignores_map_in_non_pool_modules():
    violations = lint(
        """
        def apply_all(mapper, items):
            return mapper.map(str, items)
        """,
        "src/repro/core/plain.py",
        "RL010",
    )
    assert violations == []


# ----------------------------------------------------------------------
# RL011 — span coverage of phase entry points
# ----------------------------------------------------------------------


def test_rl011_fires_on_uncovered_phase_entry_point():
    violations = lint(
        """
        def preprocess_things(instance):
            return [instance]
        """,
        "src/repro/core/newphase.py",
        "RL011",
    )
    assert [v.rule_id for v in violations] == ["RL011"]
    assert "preprocess_things" in violations[0].message


def test_rl011_passes_direct_span():
    violations = lint(
        """
        from repro.obs import span

        def preprocess_things(instance):
            with span("preprocess"):
                return [instance]
        """,
        "src/repro/core/newphase.py",
        "RL011",
    )
    assert violations == []


def test_rl011_passes_traced_decorator():
    violations = lint(
        """
        from repro.obs import traced

        @traced("run")
        def run_things(instance):
            return [instance]
        """,
        "src/repro/core/newphase.py",
        "RL011",
    )
    assert violations == []


def test_rl011_coverage_is_transitive_across_modules():
    sources = {
        "src/repro/core/wrapper.py": """
            from repro.core.inner import run_inner

            def plan_wrapped(instance):
                return run_inner(instance)
        """,
        "src/repro/core/inner.py": """
            from repro.obs import span

            def run_inner(instance):
                with span("inner"):
                    return instance
        """,
    }
    assert lint_many(sources, "RL011") == []


def test_rl011_ignores_private_and_non_phase_names():
    violations = lint(
        """
        def _preprocess_private(instance):
            return instance

        def format_table(rows):
            return rows
        """,
        "src/repro/core/helpers.py",
        "RL011",
    )
    assert violations == []


def test_rl011_fires_on_uncovered_serve_handler():
    violations = lint(
        """
        def handle_plan(tenant, payload):
            return tenant.plan(payload)
        """,
        "src/repro/serve/handlers.py",
        "RL011",
    )
    assert [v.rule_id for v in violations] == ["RL011"]
    assert "handle_plan" in violations[0].message


def test_rl011_passes_spanned_serve_handler():
    violations = lint(
        """
        from repro.obs import span

        def handle_plan(tenant, payload):
            with span("serve.plan"):
                return tenant.plan(payload)
        """,
        "src/repro/serve/handlers.py",
        "RL011",
    )
    assert violations == []


def test_rl011_ignores_modules_outside_phase_packages():
    violations = lint(
        """
        def run_export(trace):
            return trace
        """,
        "src/repro/obs/export.py",
        "RL011",
    )
    assert violations == []


# ----------------------------------------------------------------------
# RL012 — kernel hot-loop confinement
# ----------------------------------------------------------------------


HOT_LOOP = """
    def relax_all(csr, dist, heap):
        while heap:
            u = heap.pop()
            for i in range(csr.indptr[u], csr.indptr[u + 1]):
                dist[csr.targets[i]] = dist[u] + csr.costs[i]
"""


def test_rl012_fires_outside_kernels():
    violations = lint(HOT_LOOP, "src/repro/core/fastpath.py", "RL012")
    assert [v.rule_id for v in violations] == ["RL012"]
    assert "repro.network.kernels" in violations[0].message
    # Innermost-only: the while wrapper is not separately reported.
    assert len(violations) == 1


def test_rl012_allows_the_kernels_package():
    violations = lint(
        HOT_LOOP, "src/repro/network/kernels/scalar.py", "RL012"
    )
    assert violations == []


def test_rl012_fires_on_adjacency_dict_walks():
    violations = lint(
        """
        def neighbors(graph, node):
            out = []
            for target, cost in graph._adj[node]:
                out.append((target, cost))
            return out
        """,
        "src/repro/transit/walk.py",
        "RL012",
    )
    assert [v.rule_id for v in violations] == ["RL012"]


def test_rl012_silent_on_everyday_identifiers():
    # `targets`/`costs` alone are common names (ast.Assign.targets,
    # cost tables) — one weak attribute must not fire.
    violations = lint(
        """
        def tally(assign, table):
            total = 0.0
            for name in assign.targets:
                total += table[name]
            return total
        """,
        "src/repro/core/tally.py",
        "RL012",
    )
    assert violations == []


def test_rl012_inline_suppression_and_baseline_sites_hold():
    # The two known pre-ratchet hot loops carry inline suppressions; the
    # shipped tree must stay clean under the repo config (covered by
    # test_repo_source_tree_is_clean) — here we check the raw rule still
    # SEES them, so the suppressions are load-bearing, not stale.
    import os

    from repro.lint import load_config

    repo = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    journey = os.path.join(repo, "src", "repro", "transit", "journey.py")
    with open(journey, "r", encoding="utf-8") as handle:
        source = handle.read()
    stripped = source.replace("  # reprolint: disable=RL012", "")
    config = load_config(repo)
    violations = check_source(
        stripped, path=journey, config=config, select=["RL012"]
    )
    assert [v.rule_id for v in violations] == ["RL012"]
