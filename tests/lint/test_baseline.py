"""The suppression ratchet: baseline write/load/check semantics."""

import pytest

from repro.lint import check_baseline, load_baseline, write_baseline
from repro.lint.baseline import render_baseline, violation_counts
from repro.lint.violations import META_RULE_ID, Violation


def v(rule_id, line=1):
    return Violation("f.py", line, 0, rule_id, "msg")


def test_violation_counts_tallies_by_rule():
    counts = violation_counts([v("RL001"), v("RL004"), v("RL001", 2)])
    assert counts == {"RL001": 2, "RL004": 1}


def test_write_load_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, {"RL012": 2}, {"RL001": 1, "RL012": 2})
    loaded = load_baseline(path)
    assert loaded == {
        "violations": {"RL012": 2},
        "suppressions": {"RL001": 1, "RL012": 2},
    }


def test_render_is_stable_and_sorted():
    text = render_baseline({"RL009": 1, "RL001": 2}, {})
    assert text.endswith("\n")
    assert text.index('"RL001"') < text.index('"RL009"')


@pytest.mark.parametrize(
    "content",
    [
        "{not json",
        '{"schema": 99, "violations": {}, "suppressions": {}}',
        '{"schema": 1, "violations": {"RL001": -1}, "suppressions": {}}',
        '{"schema": 1, "violations": {"RL001": "two"}, "suppressions": {}}',
        '{"schema": 1, "violations": [], "suppressions": {}}',
    ],
)
def test_malformed_baseline_fails_loudly(tmp_path, content):
    path = tmp_path / "baseline.json"
    path.write_text(content)
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_missing_baseline_fails_loudly(tmp_path):
    with pytest.raises(ValueError):
        load_baseline(str(tmp_path / "nope.json"))


# ----------------------------------------------------------------------
# The ratchet itself
# ----------------------------------------------------------------------

BASE = {"violations": {"RL012": 2}, "suppressions": {"RL012": 2}}


def test_counts_at_baseline_pass():
    report = check_baseline(BASE, {"RL012": 2}, {"RL012": 2})
    assert report.ok
    assert report.improvements == []


def test_violation_growth_fails():
    report = check_baseline(BASE, {"RL012": 3}, {"RL012": 2})
    assert not report.ok
    assert any("RL012" in line and "exceeds" in line for line in report.failures)


def test_new_rule_ratchets_from_zero():
    report = check_baseline(BASE, {"RL012": 2, "RL001": 1}, {"RL012": 2})
    assert not report.ok
    assert any("RL001" in line for line in report.failures)


def test_new_suppressions_fail_the_ratchet():
    # The easy way around the gate — adding pragmas — is itself gated.
    report = check_baseline(BASE, {"RL012": 2}, {"RL012": 3})
    assert not report.ok
    assert any("suppression" in line for line in report.failures)


def test_shrinking_counts_report_slack():
    report = check_baseline(BASE, {"RL012": 1}, {"RL012": 2})
    assert report.ok
    assert any("re-run --write-baseline" in line for line in report.improvements)


def test_meta_violations_never_pass_even_if_baselined():
    baseline = {"violations": {META_RULE_ID: 5}, "suppressions": {}}
    report = check_baseline(baseline, {META_RULE_ID: 1}, {})
    assert not report.ok
    assert any("never baselined" in line for line in report.failures)
