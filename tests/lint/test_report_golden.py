"""Reporter golden snapshots: the JSON and GitHub-annotation formats.

CI parses both (the JSON report is uploaded as an artifact; the GitHub
format drives inline PR annotations), so their exact shape is a
contract.  The golden files under ``tests/lint/golden/`` snapshot the
renderer output for a fixed violation list covering the tricky cases —
multi-rule tallies, zero-violation output, and workflow-command
escaping of ``%`` and newlines.  A deliberate format change regenerates
them with::

    PYTHONPATH=src python -m tests.lint.test_report_golden regenerate
"""

import json
import sys
from pathlib import Path

from repro.lint.report import render_github, render_json, render_text
from repro.lint.violations import Violation

GOLDEN = Path(__file__).parent / "golden"


def reference_violations():
    """Deterministic list exercising sort order, repeated rules, and
    message characters the GitHub format must escape."""
    return [
        Violation(
            path="src/repro/core/ebrr.py",
            line=42,
            column=8,
            rule_id="RL004",
            message="exact float equality on a path cost",
        ),
        Violation(
            path="src/repro/parallel/fanout.py",
            line=7,
            column=0,
            rule_id="RL010",
            message="pool task is a lambda; 100% sure it will not pickle\nunder spawn",
        ),
        Violation(
            path="src/repro/parallel/fanout.py",
            line=19,
            column=4,
            rule_id="RL010",
            message="pool arguments ship live SearchEngine value(s) engine",
        ),
        Violation(
            path="src/repro/transit/journey.py",
            line=250,
            column=16,
            rule_id="RL012",
            message="python for-loop iterates CSR/adjacency state (costs, indptr, targets)",
        ),
    ]


class TestGolden:
    def test_json_matches_golden(self):
        expected = (GOLDEN / "report.json").read_text()
        assert render_json(reference_violations()) + "\n" == expected

    def test_github_matches_golden(self):
        expected = (GOLDEN / "annotations.txt").read_text()
        assert render_github(reference_violations()) + "\n" == expected

    def test_github_clean_matches_golden(self):
        expected = (GOLDEN / "annotations_clean.txt").read_text()
        assert render_github([]) + "\n" == expected


class TestContracts:
    def test_json_is_parseable_and_counts_agree(self):
        payload = json.loads(render_json(reference_violations()))
        assert payload["count"] == 4
        assert payload["by_rule"] == {"RL004": 1, "RL010": 2, "RL012": 1}
        assert [v["line"] for v in payload["violations"]] == [42, 7, 19, 250]

    def test_github_escapes_workflow_command_characters(self):
        out = render_github(reference_violations())
        assert "%25" in out       # literal % escaped
        assert "%0A" in out       # newline escaped
        assert "\nunder spawn" not in out

    def test_github_columns_are_one_indexed(self):
        out = render_github(reference_violations()[:1])
        assert "col=9" in out

    def test_text_tally_footer(self):
        out = render_text(reference_violations())
        assert out.splitlines()[-1] == (
            "reprolint: 4 violation(s) (RL004×1, RL010×2, RL012×1)"
        )


def regenerate():
    GOLDEN.mkdir(exist_ok=True)
    (GOLDEN / "report.json").write_text(render_json(reference_violations()) + "\n")
    (GOLDEN / "annotations.txt").write_text(
        render_github(reference_violations()) + "\n"
    )
    (GOLDEN / "annotations_clean.txt").write_text(render_github([]) + "\n")
    print(f"golden files regenerated under {GOLDEN}")


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "regenerate":
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
