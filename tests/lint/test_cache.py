"""The incremental cache: hit/miss semantics, invalidation, and the
cold/warm performance gates."""

import ast
import json
import os
import time

from repro.lint import load_config, run_lint
from repro.lint.cache import (
    CACHE_SCHEMA_VERSION,
    LintCache,
    content_hash,
    ruleset_signature,
)
from repro.lint.project import extract_facts
from repro.lint.violations import Violation

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def sample_entry():
    source = "def f():\n    return 1\n"
    facts = extract_facts("src/repro/x.py", ast.parse(source))
    violations = [Violation("src/repro/x.py", 1, 0, "RL004", "msg")]
    return source, facts, violations


# ----------------------------------------------------------------------
# LintCache unit behaviour
# ----------------------------------------------------------------------


def test_store_lookup_round_trip(tmp_path):
    source, facts, violations = sample_entry()
    digest = content_hash(source.encode())
    cache = LintCache(path=str(tmp_path / "c.json"), signature="sig")
    assert cache.lookup("src/repro/x.py", digest) is None
    cache.store("src/repro/x.py", digest, facts, violations)
    cache.save()

    reloaded = LintCache.load(str(tmp_path / "c.json"), "sig")
    hit = reloaded.lookup("src/repro/x.py", digest)
    assert hit is not None
    got_facts, got_violations = hit
    assert got_facts == facts
    assert got_violations == violations
    assert reloaded.stats.hits == 1


def test_content_change_misses(tmp_path):
    source, facts, violations = sample_entry()
    cache = LintCache(path=str(tmp_path / "c.json"), signature="sig")
    cache.store("x.py", content_hash(source.encode()), facts, violations)
    assert cache.lookup("x.py", content_hash(b"changed")) is None
    assert cache.stats.misses == 1


def test_signature_mismatch_empties_the_cache(tmp_path):
    source, facts, violations = sample_entry()
    path = str(tmp_path / "c.json")
    cache = LintCache(path=path, signature=ruleset_signature(["RL001"]))
    cache.store("x.py", content_hash(source.encode()), facts, violations)
    cache.save()
    # A new/renamed rule changes the signature: everything invalidates.
    reloaded = LintCache.load(path, ruleset_signature(["RL001", "RL099"]))
    assert reloaded.entries == {}


def test_schema_mismatch_empties_the_cache(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(
        json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION + 1,
                "signature": "sig",
                "entries": {"x.py": {}},
            }
        )
    )
    assert LintCache.load(str(path), "sig").entries == {}


def test_corrupt_cache_file_degrades_to_cold(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{not json")
    assert LintCache.load(str(path), "sig").entries == {}


def test_prune_drops_dead_files(tmp_path):
    source, facts, violations = sample_entry()
    cache = LintCache(path=str(tmp_path / "c.json"), signature="sig")
    digest = content_hash(source.encode())
    cache.store("keep.py", digest, facts, violations)
    cache.store("gone.py", digest, facts, violations)
    cache.prune(["keep.py"])
    assert sorted(cache.entries) == ["keep.py"]


# ----------------------------------------------------------------------
# run_lint integration: warm runs skip parsing, results identical
# ----------------------------------------------------------------------


def make_tree(tmp_path):
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "clean.py").write_text("def f():\n    return 1\n")
    (pkg / "bad.py").write_text("x = cost == 0.0\n")
    return pkg


def test_warm_run_hits_everything_and_agrees(tmp_path):
    pkg = make_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    cold = run_lint([str(pkg)], cache_path=cache_path)
    warm = run_lint([str(pkg)], cache_path=cache_path)
    assert cold.cache_stats.misses == cold.files == 2
    assert warm.cache_stats.hits == warm.files == 2
    assert warm.cache_stats.misses == 0
    assert warm.violations == cold.violations
    assert [v.rule_id for v in warm.violations] == ["RL004"]


def test_editing_one_file_invalidates_only_it(tmp_path):
    pkg = make_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    run_lint([str(pkg)], cache_path=cache_path)
    (pkg / "clean.py").write_text("def g():\n    return 2\n")
    run2 = run_lint([str(pkg)], cache_path=cache_path)
    assert run2.cache_stats.hits == 1
    assert run2.cache_stats.misses == 1


def test_select_and_config_do_not_touch_the_cache(tmp_path):
    # Filtering is downstream of the cache: a --select run after a full
    # run still hits (cached entries hold unfiltered results).
    pkg = make_tree(tmp_path)
    cache_path = str(tmp_path / "cache.json")
    run_lint([str(pkg)], cache_path=cache_path)
    narrowed = run_lint([str(pkg)], cache_path=cache_path, select=["RL001"])
    assert narrowed.cache_stats.hits == 2
    assert narrowed.violations == []


def test_no_cache_path_runs_cold_and_writes_nothing(tmp_path):
    pkg = make_tree(tmp_path)
    run = run_lint([str(pkg)])
    assert run.cache_stats is None
    assert list(tmp_path.glob("*.json")) == []


# ----------------------------------------------------------------------
# The performance gates (generous absolute bounds; CI re-checks)
# ----------------------------------------------------------------------


def test_cold_and_warm_runs_meet_the_time_gates(tmp_path):
    config = load_config(REPO_ROOT)
    paths = [os.path.join(REPO_ROOT, p) for p in ("src", "benchmarks", "examples")]
    cache_path = str(tmp_path / "cache.json")

    start = time.perf_counter()
    cold = run_lint(paths, config=config, cache_path=cache_path)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_lint(paths, config=config, cache_path=cache_path)
    warm_s = time.perf_counter() - start

    assert cold.violations == [] and warm.violations == []
    assert warm.cache_stats.hits == warm.files
    assert warm.cache_stats.misses == 0
    assert cold_s < 10.0, f"cold lint took {cold_s:.2f}s (gate: 10s)"
    assert warm_s < 2.0, f"warm lint took {warm_s:.2f}s (gate: 2s)"
    assert warm_s <= cold_s
