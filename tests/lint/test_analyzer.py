"""Analyzer-level behaviour: repo cleanliness, suppressions, config,
and the violation the linter was built to catch (RL001 in astar.py)."""

import os
import textwrap

import pytest

from repro.lint import (
    META_RULE_ID,
    all_rules,
    check_paths,
    check_source,
    load_config,
)
from repro.lint.config import config_from_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def lint(snippet, **kwargs):
    return check_source(textwrap.dedent(snippet), path="snippet.py", **kwargs)


# ----------------------------------------------------------------------
# The gate itself: the repo is clean under its own config
# ----------------------------------------------------------------------


def test_repo_source_tree_is_clean():
    config = load_config(REPO_ROOT)
    violations = check_paths([SRC], config=config)
    assert violations == [], "\n".join(v.format() for v in violations)


def test_astar_regression_would_be_caught():
    """Re-introducing the pre-PR dijkstra import in astar.py must fail
    the lint gate with RL001 (the acceptance criterion's revert check)."""
    astar = os.path.join(SRC, "repro", "network", "astar.py")
    with open(astar, "r", encoding="utf-8") as handle:
        source = handle.read()
    assert "from .dijkstra import" not in source
    regressed = source.replace(
        "from .engine import engine_for",
        "from .dijkstra import shortest_path_costs\nfrom .engine import engine_for",
    )
    config = load_config(REPO_ROOT)
    violations = check_source(regressed, path=astar, config=config)
    assert [v.rule_id for v in violations] == ["RL001"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_line_suppression_is_honored():
    flagged = "for node in set(path):\n    print(node)\n"
    suppressed = (
        "for node in set(path):  # reprolint: disable=RL003\n    print(node)\n"
    )
    assert [v.rule_id for v in check_source(flagged)] == ["RL003"]
    assert check_source(suppressed) == []


def test_line_suppression_only_covers_its_line():
    snippet = """
        a = cost == 0.0  # reprolint: disable=RL004
        b = cost == 0.0
    """
    violations = lint(snippet)
    assert [v.rule_id for v in violations] == ["RL004"]
    assert violations[0].line == 3


def test_file_suppression_covers_the_whole_file():
    snippet = """
        # reprolint: disable-file=RL004
        a = cost == 0.0
        b = cost != 1.5
    """
    assert lint(snippet) == []


def test_suppression_of_one_rule_keeps_others():
    snippet = """
        def f(xs=[]):  # reprolint: disable=RL005
            return xs == 0.0
    """
    # RL005 silenced; the RL004 on the return line still fires... but it
    # is on a different line, so no interaction either way.
    assert [v.rule_id for v in lint(snippet)] == ["RL004"]


def test_unknown_rule_id_in_suppression_is_reported():
    snippet = "x = 1  # reprolint: disable=RL999\n"
    violations = check_source(snippet)
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "RL999" in violations[0].message


def test_meta_rule_cannot_be_suppressed():
    snippet = "x = 1  # reprolint: disable=RL999,RL000\n"
    violations = check_source(snippet)
    # The unknown-id diagnostic survives its own suppression attempt.
    assert [v.rule_id for v in violations] == [META_RULE_ID]


def test_syntax_error_is_a_meta_violation():
    violations = check_source("def broken(:\n")
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "syntax error" in violations[0].message


# ----------------------------------------------------------------------
# Config: disable, excludes, per-rule excludes
# ----------------------------------------------------------------------


def test_config_disable_turns_a_rule_off():
    config = config_from_table({"disable": ["RL004"]})
    assert check_source("x = cost == 0.0\n", config=config) == []


def test_config_rule_excludes_are_path_scoped():
    config = config_from_table(
        {"rule-excludes": {"RL001": ["src/repro/network/engine.py"]}}
    )
    bad = "from repro.network.dijkstra import shortest_path_costs\n"
    assert (
        check_source(bad, path="src/repro/network/engine.py", config=config) == []
    )
    assert [
        v.rule_id
        for v in check_source(bad, path="src/repro/core/ebrr.py", config=config)
    ] == ["RL001"]


def test_config_global_exclude_skips_files():
    config = config_from_table({"exclude": ["tests/*"]})
    assert config.path_excluded("tests/test_foo.py")
    assert not config.path_excluded("src/repro/cli.py")


def test_select_restricts_rules():
    snippet = "def f(xs=[]):\n    return xs == 0.0\n"
    assert [v.rule_id for v in check_source(snippet, select=["RL005"])] == ["RL005"]


def test_registry_is_complete():
    assert sorted(all_rules()) == [
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
        "RL008",
        "RL009",
        "RL010",
        "RL011",
        "RL012",
    ]
    for rule_cls in all_rules().values():
        assert rule_cls.title and rule_cls.rationale


def test_violations_are_sorted_and_formatted():
    snippet = """
        import time

        def f(xs=[]):
            return time.time() if xs == 0.0 else 0
    """
    violations = lint(snippet)
    assert violations == sorted(violations)
    for violation in violations:
        assert violation.format().startswith("snippet.py:")


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        check_paths(["no/such/dir"])
