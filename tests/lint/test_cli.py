"""CLI surfaces: ``python -m repro.lint``, ``repro lint``, reporters,
and exit codes."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main
from repro.lint.report import render
from repro.lint.violations import Violation

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.mark.examples
def test_python_dash_m_repro_lint_src_exits_zero():
    """The CI gate verbatim: ``python -m repro.lint src`` is clean."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_lint_main_clean_repo_in_process(capsys):
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        code = lint_main(["src"])
    finally:
        os.chdir(cwd)
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_lint_main_reports_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("from repro.network.dijkstra import shortest_path\n")
    code = lint_main([str(bad), "--no-config"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL001" in out


def test_lint_main_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = cost == 0.0\n")
    code = lint_main([str(bad), "--no-config", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    assert payload["by_rule"] == {"RL004": 1}
    assert payload["violations"][0]["line"] == 1


def test_lint_main_github_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("from time import time\n")
    code = lint_main([str(bad), "--no-config", "--format", "github"])
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("::error file=")
    assert "title=reprolint RL006" in out


def test_lint_main_exit_codes(tmp_path, capsys):
    assert lint_main(["--list-rules"]) == 0
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert lint_main(["--select", "RL999", str(tmp_path)]) == 2
    capsys.readouterr()


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("from repro.network.engine import engine_for\n")
    assert repro_main(["lint", str(good), "--no-config"]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.network.dijkstra\n")
    assert repro_main(["lint", str(bad), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out


def test_repro_cli_lint_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]:
        assert rule_id in out


def test_render_unknown_format_raises():
    violation = Violation("f.py", 1, 0, "RL001", "msg")
    with pytest.raises(KeyError):
        render([violation], "xml")


# ----------------------------------------------------------------------
# Cache flags
# ----------------------------------------------------------------------


def test_cache_flag_reports_hits_on_the_second_run(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    args = [str(target), "--no-config", "--cache", str(cache)]
    assert lint_main(args) == 0
    first = capsys.readouterr().err
    assert "cache 0 hit(s), 1 miss(es)" in first
    assert cache.exists()
    assert lint_main(args) == 0
    second = capsys.readouterr().err
    assert "cache 1 hit(s), 0 miss(es)" in second


def test_no_cache_flag_writes_nothing(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    assert lint_main([str(target), "--no-config", "--no-cache"]) == 0
    assert "cache" not in capsys.readouterr().err
    assert list(tmp_path.glob("*.json")) == []


# ----------------------------------------------------------------------
# Baseline ratchet flags
# ----------------------------------------------------------------------


def test_write_then_check_baseline_cycle(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = cost == 0.0\n")
    baseline = tmp_path / "baseline.json"
    common = ["--no-config", "--no-cache"]

    # Record current debt: one RL004.
    assert lint_main([str(bad), *common, "--write-baseline", str(baseline)]) == 0
    assert "baseline written" in capsys.readouterr().err
    payload = json.loads(baseline.read_text())
    assert payload["violations"] == {"RL004": 1}

    # At the baseline: the same violation is tolerated, exit 0.
    assert lint_main([str(bad), *common, "--baseline", str(baseline)]) == 0
    assert "ratchet ok" in capsys.readouterr().err

    # Growth: a second violation fails the ratchet.
    bad.write_text("x = cost == 0.0\ny = cost == 1.0\n")
    assert lint_main([str(bad), *common, "--baseline", str(baseline)]) == 1
    assert "ratchet FAILED" in capsys.readouterr().err

    # Shrink: clean file passes and reports slack to re-ratchet.
    bad.write_text("x = 1\n")
    assert lint_main([str(bad), *common, "--baseline", str(baseline)]) == 0
    assert "ratchet slack" in capsys.readouterr().err


def test_new_suppression_fails_the_ratchet(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = cost == 0.0\n")
    baseline = tmp_path / "baseline.json"
    common = ["--no-config", "--no-cache"]
    assert lint_main([str(bad), *common, "--write-baseline", str(baseline)]) == 0
    bad.write_text("x = cost == 0.0  # reprolint: disable=RL004\n")
    assert lint_main([str(bad), *common, "--baseline", str(baseline)]) == 1
    err = capsys.readouterr().err
    assert "suppression" in err and "ratchet FAILED" in err


def test_unreadable_baseline_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    broken = tmp_path / "baseline.json"
    broken.write_text("{not json")
    code = lint_main(
        [str(target), "--no-config", "--no-cache", "--baseline", str(broken)]
    )
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_repo_baseline_file_matches_the_tree():
    """The committed lint-baseline.json is in sync: `repro lint
    --baseline` over the configured include paths exits 0."""
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        code = lint_main(["--baseline", "lint-baseline.json", "--no-cache"])
    finally:
        os.chdir(cwd)
    assert code == 0


def test_repro_cli_forwards_ratchet_and_cache_flags(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = cost == 0.0\n")
    baseline = tmp_path / "baseline.json"
    cache = tmp_path / "cache.json"
    assert repro_main(
        ["lint", str(bad), "--no-config", "--cache", str(cache),
         "--write-baseline", str(baseline)]
    ) == 0
    assert baseline.exists() and cache.exists()
    assert repro_main(
        ["lint", str(bad), "--no-config", "--no-cache",
         "--baseline", str(baseline)]
    ) == 0
    assert "ratchet ok" in capsys.readouterr().err


def test_list_rules_labels_scopes(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RL010" in out and "[cross-module]" in out
    assert "RL001" in out and "[per-file]" in out
