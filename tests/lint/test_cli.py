"""CLI surfaces: ``python -m repro.lint``, ``repro lint``, reporters,
and exit codes."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main
from repro.lint.report import render
from repro.lint.violations import Violation

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.mark.examples
def test_python_dash_m_repro_lint_src_exits_zero():
    """The CI gate verbatim: ``python -m repro.lint src`` is clean."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_lint_main_clean_repo_in_process(capsys):
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        code = lint_main(["src"])
    finally:
        os.chdir(cwd)
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_lint_main_reports_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("from repro.network.dijkstra import shortest_path\n")
    code = lint_main([str(bad), "--no-config"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL001" in out


def test_lint_main_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = cost == 0.0\n")
    code = lint_main([str(bad), "--no-config", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    assert payload["by_rule"] == {"RL004": 1}
    assert payload["violations"][0]["line"] == 1


def test_lint_main_github_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("from time import time\n")
    code = lint_main([str(bad), "--no-config", "--format", "github"])
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("::error file=")
    assert "title=reprolint RL006" in out


def test_lint_main_exit_codes(tmp_path, capsys):
    assert lint_main(["--list-rules"]) == 0
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert lint_main(["--select", "RL999", str(tmp_path)]) == 2
    capsys.readouterr()


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("from repro.network.engine import engine_for\n")
    assert repro_main(["lint", str(good), "--no-config"]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.network.dijkstra\n")
    assert repro_main(["lint", str(bad), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out


def test_repro_cli_lint_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]:
        assert rule_id in out


def test_render_unknown_format_raises():
    violation = Violation("f.py", 1, 0, "RL001", "msg")
    with pytest.raises(KeyError):
        render([violation], "xml")
