"""RL000 unused-suppression warnings: a ``# reprolint: disable=`` whose
rule no longer fires is itself reported, so stale pragmas cannot
accumulate and quietly widen the gate."""

import textwrap

from repro.lint import META_RULE_ID, check_source
from repro.lint.config import config_from_table


def lint(snippet, **kwargs):
    return check_source(textwrap.dedent(snippet), path="src/repro/snippet.py", **kwargs)


def test_unused_line_suppression_is_flagged():
    violations = lint("x = 1  # reprolint: disable=RL004\n")
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "unused suppression" in violations[0].message
    assert "RL004" in violations[0].message
    assert "on this line" in violations[0].message


def test_used_line_suppression_is_silent():
    assert lint("x = cost == 0.0  # reprolint: disable=RL004\n") == []


def test_unused_file_suppression_is_flagged():
    violations = lint(
        """
        # reprolint: disable-file=RL004
        x = 1
    """
    )
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "anywhere in this file" in violations[0].message


def test_used_file_suppression_is_silent():
    violations = lint(
        """
        # reprolint: disable-file=RL004
        x = cost == 0.0
    """
    )
    assert violations == []


def test_mixed_directive_flags_only_the_stale_id():
    # RL004 fires on the line; RL005 does not — only RL005 is stale.
    violations = lint(
        "x = cost == 0.0  # reprolint: disable=RL004,RL005\n"
    )
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "RL005" in violations[0].message


def test_config_disabled_rule_makes_the_pragma_unjudgeable():
    # With the rule off, no violation can fire, so the pragma is not
    # reported as stale (it documents intent for when the rule is on).
    config = config_from_table({"disable": ["RL004"]})
    assert lint("x = 1  # reprolint: disable=RL004\n", config=config) == []


def test_rule_exclude_path_makes_the_pragma_unjudgeable():
    config = config_from_table(
        {"rule-excludes": {"RL004": ["src/repro/snippet.py"]}}
    )
    assert lint("x = 1  # reprolint: disable=RL004\n", config=config) == []


def test_select_narrowing_skips_unused_detection_for_other_rules():
    violations = lint(
        "x = 1  # reprolint: disable=RL004\n", select=["RL001"]
    )
    assert violations == []


def test_parse_failure_keeps_pragmas_unjudged():
    violations = lint(
        """
        x = 1  # reprolint: disable=RL004
        def broken(:
    """
    )
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "syntax error" in violations[0].message


def test_suppressed_project_rule_violation_counts_as_used():
    snippet = """
        def relax_all(csr, dist):
            for i in range(csr.indptr[0], csr.indptr[1]):  # reprolint: disable=RL012
                dist[i] = csr.costs[i]
    """
    assert lint(snippet) == []
