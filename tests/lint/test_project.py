"""The facts pass, the project model, and the call graph — the
substrate the cross-module rules (RL010–RL012) query."""

import ast
import textwrap

from repro.lint import module_name_for
from repro.lint.callgraph import CallGraph
from repro.lint.project import (
    ProjectModel,
    extract_facts,
    facts_from_dict,
    loop_signal,
)


def facts(source, path="src/repro/mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_facts(path, tree)


def model_of(sources):
    return ProjectModel(
        facts(src, path=path) for path, src in sources.items()
    )


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------


def test_module_name_for_maps_src_layout():
    assert module_name_for("src/repro/parallel/fanout.py") == "repro.parallel.fanout"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("src/repro/core/ebrr.py") == "repro.core.ebrr"


def test_module_name_for_falls_back_to_stem():
    assert module_name_for("benchmarks/bench_fullscale.py") == "bench_fullscale"
    assert module_name_for("snippet.py") == "snippet"


# ----------------------------------------------------------------------
# Facts: imports, functions, spans, engines, globals
# ----------------------------------------------------------------------


def test_imports_and_pool_detection():
    collected = facts(
        """
        import multiprocessing
        from repro.core.ebrr import plan_route as plan
        """
    )
    assert ("multiprocessing", "multiprocessing") in collected.imports
    assert ("plan", "repro.core.ebrr.plan_route") in collected.imports
    assert collected.imports_pools


def test_relative_imports_resolve_against_the_module():
    collected = facts(
        "from ..network.engine import engine_for\n",
        path="src/repro/core/ebrr.py",
    )
    assert ("engine_for", "repro.network.engine.engine_for") in collected.imports


def test_function_facts_shape():
    collected = facts(
        """
        def plan_stuff():
            def inner():
                pass
            return inner

        def _private():
            pass

        class Planner:
            def method(self):
                pass
        """
    )
    by_name = {f.qname: f for f in collected.functions}
    top = by_name["repro.mod.plan_stuff"]
    assert top.is_public and not top.nested and not top.is_method
    inner = by_name["repro.mod.plan_stuff.inner"]
    assert inner.nested and not inner.is_public
    assert not by_name["repro.mod._private"].is_public
    method = by_name["repro.mod.Planner.method"]
    assert method.is_method and not method.is_public
    assert collected.classes == ["Planner"]


def test_span_detection_with_and_decorator_and_begin():
    collected = facts(
        """
        from repro.obs import span, traced

        def direct():
            with span("phase"):
                pass

        @traced("phase")
        def decorated():
            pass

        def via_trace(trace):
            with trace.begin("phase"):
                pass

        def bare():
            pass
        """
    )
    spans = {f.name: f.has_span for f in collected.functions}
    assert spans == {
        "direct": True,
        "decorated": True,
        "via_trace": True,
        "bare": False,
    }


def test_engine_locals_from_constructor_and_annotation():
    collected = facts(
        """
        from repro.network.engine import SearchEngine, engine_for

        def builds(network):
            engine = SearchEngine(network)
            shared = engine_for(network)
            other = len(network)
            return engine, shared, other

        def annotated(engine: SearchEngine):
            return engine
        """
    )
    by_name = {f.name: f for f in collected.functions}
    assert sorted(by_name["builds"].engine_locals) == ["engine", "shared"]
    assert by_name["annotated"].engine_locals == ["engine"]


def test_global_writes_recorded():
    collected = facts(
        """
        _STATE = None

        def installer(value):
            global _STATE
            _STATE = value

        def reader():
            return _STATE
        """
    )
    by_name = {f.name: f for f in collected.functions}
    assert by_name["installer"].global_writes == ["_STATE"]
    assert by_name["reader"].global_writes == []


def test_calls_record_dotted_names():
    collected = facts(
        """
        from repro.core import ebrr

        def driver(instance, config):
            return ebrr.plan_route(instance, config)
        """
    )
    driver = collected.functions[0]
    assert ("ebrr.plan_route", 5) in driver.calls


# ----------------------------------------------------------------------
# Facts: loops and submissions
# ----------------------------------------------------------------------


def test_loop_signal_thresholds():
    assert loop_signal({"indptr"})            # strong attr alone
    assert loop_signal({"_adj"})
    assert loop_signal({"targets", "costs"})  # two weak attrs together
    assert not loop_signal({"targets"})       # weak alone: everyday name
    assert not loop_signal({"costs"})
    assert not loop_signal(set())


def test_only_innermost_offending_loop_recorded():
    collected = facts(
        """
        def search(csr, heap):
            while heap:
                u = heap.pop()
                for i in range(csr.indptr[u], csr.indptr[u + 1]):
                    relax(csr.targets[i], csr.costs[i])
        """
    )
    assert len(collected.loops) == 1
    loop = collected.loops[0]
    assert loop.kind == "for"
    assert "indptr" in loop.touches
    assert loop.in_function == "repro.mod.search"


def test_loop_without_csr_touches_not_recorded():
    collected = facts(
        """
        def harmless(rows):
            for row in rows:
                print(row)
        """
    )
    assert collected.loops == []


def test_submissions_task_and_initializer():
    collected = facts(
        """
        import multiprocessing

        def fan(network, chunks):
            with multiprocessing.Pool(
                processes=4, initializer=_init, initargs=(network,)
            ) as pool:
                return pool.map(_task, chunks)
        """
    )
    kinds = sorted((s.kind, s.callee_kind, s.callee) for s in collected.submissions)
    assert kinds == [
        ("initializer", "name", "_init"),
        ("task", "name", "_task"),
    ]
    task = next(s for s in collected.submissions if s.kind == "task")
    assert task.in_function == "repro.mod.fan"
    assert "chunks" in task.arg_names


def test_facts_round_trip_through_dict():
    collected = facts(
        """
        import multiprocessing
        from repro.network.engine import SearchEngine

        def fan(network, chunks, engine: SearchEngine):
            global _X
            _X = 1
            with multiprocessing.Pool(initializer=_init, initargs=(engine,)) as p:
                for i in range(network.indptr[0], network.indptr[1]):
                    p.map(_task, chunks)
        """
    )
    assert facts_from_dict(collected.as_dict()) == collected


# ----------------------------------------------------------------------
# Model resolution and the call graph
# ----------------------------------------------------------------------


TWO_MODULES = {
    "src/repro/core/phase.py": """
        from repro.obs import span

        def run_phase(instance):
            with span("phase"):
                return helper(instance)

        def helper(instance):
            return instance
    """,
    "src/repro/core/driver.py": """
        from repro.core.phase import run_phase

        def plan_all(instances):
            return [run_phase(i) for i in instances]
    """,
}


def test_resolve_through_imports_and_locals():
    model = model_of({p: textwrap.dedent(s) for p, s in TWO_MODULES.items()})
    assert (
        model.resolve("repro.core.driver", "run_phase")
        == "repro.core.phase.run_phase"
    )
    assert (
        model.resolve("repro.core.phase", "helper") == "repro.core.phase.helper"
    )
    assert model.resolve("repro.core.driver", "np.zeros") is None
    assert model.module_of("repro.core.phase.helper") == "repro.core.phase"


def test_callgraph_edges_and_reachability():
    model = model_of({p: textwrap.dedent(s) for p, s in TWO_MODULES.items()})
    graph = CallGraph(model)
    assert graph.callees("repro.core.driver.plan_all") == [
        "repro.core.phase.run_phase"
    ]
    assert graph.callers("repro.core.phase.helper") == [
        "repro.core.phase.run_phase"
    ]
    reached = graph.reachable_from(["repro.core.driver.plan_all"])
    assert "repro.core.phase.helper" in reached
    # Transitive span coverage: the driver reaches a span-opening callee.
    assert graph.reaches(
        "repro.core.driver.plan_all", lambda f: f.has_span
    )
    assert not graph.reaches(
        "repro.core.phase.helper", lambda f: f.has_span
    )
