"""Unit tests for the synthetic city generators."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network.generators import (
    _MAX_SEGMENT_KM,
    grid_city,
    radial_city,
    sprawl_city,
)
from repro.network.geometry import bounding_box


def _max_edge(network):
    return max(cost for _, _, cost in network.edges())


def _check_euclidean_lower_bound(network):
    """All generators must keep edge cost >= Euclidean gap (the lower
    bound Algorithm 4 relies on)."""
    for u, v, cost in network.edges():
        assert cost >= network.euclidean_distance(u, v) - 1e-9


class TestGridCity:
    def test_connected_and_sized(self):
        network = grid_city(12, 12, seed=1)
        assert network.is_connected()
        assert network.num_nodes > 100
        assert network.num_edges >= network.num_nodes - 1

    def test_deterministic_per_seed(self):
        a = grid_city(8, 8, seed=5)
        b = grid_city(8, 8, seed=5)
        assert a.num_nodes == b.num_nodes
        assert sorted(a.edges()) == sorted(b.edges())
        c = grid_city(8, 8, seed=6)
        assert sorted(a.edges()) != sorted(c.edges())

    def test_coastline_cuts_east_side(self):
        full = grid_city(10, 10, seed=2, removal_fraction=0.0)
        cut = grid_city(10, 10, seed=2, removal_fraction=0.0, coastline=0.6)
        assert cut.num_nodes < full.num_nodes
        _, _, max_x_cut, _ = bounding_box(cut.coordinates())
        _, _, max_x_full, _ = bounding_box(full.coordinates())
        assert max_x_cut < max_x_full

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            grid_city(1, 5)

    def test_edge_costs_bound_euclidean(self):
        _check_euclidean_lower_bound(grid_city(8, 8, seed=3))

    def test_no_overlong_edges(self):
        network = grid_city(8, 8, seed=3, block_km=2.0)
        assert _max_edge(network) <= _MAX_SEGMENT_KM * 1.3 + 1e-9


class TestRadialCity:
    def test_connected_across_boroughs(self):
        network = radial_city(num_boroughs=4, nodes_per_borough=80, seed=1)
        assert network.is_connected()
        assert network.num_nodes >= 4 * 80  # bridges may add subdivisions

    def test_bridges_subdivided(self):
        network = radial_city(num_boroughs=3, nodes_per_borough=60, seed=2)
        assert _max_edge(network) <= _MAX_SEGMENT_KM + 1e-9

    def test_minimum_boroughs(self):
        with pytest.raises(GraphError):
            radial_city(num_boroughs=1)

    def test_euclidean_lower_bound(self):
        _check_euclidean_lower_bound(
            radial_city(num_boroughs=3, nodes_per_borough=50, seed=3)
        )


class TestSprawlCity:
    def test_connected(self):
        network = sprawl_city(num_nodes=300, seed=1)
        assert network.is_connected()
        assert network.num_nodes >= 200  # largest component dominates

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            sprawl_city(num_nodes=5)

    def test_deterministic(self):
        a = sprawl_city(num_nodes=200, seed=9)
        b = sprawl_city(num_nodes=200, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_euclidean_lower_bound(self):
        _check_euclidean_lower_bound(sprawl_city(num_nodes=200, seed=4))

    def test_extent_respected(self):
        network = sprawl_city(num_nodes=200, extent_km=10.0, seed=5)
        min_x, min_y, max_x, max_y = bounding_box(network.coordinates())
        assert min_x >= -1e-9 and min_y >= -1e-9
        assert max_x <= 10.0 + 1e-9 and max_y <= 10.0 + 1e-9
