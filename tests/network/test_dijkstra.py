"""Unit tests for the Dijkstra search family, including the paper's
worked distances on the Figure 2 network."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network.dijkstra import (
    IncrementalNearestDistance,
    distance_between,
    multi_source_costs,
    query_preprocessing_search,
    search_to_nearest,
    shortest_path,
    shortest_path_costs,
)

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


class TestShortestPathCosts:
    def test_paper_distances(self, toy_network):
        dist = shortest_path_costs(toy_network, V6)
        # Example 2 / 3 / 7 worked values
        assert dist[V3] == pytest.approx(3.0)
        assert dist[V2] == pytest.approx(7.0)
        assert dist[V4] == pytest.approx(7.0)
        assert dist[V7] == pytest.approx(4.0)
        assert dist[V1] == pytest.approx(11.0)

    def test_source_distance_zero(self, toy_network):
        assert shortest_path_costs(toy_network, V1)[V1] == 0.0

    def test_max_cost_truncation(self, toy_network):
        dist = shortest_path_costs(toy_network, V1, max_cost=8.0)
        assert dist[V3] == pytest.approx(8.0)
        assert math.isinf(dist[V4])
        assert math.isinf(dist[V5])

    def test_line_network_costs(self, line_network):
        dist = shortest_path_costs(line_network, 0)
        assert dist == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestShortestPath:
    def test_path_and_cost(self, toy_network):
        path, cost = shortest_path(toy_network, V1, V4)
        assert path == [V1, V2, V3, V4]
        assert cost == pytest.approx(12.0)

    def test_trivial_path(self, toy_network):
        path, cost = shortest_path(toy_network, V3, V3)
        assert path == [V3]
        assert cost == 0.0

    def test_path_cost_matches_costs_array(self, grid_network):
        costs = shortest_path_costs(grid_network, 0)
        for target in (7, 23, 35):
            path, cost = shortest_path(grid_network, 0, target)
            assert cost == pytest.approx(costs[target])
            assert grid_network.path_cost(path) == pytest.approx(cost)

    def test_unreachable_raises(self):
        from repro.network.graph import RoadNetwork

        network = RoadNetwork(
            [(0, 0), (1, 0), (9, 9)], [(0, 1, 1.0)], validate_connected=False
        )
        with pytest.raises(GraphError, match="unreachable"):
            shortest_path(network, 0, 2)


class TestDistanceBetween:
    def test_matches_full_search(self, toy_network):
        full = shortest_path_costs(toy_network, V8)
        for target in range(8):
            assert distance_between(toy_network, V8, target) == pytest.approx(
                full[target]
            )

    def test_same_node(self, toy_network):
        assert distance_between(toy_network, V5, V5) == 0.0

    def test_upper_bound_cutoff(self, toy_network):
        assert math.isinf(
            distance_between(toy_network, V1, V5, upper_bound=10.0)
        )
        assert distance_between(toy_network, V1, V5, upper_bound=20.0) == (
            pytest.approx(16.0)
        )


class TestSearchToNearest:
    def test_finds_nearest_target(self, toy_network):
        node, dist = search_to_nearest(toy_network, V6, lambda v: v in (V1, V2))
        assert node == V2
        assert dist == pytest.approx(7.0)

    def test_source_is_target(self, toy_network):
        node, dist = search_to_nearest(toy_network, V2, lambda v: v == V2)
        assert node == V2
        assert dist == 0.0

    def test_no_target_raises(self, toy_network):
        with pytest.raises(GraphError, match="no target"):
            search_to_nearest(toy_network, V1, lambda v: False)


class TestQueryPreprocessingSearch:
    def _masks(self, toy_network):
        is_existing = [False] * 8
        is_existing[V1] = is_existing[V2] = True
        is_candidate = [False] * 8
        for v in (V3, V4, V5):
            is_candidate[v] = True
        return is_existing, is_candidate

    def test_example7_search_from_v6(self, toy_network):
        """Example 7: from v6 the search finds RNN entry (v3, 3), then
        nn(v6) = v2 at distance 7."""
        is_existing, is_candidate = self._masks(toy_network)
        nn, dist, visited = query_preprocessing_search(
            toy_network, V6, is_existing, is_candidate
        )
        assert nn == V2
        assert dist == pytest.approx(7.0)
        assert visited == [(V3, pytest.approx(3.0))]

    def test_search_from_v7_collects_three_candidates(self, toy_network):
        is_existing, is_candidate = self._masks(toy_network)
        nn, dist, visited = query_preprocessing_search(
            toy_network, V7, is_existing, is_candidate
        )
        assert nn == V2
        assert dist == pytest.approx(11.0)
        assert dict(visited) == {
            V4: pytest.approx(3.0),
            V3: pytest.approx(7.0),
            V5: pytest.approx(7.0),
        }

    def test_query_on_existing_stop(self, toy_network):
        is_existing, is_candidate = self._masks(toy_network)
        nn, dist, visited = query_preprocessing_search(
            toy_network, V1, is_existing, is_candidate
        )
        assert nn == V1
        assert dist == 0.0
        assert visited == []

    def test_no_existing_stop_raises(self, toy_network):
        is_candidate = [False] * 8
        with pytest.raises(GraphError, match="no existing bus stop"):
            query_preprocessing_search(
                toy_network, V1, [False] * 8, is_candidate
            )


class TestMultiSource:
    def test_multi_source_is_min_of_singles(self, toy_network):
        sources = [V1, V7]
        combined = multi_source_costs(toy_network, sources)
        singles = [shortest_path_costs(toy_network, s) for s in sources]
        for v in range(8):
            assert combined[v] == pytest.approx(min(s[v] for s in singles))

    def test_max_cost(self, toy_network):
        dist = multi_source_costs(toy_network, [V1], max_cost=4.0)
        assert dist[V2] == pytest.approx(4.0)
        assert math.isinf(dist[V3])

    def test_duplicate_sources(self, toy_network):
        dist = multi_source_costs(toy_network, [V1, V1, V1])
        assert dist[V1] == 0.0


class TestIncrementalNearest:
    def test_matches_multi_source_after_each_add(self, toy_network):
        incremental = IncrementalNearestDistance(toy_network)
        added = []
        for source in (V5, V1, V6):
            incremental.add_source(source)
            added.append(source)
            expected = multi_source_costs(toy_network, added)
            for v in range(8):
                assert incremental.distance[v] == pytest.approx(expected[v])

    def test_improved_nodes_reported(self, line_network):
        incremental = IncrementalNearestDistance(line_network)
        first = incremental.add_source(0)
        assert sorted(first) == [0, 1, 2, 3, 4, 5]
        second = incremental.add_source(5)
        # Only the right half improves (distances 2,1,0 beat 3,4,5).
        assert sorted(second) == [3, 4, 5]

    def test_duplicate_source_is_noop(self, toy_network):
        incremental = IncrementalNearestDistance(toy_network)
        incremental.add_source(V1)
        before = list(incremental.distance)
        assert incremental.add_source(V1) == []
        assert incremental.distance == before

    def test_sources_property(self, toy_network):
        incremental = IncrementalNearestDistance(toy_network)
        incremental.add_source(V2)
        incremental.add_source(V4)
        assert incremental.sources == [V2, V4]

    def test_getitem(self, toy_network):
        incremental = IncrementalNearestDistance(toy_network)
        incremental.add_source(V1)
        assert incremental[V2] == pytest.approx(4.0)
