"""Unit tests for Contraction Hierarchies, cross-checked vs Dijkstra."""

import math

import pytest

from repro.exceptions import ConfigurationError, GraphError
from repro.network.contraction import ContractionHierarchy
from repro.network.dijkstra import shortest_path_costs

from ..conftest import V1, V5


class TestCorrectness:
    def test_exact_on_toy(self, toy_network):
        ch = ContractionHierarchy(toy_network)
        for source in range(8):
            costs = shortest_path_costs(toy_network, source)
            for target in range(8):
                assert ch.distance(source, target) == pytest.approx(
                    costs[target]
                ), f"{source}->{target}"

    def test_exact_on_grid(self, grid_network):
        ch = ContractionHierarchy(grid_network)
        for source in (0, 14, 35):
            costs = shortest_path_costs(grid_network, source)
            for target in range(grid_network.num_nodes):
                assert ch.distance(source, target) == pytest.approx(
                    costs[target]
                )

    def test_exact_on_generated_city(self):
        from repro.network.generators import sprawl_city

        network = sprawl_city(num_nodes=150, seed=3)
        ch = ContractionHierarchy(network)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(25):
            s = int(rng.integers(0, network.num_nodes))
            costs = shortest_path_costs(network, s)
            t = int(rng.integers(0, network.num_nodes))
            assert ch.distance(s, t) == pytest.approx(costs[t])

    def test_same_node(self, toy_network):
        ch = ContractionHierarchy(toy_network)
        assert ch.distance(3, 3) == 0.0

    def test_disconnected_returns_inf(self):
        from repro.network.graph import RoadNetwork

        network = RoadNetwork(
            [(0, 0), (1, 0), (9, 9), (10, 9)],
            [(0, 1, 1.0), (2, 3, 1.0)],
            validate_connected=False,
        )
        ch = ContractionHierarchy(network)
        assert math.isinf(ch.distance(0, 2))
        assert ch.distance(2, 3) == pytest.approx(1.0)

    def test_out_of_range_rejected(self, toy_network):
        ch = ContractionHierarchy(toy_network)
        with pytest.raises(GraphError):
            ch.distance(0, 99)

    def test_batched_one_to_many(self, grid_network):
        ch = ContractionHierarchy(grid_network)
        targets = [0, 7, 21, 35]
        batched = ch.distances_from(14, targets)
        costs = shortest_path_costs(grid_network, 14)
        for target, got in zip(targets, batched):
            assert got == pytest.approx(costs[target])


class TestStructure:
    def test_ranks_are_a_permutation(self, grid_network):
        ch = ContractionHierarchy(grid_network)
        assert sorted(ch.rank) == list(range(grid_network.num_nodes))

    def test_upward_edges_point_upward(self, grid_network):
        ch = ContractionHierarchy(grid_network)
        for u in range(grid_network.num_nodes):
            for v, _ in ch._up[u]:
                assert ch.rank[v] > ch.rank[u]

    def test_search_space_smaller_than_graph(self):
        from repro.network.generators import grid_city

        network = grid_city(15, 15, seed=2)
        ch = ContractionHierarchy(network)
        sizes = [ch.search_space_size(v) for v in range(0, network.num_nodes, 17)]
        assert max(sizes) < network.num_nodes / 2

    def test_shortcut_count_reasonable(self, grid_network):
        ch = ContractionHierarchy(grid_network)
        # planar-ish graphs stay near-linear in shortcuts
        assert ch.num_shortcuts < 6 * grid_network.num_edges

    def test_invalid_hop_limit(self, toy_network):
        with pytest.raises(ConfigurationError):
            ContractionHierarchy(toy_network, hop_limit=0)
