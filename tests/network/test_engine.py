"""SearchEngine: equivalence with the legacy free functions, caching,
statistics accounting, and invalidation on graph mutation."""

import math

import pytest

from repro.exceptions import ConfigurationError, GraphError
from repro.network.dijkstra import (
    IncrementalNearestDistance,
    distance_between,
    multi_source_costs,
    query_preprocessing_search,
    search_to_nearest,
    shortest_path,
    shortest_path_costs,
)
from repro.network.engine import (
    SearchEngine,
    SearchStats,
    available_kernels,
    engine_for,
    resolve_kernel,
)
from repro.network.generators import grid_city, radial_city, sprawl_city
from repro.network.graph import RoadNetwork


def _cities():
    return [
        grid_city(5, 5, seed=1),
        radial_city(num_boroughs=2, nodes_per_borough=60, seed=2),
        sprawl_city(120, seed=3),
    ]


@pytest.fixture
def network():
    return grid_city(5, 5, seed=7)


@pytest.fixture
def engine(network):
    return SearchEngine(network)


# ----------------------------------------------------------------------
# Equivalence with the legacy free functions
# ----------------------------------------------------------------------


@pytest.mark.parametrize("city_index", [0, 1, 2])
def test_sssp_equals_legacy(city_index):
    network = _cities()[city_index]
    engine = SearchEngine(network)
    for source in (0, network.num_nodes // 2, network.num_nodes - 1):
        assert engine.sssp(source) == shortest_path_costs(network, source)


@pytest.mark.parametrize("city_index", [0, 1, 2])
def test_bounded_sssp_equals_legacy(city_index):
    network = _cities()[city_index]
    engine = SearchEngine(network)
    source = network.num_nodes // 3
    for bound in (0.0, 0.5, 2.0, 10.0):
        assert engine.sssp(source, max_cost=bound) == shortest_path_costs(
            network, source, max_cost=bound
        )


@pytest.mark.parametrize("city_index", [0, 1, 2])
def test_multi_source_equals_legacy(city_index):
    network = _cities()[city_index]
    engine = SearchEngine(network)
    sources = [0, network.num_nodes // 2, network.num_nodes - 1]
    assert engine.multi_source(sources) == multi_source_costs(network, sources)
    assert engine.multi_source(sources, max_cost=1.5) == multi_source_costs(
        network, sources, max_cost=1.5
    )


@pytest.mark.parametrize("city_index", [0, 1, 2])
def test_path_and_distance_equal_legacy(city_index):
    network = _cities()[city_index]
    engine = SearchEngine(network)
    pairs = [(0, network.num_nodes - 1), (1, network.num_nodes // 2)]
    for source, target in pairs:
        legacy_path, legacy_cost = shortest_path(network, source, target)
        got_path, got_cost = engine.path(source, target)
        assert list(got_path) == legacy_path
        assert got_cost == legacy_cost
        assert engine.distance(source, target) == distance_between(
            network, source, target
        )


def test_nearest_equals_legacy(network, engine):
    targets = {3, 11, 17}
    is_target = lambda v: v in targets  # noqa: E731
    for source in (0, 7, 20):
        assert engine.nearest(source, is_target) == search_to_nearest(
            network, source, is_target
        )


def test_query_search_equals_legacy(network, engine):
    n = network.num_nodes
    is_existing = [v % 7 == 0 for v in range(n)]
    is_candidate = [v % 3 == 1 for v in range(n)]
    for query in (2, 9, n - 1):
        assert engine.query_search(query, is_existing, is_candidate) == (
            query_preprocessing_search(network, query, is_existing, is_candidate)
        )


def test_incremental_nearest_equals_legacy(network, engine):
    legacy = IncrementalNearestDistance(network)
    ours = engine.incremental_nearest()
    for source in (4, 18, 9):
        legacy.add_source(source)
        ours.add_source(source)
        assert ours.distance == legacy.distance
    assert list(ours.sources) == list(legacy.sources)


def test_nodes_within_ball_is_correct(network, engine):
    source = 6
    radius = 1.0
    ball = engine.nodes_within(source, radius)
    full = shortest_path_costs(network, source)
    expected = {v for v in network.nodes() if v != source and full[v] <= radius + 1e-9}
    assert {v for v, _ in ball} == expected
    for v, d in ball:
        assert d == full[v]


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------


def test_sssp_row_is_cached(engine):
    first = engine.sssp(0)
    info = engine.cache_info()
    assert info.misses == 1 and info.hits == 0
    second = engine.sssp(0)
    assert second is first
    assert engine.cache_info().hits == 1


def test_bounded_row_derived_from_cached_full_row(engine):
    engine.sssp(0)
    stats_before = engine.total_stats()
    bounded = engine.sssp(0, max_cost=1.0)
    # Deriving the bounded row from the cached full row runs no search.
    assert engine.total_stats().searches == stats_before.searches
    assert engine.cache_info().hits >= 1
    assert all(
        d == math.inf or d <= 1.0 + 1e-9 for d in bounded
    )


def test_lru_eviction_with_tiny_cache(network):
    engine = SearchEngine(network, cache_size=2)
    engine.sssp(0)
    engine.sssp(1)
    engine.sssp(2)  # evicts the row for source 0
    assert engine.cache_info().evictions == 1
    row1 = engine.sssp(1)  # still resident
    hits = engine.cache_info().hits
    assert hits == 1
    engine.sssp(0)  # re-miss after eviction
    assert engine.cache_info().misses == 4


def test_uncached_flag_bypasses_the_store(engine):
    engine.sssp(0, cached=False)
    info = engine.cache_info()
    assert info.rows == 0
    assert info.misses == 0 and info.hits == 0


def test_clear_cache(engine):
    engine.sssp(0)
    engine.path(0, 5)
    assert engine.cache_info().rows >= 1
    engine.clear_cache()
    info = engine.cache_info()
    assert info.rows == 0 and info.points == 0


# ----------------------------------------------------------------------
# Statistics accounting
# ----------------------------------------------------------------------


def test_stats_accumulate_per_phase(engine):
    engine.sssp(0, phase="preprocess")
    engine.sssp(1, phase="selection")
    engine.sssp(1, phase="selection")  # cache hit
    stats = engine.stats
    assert stats["preprocess"].searches == 1
    # The repeated call is served from the cache: it counts as a hit,
    # not as a search actually run.
    assert stats["selection"].searches == 1
    assert stats["selection"].cache_hits == 1
    assert stats["preprocess"].settled > 0
    assert stats["preprocess"].pushes > 0
    total = engine.total_stats()
    assert total.searches == 2
    assert total.cache_hits == 1


def test_truncated_counter_on_bounded_search(engine):
    engine.sssp(0, max_cost=0.3, phase="bounded")
    assert engine.stats["bounded"].truncated > 0


def test_snapshot_delta(engine):
    engine.sssp(0, phase="a")
    base = engine.snapshot()
    engine.sssp(1, phase="b")
    delta = engine.stats_since(base)
    assert "a" not in delta  # no new work in phase a
    assert delta["b"].searches == 1


def test_stats_arithmetic():
    a = SearchStats(searches=2, cache_hits=1, settled=10, pushes=12, truncated=3)
    b = SearchStats(searches=1, cache_hits=0, settled=4, pushes=5, truncated=1)
    s = a + b
    assert (s.searches, s.settled) == (3, 14)
    d = s - b
    assert d.as_dict() == a.as_dict()
    assert bool(SearchStats()) is False
    assert bool(a) is True


def test_reset_stats(engine):
    engine.sssp(0, phase="x")
    engine.reset_stats()
    assert engine.stats == {}
    assert not engine.total_stats()


# ----------------------------------------------------------------------
# Invalidation on graph mutation
# ----------------------------------------------------------------------


def test_mutation_invalidates_cache_and_rebuilds_csr():
    coords = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (1.0, 1.0)]
    edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
    network = RoadNetwork(coords, edges)
    engine = SearchEngine(network)
    before = engine.sssp(0)
    assert before[3] == pytest.approx(3.0)
    network.add_edge(0, 3, 0.5)
    after = engine.sssp(0)
    assert after[3] == pytest.approx(0.5)
    assert after == shortest_path_costs(network, 0)
    assert engine.cache_info().invalidations == 1


def test_edge_recost_invalidates():
    coords = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
    edges = [(0, 1, 1.0), (1, 2, 1.0)]
    network = RoadNetwork(coords, edges)
    engine = SearchEngine(network)
    assert engine.distance(0, 2) == pytest.approx(2.0)
    network.set_edge_cost(1, 2, 5.0)
    assert engine.distance(0, 2) == pytest.approx(6.0)
    assert engine.distance(0, 2) == distance_between(network, 0, 2)


def test_engine_for_is_shared_per_network(network):
    first = engine_for(network)
    second = engine_for(network)
    assert first is second
    other = grid_city(4, 4, seed=9)
    assert engine_for(other) is not first


# ----------------------------------------------------------------------
# Point-cache semantics of distance()
# ----------------------------------------------------------------------


class TestDistancePointCache:
    def test_one_entry_per_pair_across_bounds(self, network):
        """Distinct upper bounds must not create distinct entries: the
        true distance is cached once and bounds apply on read."""
        engine = SearchEngine(network)
        true = engine.distance(0, 12)
        points_after_first = engine.cache_info().points
        for bound in (true + 1.0, true + 2.0, true + 3.0):
            assert engine.distance(0, 12, upper_bound=bound) == true
        assert engine.cache_info().points == points_after_first

    def test_true_distance_answers_tighter_bound(self, network):
        engine = SearchEngine(network)
        true = engine.distance(3, 18)
        misses = engine.cache_info().misses
        # A bound below the known true distance is answered INF from
        # the cached float — no new search, no new entry.
        assert engine.distance(3, 18, upper_bound=true / 2) == math.inf
        assert engine.cache_info().misses == misses

    def test_bounded_miss_is_not_cached_as_unreachable(self, network):
        """A bounded search that ran out of budget must not poison the
        pair as unreachable: a later, larger bound re-searches."""
        engine = SearchEngine(network)
        reference = SearchEngine(network).distance(0, 24)
        assert engine.distance(0, 24, upper_bound=reference / 4) == math.inf
        assert engine.distance(0, 24, upper_bound=reference + 1.0) == reference
        assert engine.distance(0, 24) == reference

    def test_lower_bound_marker_short_circuits_repeats(self, network):
        engine = SearchEngine(network)
        reference = SearchEngine(network).distance(0, 24)
        bound = reference / 4
        assert engine.distance(0, 24, upper_bound=bound) == math.inf
        misses = engine.cache_info().misses
        # Repeating the same bound — or a smaller one — is served from
        # the ("lb", floor) marker without another search.
        assert engine.distance(0, 24, upper_bound=bound) == math.inf
        assert engine.distance(0, 24, upper_bound=bound / 2) == math.inf
        assert engine.cache_info().misses == misses

    def test_unbounded_unreachable_is_cached(self):
        coords = [(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (6.0, 0.0)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        network = RoadNetwork(coords, edges, validate_connected=False)
        engine = SearchEngine(network)
        assert engine.distance(0, 3) == math.inf
        misses = engine.cache_info().misses
        assert engine.distance(0, 3) == math.inf  # served from cache
        assert engine.distance(0, 3, upper_bound=100.0) == math.inf
        assert engine.cache_info().misses == misses


# ----------------------------------------------------------------------
# The label-field cache and its incremental repair
# ----------------------------------------------------------------------


class TestLabelFieldCache:
    def _stops(self, network, m=7):
        return [u for u in range(network.num_nodes) if u % m == 1]

    def test_cached_by_fingerprint(self, network):
        engine = SearchEngine(network)
        stops = self._stops(network)
        first = engine.multi_source_labels(stops)
        # Same set, different order / duplicates: same fingerprint.
        again = engine.multi_source_labels(list(reversed(stops)) + stops[:1])
        assert again is first

    def test_subset_repair_is_bit_identical(self, network):
        stops = self._stops(network)
        fresh = SearchEngine(network).multi_source_labels(stops)
        engine = SearchEngine(network)
        engine.multi_source_labels(stops[:-2])  # warm a strict subset
        stats_before = engine.counters("adhoc").copy()
        repaired = engine.multi_source_labels(stops)
        assert repaired.distance == fresh.distance
        assert repaired.label == fresh.label
        assert repaired.reachable == fresh.reachable
        # The repair reused the cached field (a cache hit) instead of
        # re-running the full multi-source search.
        assert engine.counters("adhoc").cache_hits > stats_before.cache_hits

    def test_label_is_nearest_stop_of_query_search(self, network):
        engine = SearchEngine(network)
        n = network.num_nodes
        stops = self._stops(network)
        is_existing = [False] * n
        for s in stops:
            is_existing[s] = True
        field = engine.multi_source_labels(stops)
        no_candidates = [False] * n
        for q in range(0, n, 5):
            nn_stop, _nn_dist, _visited = engine.query_search(
                q, is_existing, no_candidates
            )
            assert field.label[q] == nn_stop


class TestBatchQuerySearch:
    def test_matches_per_query_loop(self, network):
        engine = SearchEngine(network)
        n = network.num_nodes
        is_existing = [u % 7 == 1 for u in range(n)]
        is_candidate = [u % 3 == 0 and not is_existing[u] for u in range(n)]
        nodes = [u for u in range(n) if u % 2 == 0]
        rows = SearchEngine(network).batch_query_search(
            nodes, is_existing, is_candidate
        )
        assert [row[0] for row in rows] == nodes
        for query_node, nn_stop, nn_dist, visited in rows:
            assert (nn_stop, nn_dist, visited) == engine.query_search(
                query_node, is_existing, is_candidate
            )

    def test_empty_nodes(self, network):
        engine = SearchEngine(network)
        n = network.num_nodes
        assert engine.batch_query_search([], [False] * n, [False] * n) == []

    def test_unreachable_query_raises(self):
        coords = [(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (6.0, 0.0)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        network = RoadNetwork(coords, edges, validate_connected=False)
        engine = SearchEngine(network)
        is_existing = [True, False, False, False]
        is_candidate = [False, False, True, False]
        with pytest.raises(GraphError, match="query node 2"):
            engine.batch_query_search([0, 2], is_existing, is_candidate)


class TestKernelResolution:
    """$REPRO_KERNEL / explicit-name validation (resolve_kernel)."""

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(None).name == "python"

    def test_env_picks_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", " vectorized ")
        assert resolve_kernel(None).name == "vectorized"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_kernel("turbo")
        message = str(excinfo.value)
        assert "'turbo'" in message
        for name in available_kernels():
            assert name in message

    def test_unknown_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ConfigurationError, match=r"\$REPRO_KERNEL"):
            resolve_kernel(None)

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")  # never consulted
        assert resolve_kernel("python").name == "python"

    def test_instance_passthrough(self, network):
        kernel = resolve_kernel("python")
        assert resolve_kernel(kernel) is kernel
