"""Unit tests for candidate stop location strategies."""

import pytest

from repro.network.candidates import (
    candidate_mask,
    insert_edge_midpoints,
    node_candidates,
)


class TestEdgeMidpoints:
    def test_every_edge_subdivided(self, toy_network):
        new_network, midpoints = insert_edge_midpoints(toy_network)
        assert len(midpoints) == toy_network.num_edges
        assert new_network.num_nodes == toy_network.num_nodes + len(midpoints)
        assert new_network.num_edges == 2 * toy_network.num_edges

    def test_costs_halved(self, toy_network):
        new_network, midpoints = insert_edge_midpoints(toy_network)
        # Original adjacency replaced by two half-edges via the midpoint.
        from repro.network.dijkstra import distance_between

        for u, v, cost in toy_network.edges():
            assert distance_between(new_network, u, v) == pytest.approx(cost)

    def test_original_ids_preserved(self, toy_network):
        new_network, _ = insert_edge_midpoints(toy_network)
        for node in toy_network.nodes():
            assert new_network.coordinate(node) == toy_network.coordinate(node)

    def test_midpoint_coordinates(self, line_network):
        new_network, midpoints = insert_edge_midpoints(line_network)
        xs = sorted(new_network.coordinate(m)[0] for m in midpoints)
        assert xs == pytest.approx([0.5, 1.5, 2.5, 3.5, 4.5])

    def test_min_edge_cost_skips_short_edges(self, toy_network):
        new_network, midpoints = insert_edge_midpoints(
            toy_network, min_edge_cost=3.5
        )
        # The two cost-3 edges stay whole.
        assert len(midpoints) == toy_network.num_edges - 2

    def test_shortest_distances_unchanged(self, toy_network):
        from repro.network.dijkstra import shortest_path_costs

        new_network, _ = insert_edge_midpoints(toy_network)
        original = shortest_path_costs(toy_network, 0)
        subdivided = shortest_path_costs(new_network, 0)
        for v in toy_network.nodes():
            assert subdivided[v] == pytest.approx(original[v])


class TestNodeCandidates:
    def test_excludes_existing(self, toy_network):
        candidates = node_candidates(toy_network, [0, 1])
        assert candidates == [2, 3, 4, 5, 6, 7]

    def test_empty_existing(self, toy_network):
        assert node_candidates(toy_network, []) == list(range(8))

    def test_mask(self, toy_network):
        mask = candidate_mask(toy_network, [2, 5])
        assert mask == [False, False, True, False, False, True, False, False]
