"""CSR adjacency: construction, ordering, and version tracking."""

import pytest

from repro.network.csr import CSRAdjacency
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork


@pytest.fixture
def small_network():
    coords = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
    edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 2.5), (0, 2, 4.0)]
    return RoadNetwork(coords, edges)


def test_rows_match_neighbors_exactly(small_network):
    csr = CSRAdjacency(small_network)
    assert csr.num_nodes == small_network.num_nodes
    for u in small_network.nodes():
        row = [
            (csr.targets[i], csr.costs[i])
            for i in range(csr.indptr[u], csr.indptr[u + 1])
        ]
        assert row == list(small_network.neighbors(u))
        assert csr.degree(u) == len(row)


def test_rows_match_on_generated_city():
    network = grid_city(6, 6, seed=3)
    csr = CSRAdjacency(network)
    for u in network.nodes():
        row = [
            (csr.targets[i], csr.costs[i])
            for i in range(csr.indptr[u], csr.indptr[u + 1])
        ]
        assert row == list(network.neighbors(u))


def test_num_directed_edges_is_twice_undirected(small_network):
    csr = CSRAdjacency(small_network)
    assert csr.num_directed_edges == 2 * len(list(small_network.edges()))
    assert csr.indptr[-1] == csr.num_directed_edges


def test_snapshot_goes_stale_on_add_edge(small_network):
    csr = CSRAdjacency(small_network)
    assert csr.is_current()
    small_network.add_edge(1, 3, 0.7)
    assert not csr.is_current()
    fresh = CSRAdjacency(small_network)
    assert fresh.is_current()
    assert fresh.version == small_network.version
    assert fresh.num_directed_edges == csr.num_directed_edges + 2


def test_snapshot_goes_stale_on_set_edge_cost(small_network):
    csr = CSRAdjacency(small_network)
    small_network.set_edge_cost(0, 1, 9.0)
    assert not csr.is_current()
    fresh = CSRAdjacency(small_network)
    row = [
        (fresh.targets[i], fresh.costs[i])
        for i in range(fresh.indptr[0], fresh.indptr[1])
    ]
    assert (1, 9.0) in row


def test_network_accessor(small_network):
    csr = CSRAdjacency(small_network)
    assert csr.network is small_network
