"""Unit tests for planar geometry helpers."""

import math

import pytest

from repro.network.geometry import (
    GridIndex,
    bounding_box,
    euclidean,
    interpolate,
    midpoint,
    points_within_radius,
    polyline_length,
)


class TestScalarHelpers:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)
        assert euclidean((1, 1), (1, 1)) == 0.0

    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == (1.0, 2.0)

    def test_interpolate_endpoints_and_clamp(self):
        assert interpolate((0, 0), (10, 0), 0.0) == (0.0, 0.0)
        assert interpolate((0, 0), (10, 0), 1.0) == (10.0, 0.0)
        assert interpolate((0, 0), (10, 0), 0.25) == (2.5, 0.0)
        assert interpolate((0, 0), (10, 0), -0.5) == (0.0, 0.0)
        assert interpolate((0, 0), (10, 0), 1.5) == (10.0, 0.0)

    def test_bounding_box(self):
        box = bounding_box([(1, 5), (-2, 3), (4, -1)])
        assert box == (-2, -1, 4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_polyline_length(self):
        assert polyline_length([(0, 0), (3, 4), (3, 8)]) == pytest.approx(9.0)
        assert polyline_length([(0, 0)]) == 0.0

    def test_points_within_radius(self):
        points = [(0, 0), (1, 0), (5, 5)]
        assert points_within_radius(points, (0, 0), 1.5) == [0, 1]
        assert points_within_radius(points, (0, 0), 0.5) == [0]


class TestGridIndex:
    def test_nearest_exact(self):
        points = [(0.0, 0.0), (10.0, 0.0), (5.0, 5.0)]
        index = GridIndex(points, cell_size=1.0)
        assert index.nearest((0.1, 0.1)) == 0
        assert index.nearest((9.5, 0.4)) == 1
        assert index.nearest((5.0, 4.0)) == 2

    def test_nearest_matches_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(0)
        points = [tuple(p) for p in rng.uniform(0, 20, size=(200, 2))]
        index = GridIndex(points, cell_size=0.7)
        for probe in rng.uniform(-2, 22, size=(50, 2)):
            probe_t = (float(probe[0]), float(probe[1]))
            expected = min(
                range(len(points)), key=lambda i: euclidean(points[i], probe_t)
            )
            found = index.nearest(probe_t)
            assert euclidean(points[found], probe_t) == pytest.approx(
                euclidean(points[expected], probe_t)
            )

    def test_nearest_empty_raises(self):
        with pytest.raises(ValueError):
            GridIndex([], cell_size=1.0).nearest((0, 0))

    def test_within_matches_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(1)
        points = [tuple(p) for p in rng.uniform(0, 10, size=(100, 2))]
        index = GridIndex(points, cell_size=0.9)
        for probe in rng.uniform(0, 10, size=(20, 2)):
            probe_t = (float(probe[0]), float(probe[1]))
            expected = set(points_within_radius(points, probe_t, 2.0))
            assert set(index.within(probe_t, 2.0)) == expected

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex([(0, 0)], cell_size=0.0)

    def test_len(self):
        assert len(GridIndex([(0, 0), (1, 1)], cell_size=1.0)) == 2
