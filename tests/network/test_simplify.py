"""Unit tests for degree-2 chain contraction."""

import pytest

from repro.exceptions import GraphError
from repro.network.dijkstra import distance_between, shortest_path_costs
from repro.network.graph import RoadNetwork
from repro.network.simplify import contract_degree_two


class TestBasics:
    def test_line_collapses_to_single_edge(self, line_network):
        result = contract_degree_two(line_network)
        assert result.network.num_nodes == 2  # the two endpoints
        assert result.network.num_edges == 1
        assert result.network.edge_cost(0, 1) == pytest.approx(5.0)
        assert list(result.original_ids) == [0, 5]

    def test_keep_protects_nodes(self, line_network):
        result = contract_degree_two(line_network, keep=[3])
        assert result.network.num_nodes == 3
        assert 3 in result.new_id_of
        a, b = result.new_id_of[0], result.new_id_of[3]
        assert result.network.edge_cost(a, b) == pytest.approx(3.0)

    def test_invalid_keep(self, line_network):
        with pytest.raises(GraphError):
            contract_degree_two(line_network, keep=[99])

    def test_intersections_survive(self, toy_network):
        result = contract_degree_two(toy_network)
        # v3 (degree 4) and v4 (degree 3) must survive.
        assert 2 in result.new_id_of
        assert 3 in result.new_id_of

    def test_pure_cycle_keeps_anchor(self):
        coords = [(0, 0), (1, 0), (1, 1), (0, 1)]
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        cycle = RoadNetwork(coords, edges)
        result = contract_degree_two(cycle)
        assert result.network.num_nodes >= 1


class TestDistancePreservation:
    def test_distances_exact_on_toy(self, toy_network):
        result = contract_degree_two(toy_network)
        for i, orig_i in enumerate(result.original_ids):
            original = shortest_path_costs(toy_network, orig_i)
            for j, orig_j in enumerate(result.original_ids):
                assert distance_between(result.network, i, j) == (
                    pytest.approx(original[orig_j])
                ), f"{orig_i}->{orig_j}"

    def test_distances_exact_on_generated_city(self):
        from repro.network.generators import sprawl_city

        network = sprawl_city(num_nodes=150, seed=7)
        result = contract_degree_two(network)
        assert result.network.num_nodes <= network.num_nodes
        import numpy as np

        rng = np.random.default_rng(0)
        ids = result.original_ids
        for _ in range(12):
            i = int(rng.integers(0, len(ids)))
            j = int(rng.integers(0, len(ids)))
            expected = distance_between(network, ids[i], ids[j])
            assert distance_between(result.network, i, j) == (
                pytest.approx(expected)
            )

    def test_stops_protected_workflow(self, small_city):
        """The intended real-data workflow: simplify while keeping all
        bus stops; distances between stops are unchanged."""
        stops = small_city.transit.existing_stops[:10]
        result = contract_degree_two(small_city.network, keep=stops)
        for stop in stops:
            assert stop in result.new_id_of
        a, b = stops[0], stops[1]
        expected = distance_between(small_city.network, a, b)
        got = distance_between(
            result.network, result.new_id_of[a], result.new_id_of[b]
        )
        assert got == pytest.approx(expected)

    def test_repeated_simplification_preserves_distances(self, toy_network):
        """Contraction is not idempotent in general: collapsing a
        parallel chain can drop a surviving node to degree 2 (the toy's
        v4 after the v3-v6-v7-v4 chain folds into the v3-v4 edge), so a
        second pass may contract further — but distances between the
        final survivors must still match the original network."""
        once = contract_degree_two(toy_network)
        twice = contract_degree_two(once.network)
        assert twice.network.num_nodes <= once.network.num_nodes
        for i, mid_id in enumerate(twice.original_ids):
            orig_i = once.original_ids[mid_id]
            for j, mid_j in enumerate(twice.original_ids):
                orig_j = once.original_ids[mid_j]
                assert distance_between(twice.network, i, j) == pytest.approx(
                    distance_between(toy_network, orig_i, orig_j)
                )
