"""Unit tests for networkx interoperability."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.network.interop import from_networkx, to_networkx


class TestToNetworkx:
    def test_structure_preserved(self, toy_network):
        graph = to_networkx(toy_network)
        assert graph.number_of_nodes() == toy_network.num_nodes
        assert graph.number_of_edges() == toy_network.num_edges
        for u, v, cost in toy_network.edges():
            assert graph[u][v]["weight"] == pytest.approx(cost)

    def test_coordinates_attached(self, toy_network):
        graph = to_networkx(toy_network)
        assert graph.nodes[0]["x"] == 0.0
        assert graph.nodes[5]["y"] == 3.0

    def test_shortest_paths_agree(self, grid_network):
        from repro.network.dijkstra import shortest_path_costs

        graph = to_networkx(grid_network)
        ours = shortest_path_costs(grid_network, 0)
        theirs = nx.single_source_dijkstra_path_length(graph, 0)
        for node in grid_network.nodes():
            assert ours[node] == pytest.approx(theirs[node])


class TestFromNetworkx:
    def test_roundtrip(self, toy_network):
        graph = to_networkx(toy_network)
        back, node_map = from_networkx(graph)
        assert back.num_nodes == toy_network.num_nodes
        assert back.num_edges == toy_network.num_edges
        for u, v, cost in toy_network.edges():
            assert back.edge_cost(node_map[u], node_map[v]) == (
                pytest.approx(cost)
            )

    def test_arbitrary_node_labels(self):
        graph = nx.Graph()
        graph.add_node("alpha", x=0.0, y=0.0)
        graph.add_node("beta", x=1.0, y=0.0)
        graph.add_edge("alpha", "beta", weight=2.5)
        network, node_map = from_networkx(graph)
        assert network.num_nodes == 2
        assert network.edge_cost(node_map["alpha"], node_map["beta"]) == 2.5

    def test_missing_coordinates(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, weight=1.0)
        with pytest.raises(GraphError, match="coordinate"):
            from_networkx(graph)

    def test_missing_weight(self):
        graph = nx.Graph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1)
        with pytest.raises(GraphError, match="weight"):
            from_networkx(graph)

    def test_custom_attribute_names(self):
        graph = nx.Graph()
        graph.add_node(0, lon=0.0, lat=0.0)
        graph.add_node(1, lon=1.0, lat=0.0)
        graph.add_edge(0, 1, length=3.0)
        network, _ = from_networkx(
            graph, weight="length", x_attr="lon", y_attr="lat"
        )
        assert network.edge_cost(0, 1) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph())

    def test_disconnected_honours_flag(self):
        graph = nx.Graph()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (9, 9), (10, 9)]):
            graph.add_node(i, x=float(x), y=float(y))
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=1.0)
        with pytest.raises(GraphError):
            from_networkx(graph)
        network, _ = from_networkx(graph, validate_connected=False)
        assert not network.is_connected()
