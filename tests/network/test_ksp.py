"""Unit tests for Yen's K shortest paths."""

import itertools

import pytest

from repro.exceptions import ConfigurationError, GraphError
from repro.network.dijkstra import shortest_path
from repro.network.ksp import k_shortest_paths

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


class TestBasics:
    def test_first_path_is_shortest(self, toy_network):
        paths = k_shortest_paths(toy_network, V1, V4, 3)
        reference, cost = shortest_path(toy_network, V1, V4)
        assert paths[0][0] == reference
        assert paths[0][1] == pytest.approx(cost)

    def test_costs_non_decreasing(self, toy_network):
        paths = k_shortest_paths(toy_network, V1, V4, 5)
        costs = [c for _, c in paths]
        assert costs == sorted(costs)

    def test_paths_distinct_and_loopless(self, toy_network):
        paths = k_shortest_paths(toy_network, V1, V7, 5)
        seen = set()
        for path, cost in paths:
            key = tuple(path)
            assert key not in seen
            seen.add(key)
            assert len(set(path)) == len(path)  # simple path
            assert toy_network.path_cost(path) == pytest.approx(cost)
            assert path[0] == V1 and path[-1] == V7

    def test_toy_second_path(self, toy_network):
        """v1 -> v4: shortest is v1-v2-v3-v4 (12); the runner-up detours
        via v6/v7 (v1-v2-v3-v6-v7-v4 = 4+4+3+4+3 = 18)."""
        paths = k_shortest_paths(toy_network, V1, V4, 2)
        assert len(paths) == 2
        assert paths[1][1] == pytest.approx(18.0)

    def test_k_larger_than_path_count(self, line_network):
        # A path graph has exactly one simple path between any pair.
        paths = k_shortest_paths(line_network, 0, 5, 10)
        assert len(paths) == 1

    def test_validation(self, toy_network):
        with pytest.raises(ConfigurationError):
            k_shortest_paths(toy_network, V1, V4, 0)
        with pytest.raises(ConfigurationError):
            k_shortest_paths(toy_network, V1, V1, 2)

    def test_unreachable(self):
        from repro.network.graph import RoadNetwork

        network = RoadNetwork(
            [(0, 0), (1, 0), (9, 9)], [(0, 1, 1.0)], validate_connected=False
        )
        with pytest.raises(GraphError):
            k_shortest_paths(network, 0, 2, 2)


class TestAgainstBruteForce:
    def test_matches_enumeration_on_grid(self, grid_network):
        """On a 6x6 grid, the top-5 simple paths from corner to a nearby
        node must match exhaustive enumeration of simple paths."""
        source, target = 0, 8  # (0,0) -> (1,2)
        k = 5
        got = k_shortest_paths(grid_network, source, target, k)

        # brute force: DFS over simple paths with pruning by length
        best: list = []

        def dfs(node, path, cost):
            if len(best) == 50 and cost > best[-1][1]:
                return
            if cost > 8.0:  # generous bound for this pair
                return
            if node == target:
                best.append((list(path), cost))
                best.sort(key=lambda item: item[1])
                del best[50:]
                return
            for neighbor, c in grid_network.neighbors(node):
                if neighbor not in path:
                    path.append(neighbor)
                    dfs(neighbor, path, cost + c)
                    path.pop()

        dfs(source, [source], 0.0)
        expected_costs = sorted(c for _, c in best)[:k]
        assert [c for _, c in got] == pytest.approx(expected_costs)
