"""Unit tests for the DIMACS reader/writer."""

import math

import pytest

from repro.exceptions import DataFormatError
from repro.network.dimacs import read_dimacs, write_dimacs
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork


@pytest.fixture
def dimacs_pair(tmp_path):
    gr = tmp_path / "net.gr"
    co = tmp_path / "net.co"
    gr.write_text(
        "c tiny test network\n"
        "p sp 3 6\n"
        "a 1 2 1000\n"
        "a 2 1 1000\n"
        "a 2 3 2000\n"
        "a 3 2 2000\n"
        "a 1 3 5000\n"
        "a 3 1 5000\n"
    )
    co.write_text(
        "c coordinates\n"
        "p aux sp co 3\n"
        "v 1 0 0\n"
        "v 2 10000 0\n"
        "v 3 20000 0\n"
    )
    return gr, co


class TestRead:
    def test_basic_read(self, dimacs_pair):
        network = read_dimacs(*dimacs_pair)
        assert network.num_nodes == 3
        assert network.num_edges == 3
        # costs are metres by default -> km
        assert network.edge_cost(0, 1) == pytest.approx(1.0)
        assert network.edge_cost(1, 2) == pytest.approx(2.0)

    def test_cost_unit(self, dimacs_pair):
        network = read_dimacs(*dimacs_pair, cost_unit_km=0.01)
        assert network.edge_cost(0, 1) == pytest.approx(10.0)

    def test_coordinates_projected_monotonically(self, dimacs_pair):
        network = read_dimacs(*dimacs_pair)
        xs = [network.coordinate(v)[0] for v in range(3)]
        assert xs[0] < xs[1] < xs[2]

    def test_mismatched_counts_raise(self, dimacs_pair, tmp_path):
        gr, _ = dimacs_pair
        bad_co = tmp_path / "bad.co"
        bad_co.write_text("p aux sp co 2\nv 1 0 0\nv 2 1 1\n")
        with pytest.raises(DataFormatError, match="declares"):
            read_dimacs(gr, bad_co)

    def test_bad_arc_line(self, tmp_path, dimacs_pair):
        _, co = dimacs_pair
        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 3 1\na 1 2\n")
        with pytest.raises(DataFormatError, match="bad arc"):
            read_dimacs(gr, co)

    def test_missing_problem_line(self, tmp_path, dimacs_pair):
        _, co = dimacs_pair
        gr = tmp_path / "bad.gr"
        gr.write_text("a 1 2 100\n")
        with pytest.raises(DataFormatError, match="problem line"):
            read_dimacs(gr, co)

    def test_unknown_record(self, tmp_path, dimacs_pair):
        _, co = dimacs_pair
        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 3 1\nz 1 2 3\n")
        with pytest.raises(DataFormatError, match="unknown record"):
            read_dimacs(gr, co)

    def test_arc_out_of_range(self, tmp_path, dimacs_pair):
        _, co = dimacs_pair
        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 3 1\na 1 9 100\n")
        with pytest.raises(DataFormatError, match="out of range"):
            read_dimacs(gr, co)

    def test_non_contiguous_vertices(self, tmp_path, dimacs_pair):
        gr, _ = dimacs_pair
        co = tmp_path / "bad.co"
        co.write_text("p aux sp co 3\nv 1 0 0\nv 2 1 1\nv 7 2 2\n")
        with pytest.raises(DataFormatError, match="contiguous"):
            read_dimacs(gr, co)

    def test_disconnected_keeps_largest_component(self, tmp_path):
        gr = tmp_path / "net.gr"
        co = tmp_path / "net.co"
        gr.write_text("p sp 4 4\na 1 2 100\na 2 1 100\na 3 4 100\na 4 3 100\n")
        co.write_text(
            "p aux sp co 4\nv 1 0 0\nv 2 100 0\nv 3 0 100\nv 4 100 100\n"
        )
        network = read_dimacs(gr, co)
        assert network.num_nodes == 2
        with pytest.raises(DataFormatError, match="disconnected"):
            read_dimacs(gr, co, keep_largest_component=False)


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        original = grid_city(6, 6, seed=4)
        gr, co = tmp_path / "city.gr", tmp_path / "city.co"
        write_dimacs(original, gr, co)
        loaded = read_dimacs(gr, co)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_edges == original.num_edges
        # costs survive up to metre quantization
        for u, v, cost in original.edges():
            assert loaded.edge_cost(u, v) == pytest.approx(cost, abs=1e-3)
        # coordinates survive up to micro-degree quantization (~0.1 m)
        for node in original.nodes():
            ox, oy = original.coordinate(node)
            lx, ly = loaded.coordinate(node)
            assert abs(ox - lx) < 0.01 and abs(oy - ly) < 0.01

    def test_written_files_have_headers(self, tmp_path):
        network = RoadNetwork([(0, 0), (1, 0)], [(0, 1, 1.0)])
        gr, co = tmp_path / "x.gr", tmp_path / "x.co"
        write_dimacs(network, gr, co, comment="hello")
        assert "c hello" in gr.read_text()
        assert "p sp 2 2" in gr.read_text()
        assert "p aux sp co 2" in co.read_text()
