"""Unit tests for the road network data structure (Definition 1)."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork


class TestConstruction:
    def test_basic_counts(self, toy_network):
        assert toy_network.num_nodes == 8
        assert toy_network.num_edges == 8

    def test_nodes_iterates_all_ids(self, toy_network):
        assert list(toy_network.nodes()) == list(range(8))

    def test_empty_network_rejected(self):
        with pytest.raises(GraphError):
            RoadNetwork([], [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            RoadNetwork([(0, 0), (1, 0)], [(0, 0, 1.0), (0, 1, 1.0)])

    def test_non_positive_cost_rejected(self):
        with pytest.raises(GraphError, match="non-positive"):
            RoadNetwork([(0, 0), (1, 0)], [(0, 1, 0.0)])
        with pytest.raises(GraphError, match="non-positive"):
            RoadNetwork([(0, 0), (1, 0)], [(0, 1, -2.0)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            RoadNetwork([(0, 0), (1, 0)], [(0, 5, 1.0)])

    def test_disconnected_rejected_by_default(self):
        coords = [(0, 0), (1, 0), (5, 5), (6, 5)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        with pytest.raises(GraphError, match="connected"):
            RoadNetwork(coords, edges)
        network = RoadNetwork(coords, edges, validate_connected=False)
        assert not network.is_connected()

    def test_parallel_edges_keep_cheapest(self):
        network = RoadNetwork(
            [(0, 0), (1, 0)], [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 9.0)]
        )
        assert network.num_edges == 1
        assert network.edge_cost(0, 1) == 2.0

    def test_single_node_network(self):
        network = RoadNetwork([(0.0, 0.0)], [])
        assert network.num_nodes == 1
        assert network.is_connected()


class TestAccessors:
    def test_edge_cost_symmetric(self, toy_network):
        assert toy_network.edge_cost(0, 1) == 4.0
        assert toy_network.edge_cost(1, 0) == 4.0

    def test_edge_cost_missing_raises(self, toy_network):
        with pytest.raises(GraphError, match="no edge"):
            toy_network.edge_cost(0, 7)

    def test_has_edge(self, toy_network):
        assert toy_network.has_edge(2, 3)
        assert toy_network.has_edge(3, 2)
        assert not toy_network.has_edge(0, 4)

    def test_neighbors_costs(self, toy_network):
        neighbors = dict(toy_network.neighbors(2))  # v3
        assert neighbors == {1: 4.0, 3: 4.0, 5: 3.0, 7: 4.0}

    def test_degree(self, toy_network):
        assert toy_network.degree(2) == 4  # v3
        assert toy_network.degree(4) == 1  # v5

    def test_coordinates_are_copies(self, toy_network):
        coords = toy_network.coordinates()
        coords[0] = (99.0, 99.0)
        assert toy_network.coordinate(0) == (0.0, 0.0)

    def test_euclidean_distance_lower_bounds_network(self, toy_network):
        # v1 to v4: euclid 12 == network 12 on the toy's straight line
        assert toy_network.euclidean_distance(0, 3) == pytest.approx(12.0)

    def test_total_edge_cost(self, toy_network):
        assert toy_network.total_edge_cost() == pytest.approx(4 * 5 + 3 + 4 + 3)

    def test_edges_iteration_normalized(self, toy_network):
        for u, v, cost in toy_network.edges():
            assert u < v
            assert cost > 0


class TestPaths:
    def test_path_cost(self, toy_network):
        assert toy_network.path_cost([0, 1, 2, 3]) == pytest.approx(12.0)

    def test_path_cost_single_node(self, toy_network):
        assert toy_network.path_cost([0]) == 0.0

    def test_path_cost_invalid_raises(self, toy_network):
        with pytest.raises(GraphError):
            toy_network.path_cost([0, 4])

    def test_is_path(self, toy_network):
        assert toy_network.is_path([0, 1, 2, 5])
        assert not toy_network.is_path([0, 2])
        assert not toy_network.is_path([])


class TestStructure:
    def test_connected_components_single(self, toy_network):
        components = toy_network.connected_components()
        assert len(components) == 1
        assert sorted(components[0]) == list(range(8))

    def test_connected_components_multiple(self):
        network = RoadNetwork(
            [(0, 0), (1, 0), (9, 9)], [(0, 1, 1.0)], validate_connected=False
        )
        components = network.connected_components()
        assert sorted(len(c) for c in components) == [1, 2]

    def test_subgraph_keeps_largest_component(self, toy_network):
        # Nodes v1, v2 and v5 (v5 disconnected from v1-v2 in induced graph)
        sub, original = toy_network.subgraph([0, 1, 4])
        assert sub.num_nodes == 2
        assert original == [0, 1]

    def test_subgraph_preserves_costs(self, toy_network):
        sub, original = toy_network.subgraph([0, 1, 2])
        assert original == [0, 1, 2]
        assert sub.edge_cost(0, 1) == 4.0
        assert sub.edge_cost(1, 2) == 4.0

    def test_repr(self, toy_network):
        assert "|V|=8" in repr(toy_network)
