"""Unit tests for A* and the ALT landmark index."""

import math

import pytest

from repro.exceptions import ConfigurationError, GraphError
from repro.network.astar import LandmarkIndex, astar_distance, astar_path
from repro.network.dijkstra import shortest_path, shortest_path_costs

from ..conftest import V1, V2, V3, V4, V5, V6, V7, V8


class TestAStar:
    def test_matches_dijkstra_on_toy(self, toy_network):
        for source in range(8):
            costs = shortest_path_costs(toy_network, source)
            for target in range(8):
                assert astar_distance(toy_network, source, target) == (
                    pytest.approx(costs[target])
                )

    def test_path_valid_and_optimal(self, toy_network):
        path, cost = astar_path(toy_network, V1, V5)
        assert path[0] == V1 and path[-1] == V5
        assert toy_network.is_path(path)
        reference, expected = shortest_path(toy_network, V1, V5)
        assert cost == pytest.approx(expected)

    def test_same_node(self, toy_network):
        assert astar_distance(toy_network, V3, V3) == 0.0

    def test_unreachable_raises(self):
        from repro.network.graph import RoadNetwork

        network = RoadNetwork(
            [(0, 0), (1, 0), (9, 9)], [(0, 1, 1.0)], validate_connected=False
        )
        with pytest.raises(GraphError):
            astar_path(network, 0, 2)

    def test_matches_dijkstra_on_grid(self, grid_network):
        costs = shortest_path_costs(grid_network, 0)
        for target in (5, 17, 35):
            assert astar_distance(grid_network, 0, target) == (
                pytest.approx(costs[target])
            )

    def test_custom_heuristic_zero_is_dijkstra(self, grid_network):
        got = astar_distance(grid_network, 0, 35, heuristic=lambda v: 0.0)
        assert got == pytest.approx(shortest_path_costs(grid_network, 0)[35])


class TestLandmarkIndex:
    def test_lower_bound_is_valid(self, grid_network):
        index = LandmarkIndex(grid_network, num_landmarks=4)
        costs_from = {
            v: shortest_path_costs(grid_network, v) for v in (0, 14, 35)
        }
        for u in (0, 14, 35):
            for v in grid_network.nodes():
                assert index.lower_bound(u, v) <= costs_from[u][v] + 1e-9

    def test_distance_exact(self, toy_network):
        index = LandmarkIndex(toy_network, num_landmarks=3)
        for u in range(8):
            costs = shortest_path_costs(toy_network, u)
            for v in range(8):
                assert index.distance(u, v) == pytest.approx(costs[v])

    def test_landmarks_far_apart(self, grid_network):
        index = LandmarkIndex(grid_network, num_landmarks=3)
        assert len(set(index.landmarks)) == 3
        # farthest-point placement: pairwise distances are large
        from repro.network.dijkstra import distance_between

        for i, a in enumerate(index.landmarks):
            for b in index.landmarks[i + 1:]:
                assert distance_between(grid_network, a, b) >= 3.0

    def test_heuristic_dominates_euclidean_somewhere(self, grid_network):
        """ALT should beat the straight-line bound on at least one pair
        (on a grid with unit detours it usually does)."""
        index = LandmarkIndex(grid_network, num_landmarks=4)
        from repro.network.geometry import euclidean

        coords = grid_network.coordinates()
        wins = 0
        for u in range(0, 36, 5):
            for v in range(0, 36, 7):
                if index.lower_bound(u, v) > euclidean(coords[u], coords[v]) + 1e-9:
                    wins += 1
        assert wins > 0

    def test_invalid_params(self, toy_network):
        with pytest.raises(ConfigurationError):
            LandmarkIndex(toy_network, num_landmarks=0)
        with pytest.raises(ConfigurationError):
            LandmarkIndex(toy_network, num_landmarks=2, seed_node=99)

    def test_more_landmarks_than_nodes(self, toy_network):
        index = LandmarkIndex(toy_network, num_landmarks=100)
        assert len(index.landmarks) <= toy_network.num_nodes
