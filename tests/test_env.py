"""Environment-variable parsing helpers (:mod:`repro.env`)."""

import pytest

from repro.env import env_bool, env_float, env_int, env_int_list, env_str
from repro.exceptions import ConfigurationError


class TestEnvStr:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_VAR", raising=False)
        assert env_str("REPRO_TEST_VAR") is None
        assert env_str("REPRO_TEST_VAR", "fallback") == "fallback"

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "  hello ")
        assert env_str("REPRO_TEST_VAR") == "hello"

    def test_blank_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "   ")
        assert env_str("REPRO_TEST_VAR", "fallback") == "fallback"


class TestEnvFloat:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", " 0.5 ")
        assert env_float("REPRO_BENCH_SCALE", 0.12) == 0.5

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert env_float("REPRO_BENCH_SCALE", 0.12) == 0.12

    def test_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "half")
        with pytest.raises(ConfigurationError) as excinfo:
            env_float("REPRO_BENCH_SCALE", 0.12)
        message = str(excinfo.value)
        assert "REPRO_BENCH_SCALE" in message
        assert "'half'" in message
        assert "expected" in message


class TestEnvInt:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "8931")
        assert env_int("REPRO_SERVE_PORT", 8080) == 8931

    def test_unset_and_blank_return_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        assert env_int("REPRO_SERVE_PORT", 8080) == 8080
        monkeypatch.setenv("REPRO_SERVE_PORT", "  ")
        assert env_int("REPRO_SERVE_PORT", 8080) == 8080

    def test_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", " 8 ")
        assert env_int("REPRO_SERVE_MAX_INFLIGHT", 4) == 8

    def test_negative_allowed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "-1")
        assert env_int("REPRO_SERVE_PORT", 8080) == -1

    def test_float_rejected(self, monkeypatch):
        # A fractional port/concurrency is always a mistake: no
        # silent truncation.
        monkeypatch.setenv("REPRO_SERVE_PORT", "80.5")
        with pytest.raises(ConfigurationError, match="REPRO_SERVE_PORT"):
            env_int("REPRO_SERVE_PORT", 8080)

    def test_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "many")
        with pytest.raises(ConfigurationError) as excinfo:
            env_int("REPRO_SERVE_MAX_INFLIGHT", 4)
        message = str(excinfo.value)
        assert "REPRO_SERVE_MAX_INFLIGHT" in message
        assert "'many'" in message


class TestEnvBool:
    @pytest.mark.parametrize("raw", ["1", "true", "True", "YES", "on", "On"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_WARM", raw)
        assert env_bool("REPRO_SERVE_WARM", False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "FALSE", "no", "off", "Off"])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_WARM", raw)
        assert env_bool("REPRO_SERVE_WARM", True) is False

    def test_unset_and_blank_return_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_WARM", raising=False)
        assert env_bool("REPRO_SERVE_WARM", True) is True
        monkeypatch.setenv("REPRO_SERVE_WARM", " ")
        assert env_bool("REPRO_SERVE_WARM", False) is False

    def test_malformed_names_the_variable(self, monkeypatch):
        # "ture" must fail loudly, not silently mean "off".
        monkeypatch.setenv("REPRO_SERVE_WARM", "ture")
        with pytest.raises(ConfigurationError) as excinfo:
            env_bool("REPRO_SERVE_WARM", True)
        message = str(excinfo.value)
        assert "REPRO_SERVE_WARM" in message
        assert "'ture'" in message

    def test_numbers_other_than_binary_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WARM", "2")
        with pytest.raises(ConfigurationError, match="REPRO_SERVE_WARM"):
            env_bool("REPRO_SERVE_WARM", True)


class TestEnvIntList:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,20,30")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20, 30]

    def test_whitespace_and_trailing_comma(self, monkeypatch):
        # The exact shape from the bug report: "10, 20," must parse.
        monkeypatch.setenv("REPRO_BENCH_KS", "10, 20,")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20]

    def test_duplicate_commas_skipped(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,,20")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20]

    def test_unset_returns_default_copy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_KS", raising=False)
        default = [10, 20]
        out = env_int_list("REPRO_BENCH_KS", default)
        assert out == default
        assert out is not default

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "")
        assert env_int_list("REPRO_BENCH_KS", [10]) == [10]

    def test_bad_item_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,banana")
        with pytest.raises(ConfigurationError) as excinfo:
            env_int_list("REPRO_BENCH_KS", [1])
        message = str(excinfo.value)
        assert "REPRO_BENCH_KS" in message
        assert "'banana'" in message
        assert "10,20,30" in message

    def test_only_commas_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", ",,,")
        with pytest.raises(ConfigurationError, match="no integers"):
            env_int_list("REPRO_BENCH_KS", [1])
