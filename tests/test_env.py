"""Environment-variable parsing helpers (:mod:`repro.env`)."""

import pytest

from repro.env import env_float, env_int_list, env_str
from repro.exceptions import ConfigurationError


class TestEnvStr:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_VAR", raising=False)
        assert env_str("REPRO_TEST_VAR") is None
        assert env_str("REPRO_TEST_VAR", "fallback") == "fallback"

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "  hello ")
        assert env_str("REPRO_TEST_VAR") == "hello"

    def test_blank_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "   ")
        assert env_str("REPRO_TEST_VAR", "fallback") == "fallback"


class TestEnvFloat:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", " 0.5 ")
        assert env_float("REPRO_BENCH_SCALE", 0.12) == 0.5

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert env_float("REPRO_BENCH_SCALE", 0.12) == 0.12

    def test_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "half")
        with pytest.raises(ConfigurationError) as excinfo:
            env_float("REPRO_BENCH_SCALE", 0.12)
        message = str(excinfo.value)
        assert "REPRO_BENCH_SCALE" in message
        assert "'half'" in message
        assert "expected" in message


class TestEnvIntList:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,20,30")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20, 30]

    def test_whitespace_and_trailing_comma(self, monkeypatch):
        # The exact shape from the bug report: "10, 20," must parse.
        monkeypatch.setenv("REPRO_BENCH_KS", "10, 20,")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20]

    def test_duplicate_commas_skipped(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,,20")
        assert env_int_list("REPRO_BENCH_KS", [1]) == [10, 20]

    def test_unset_returns_default_copy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_KS", raising=False)
        default = [10, 20]
        out = env_int_list("REPRO_BENCH_KS", default)
        assert out == default
        assert out is not default

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "")
        assert env_int_list("REPRO_BENCH_KS", [10]) == [10]

    def test_bad_item_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", "10,banana")
        with pytest.raises(ConfigurationError) as excinfo:
            env_int_list("REPRO_BENCH_KS", [1])
        message = str(excinfo.value)
        assert "REPRO_BENCH_KS" in message
        assert "'banana'" in message
        assert "10,20,30" in message

    def test_only_commas_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KS", ",,,")
        with pytest.raises(ConfigurationError, match="no integers"):
            env_int_list("REPRO_BENCH_KS", [1])
