"""Command-line interface: ``python -m repro <command>``.

Three commands cover the practitioner loop the paper's introduction
describes (adjust the input, re-plan, inspect):

* ``stats``   — print Table II-style statistics of a synthetic city;
* ``plan``    — plan one route with EBRR on a synthetic city and print
  the stops, metrics, and timings;
* ``sweep``   — run the effect-of-K experiment (EBRR + both baselines)
  and print the Fig. 7/8/13-style series, optionally exporting CSV;
* ``case-study`` — plan one route on ridership-style demand and write
  the Figs. 1/12-style artefacts (SVG map + GeoJSON route);
* ``lint`` — run reprolint, the repo's AST-based architectural
  invariant checker (see :mod:`repro.lint` and DESIGN.md);
* ``trace`` — inspect a Chrome trace written by ``plan --trace`` or
  ``sweep --trace`` (``trace summarize FILE`` prints the deterministic
  text tree; the JSON itself loads in chrome://tracing or Perfetto);
* ``query`` — inspect the experiment store (``$REPRO_STORE`` /
  ``--db``): run rows, metrics, the bench series, the normalized gates
  view (with ``--check`` as the perf-regression gate), and trace
  pointers, as table/csv/json.

Real-data workflows go through the library API (see README); the CLI
exists for instant, zero-code reproduction.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .core.config import EBRRConfig
from .core.ebrr import plan_route
from .datasets.registry import available_cities, load_city
from .eval.experiments import calibrated_alpha, dataset_statistics, effect_of_k
from .eval.export import rows_to_csv
from .eval.reporting import format_series, format_table
from .lint.baseline import DEFAULT_BASELINE_NAME
from .lint.report import format_names as lint_format_names
from .core.preprocess import PREPROCESS_STRATEGIES
from .network.engine import available_kernels


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bus Routing on Roads (BRR/EBRR) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_city_args(p):
        p.add_argument(
            "--city", choices=available_cities(), default="chicago",
            help="synthetic city dataset",
        )
        p.add_argument(
            "--scale", type=float, default=0.1,
            help="linear scale versus the paper's city sizes",
        )

    stats = sub.add_parser("stats", help="print dataset statistics (Table II)")
    add_city_args(stats)

    plan = sub.add_parser("plan", help="plan one route with EBRR")
    add_city_args(plan)
    plan.add_argument("-k", "--max-stops", type=int, default=20,
                      help="K: maximum number of stops")
    plan.add_argument("-c", "--max-adjacent-cost", type=float, default=2.0,
                      help="C: maximum cost between adjacent stops (km)")
    plan.add_argument("--alpha", type=float, default=None,
                      help="utility trade-off (default: calibrated)")
    plan.add_argument("--explain", action="store_true",
                      help="print the full run diagnostics report")
    plan.add_argument("--profile-searches", action="store_true",
                      help="print per-phase graph-search statistics "
                           "(searches, cache hits, settled nodes) and "
                           "the engine cache summary")
    plan.add_argument("--workers", type=int, default=1,
                      help="process-pool size for the Algorithm 2 fan-out "
                           "(1 = serial; results are bit-identical)")
    plan.add_argument("--kernel", choices=available_kernels(), default=None,
                      help="search-kernel backend (default: $REPRO_KERNEL, "
                           "then 'python'; results are bit-identical — "
                           "'vectorized' is the fast numpy backend for "
                           "full-scale cities)")
    plan.add_argument("--preprocess", choices=PREPROCESS_STRATEGIES,
                      default=None, dest="preprocess_strategy",
                      help="Algorithm 2 strategy (default: "
                           "$REPRO_PREPROCESS, then 'inverted', which "
                           "batches preprocessing into one label field "
                           "plus candidate balls; 'per-query' is the "
                           "paper's literal loop — bit-identical plans "
                           "either way)")
    plan.add_argument("--trace", type=str, default=None, metavar="PATH",
                      help="record a trace of the run and write it in "
                           "Chrome trace-event format (open in "
                           "chrome://tracing or Perfetto)")

    sweep = sub.add_parser("sweep", help="effect-of-K experiment (Figs. 7/8/13)")
    add_city_args(sweep)
    sweep.add_argument("--ks", type=str, default="10,20,30",
                       help="comma-separated K values")
    sweep.add_argument("-c", "--max-adjacent-cost", type=float, default=2.0)
    sweep.add_argument("--csv", type=str, default=None,
                       help="also export the rows to this CSV file")
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size: parallelizes preprocessing "
                           "and fans the per-K EBRR runs over workers")
    sweep.add_argument("--kernel", choices=available_kernels(), default=None,
                       help="search-kernel backend for every planner run "
                            "(rows are bit-identical across backends)")
    sweep.add_argument("--preprocess", choices=PREPROCESS_STRATEGIES,
                       default=None, dest="preprocess_strategy",
                       help="Algorithm 2 strategy for every planner run "
                            "(rows are bit-identical across strategies)")
    sweep.add_argument("--trace", type=str, default=None, metavar="PATH",
                       help="record a trace of the sweep and write it in "
                            "Chrome trace-event format")

    case = sub.add_parser(
        "case-study", help="plan a route and write SVG + GeoJSON artefacts"
    )
    add_city_args(case)
    case.add_argument("-k", "--max-stops", type=int, default=15)
    case.add_argument("-c", "--max-adjacent-cost", type=float, default=2.0)
    case.add_argument("--svg", type=str, default="case_study.svg",
                      help="output SVG map path")
    case.add_argument("--geojson", type=str, default=None,
                      help="optional output GeoJSON path")

    lint = sub.add_parser(
        "lint", help="check the source against the RL001-RL012 invariants"
    )
    lint.add_argument("paths", nargs="*", default=[],
                      help=("files or directories to lint (default: the "
                            "[tool.reprolint] include paths, or src)"))
    lint.add_argument("--format", choices=lint_format_names(), default="text",
                      help="output format (default: text)")
    lint.add_argument("--select", type=str, default=None, metavar="IDS",
                      help="comma-separated rule ids to run")
    lint.add_argument("--no-config", action="store_true",
                      help="ignore [tool.reprolint] in pyproject.toml")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
                      default=None, metavar="PATH",
                      help="ratchet mode: fail if any rule count grows")
    lint.add_argument("--write-baseline", nargs="?",
                      const=DEFAULT_BASELINE_NAME, default=None,
                      metavar="PATH",
                      help="record current counts as the new baseline")
    lint.add_argument("--cache", type=str, default=None, metavar="PATH",
                      help="incremental cache file location")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the incremental cache")

    serve = sub.add_parser(
        "serve", help="run the planning-as-a-service HTTP daemon"
    )
    serve.add_argument("--dataset", action="append", required=True,
                       metavar="CITY", choices=available_cities(),
                       help="city dataset to serve (repeatable; each is "
                            "loaded once and kept warm)")
    serve.add_argument("--scale", type=float, default=0.1,
                       help="linear scale versus the paper's city sizes")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default: loopback)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default: $REPRO_SERVE_PORT, then "
                            "8080; 0 picks an ephemeral port)")
    serve.add_argument("-k", "--max-stops", type=int, default=20,
                       help="default K for /v1/plan requests")
    serve.add_argument("-c", "--max-adjacent-cost", type=float, default=2.0,
                       help="default C for /v1/plan requests (km)")
    serve.add_argument("--alpha", type=float, default=None,
                       help="utility trade-off (default: calibrated per city)")
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool size for preprocessing fan-out")
    serve.add_argument("--kernel", choices=available_kernels(), default=None,
                       help="search-kernel backend for every tenant")
    serve.add_argument("--preprocess", choices=PREPROCESS_STRATEGIES,
                       default=None, dest="preprocess_strategy",
                       help="Algorithm 2 strategy for every tenant")
    serve.add_argument("--cache-capacity", type=int, default=None,
                       help="bound each tenant engine's LRU row cache "
                            "(daemon memory cap; default: engine default)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="admitted-request concurrency bound (default: "
                            "$REPRO_SERVE_MAX_INFLIGHT, then 4)")
    serve.add_argument("--max-queued", type=int, default=16,
                       help="requests allowed to wait for a slot; beyond "
                            "this the daemon sheds with 429")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline in seconds "
                            "(503 when exceeded while queued)")
    serve.add_argument("--trace-dir", type=str, default=None, metavar="DIR",
                       help="write one JSONL trace per request into DIR")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip boot-time warmup (preprocess + default "
                            "plan per tenant; default: warm, or "
                            "$REPRO_SERVE_WARM)")

    trace = sub.add_parser(
        "trace", help="inspect a recorded Chrome trace file"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="print the deterministic text summary tree"
    )
    trace_summarize.add_argument("file", help="Chrome trace JSON file")
    trace_summarize.add_argument(
        "--max-depth", type=int, default=6,
        help="deepest span level shown (default: 6)",
    )

    query = sub.add_parser(
        "query", help="inspect the experiment store (runs database)"
    )
    query_sub = query.add_subparsers(dest="view", required=True)

    def add_query_args(p, *, run_filter=False):
        p.add_argument("--db", type=str, default=None,
                       help="store database path (default: $REPRO_STORE)")
        p.add_argument("--format", choices=query_formats(), default="table",
                       help="output format (default: table)")
        p.add_argument("--last", type=int, default=None, metavar="N",
                       help="only the newest N rows")
        p.add_argument("--since", type=str, default=None, metavar="ISO",
                       help="only rows created at/after this ISO-8601 "
                            "UTC timestamp")
        if run_filter:
            p.add_argument("--run", type=int, default=None, metavar="ID",
                           help="only rows of this run id")

    q_runs = query_sub.add_parser("runs", help="run rows (config hash, "
                                               "seed, dataset, git rev)")
    add_query_args(q_runs)
    q_runs.add_argument("--dataset", type=str, default=None)
    q_runs.add_argument("--kind", type=str, default=None,
                        help="writer kind (sweep, planner, ...)")

    q_metrics = query_sub.add_parser(
        "metrics", help="typed per-run metric key/values"
    )
    add_query_args(q_metrics, run_filter=True)
    q_metrics.add_argument("--dataset", type=str, default=None)
    q_metrics.add_argument("--metric", type=str, default=None,
                           help="only this metric key")

    q_benches = query_sub.add_parser(
        "benches", help="the BENCH_* series (perf trajectory history)"
    )
    add_query_args(q_benches)
    q_benches.add_argument("--bench", type=str, default=None,
                           help="only this bench name")

    q_gates = query_sub.add_parser(
        "gates", help="normalized gate view "
                      "(passed/failed/skipped incl. cpu_limited)"
    )
    add_query_args(q_gates)
    q_gates.add_argument("--check", type=str, default=None, metavar="PATH",
                         help="regression-gate against this committed "
                              "BENCH_trajectory.json (exit 1 on "
                              "regression)")
    q_gates.add_argument("--tolerance", type=float,
                         default=gate_tolerance(),
                         help="fractional slack below a committed "
                              "speedup headline")

    q_traces = query_sub.add_parser(
        "traces", help="pointers to exported obs trace files"
    )
    add_query_args(q_traces, run_filter=True)
    return parser


def query_formats():
    from .store.query import FORMATS

    return FORMATS


def gate_tolerance():
    from .store.gate import DEFAULT_TOLERANCE

    return DEFAULT_TOLERANCE


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "case-study":
        return _cmd_case_study(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "query":
        return _cmd_query(args)
    return 2  # unreachable: argparse enforces the choices


def _cmd_stats(args) -> int:
    dataset = load_city(args.city, scale=args.scale)
    rows = dataset_statistics([dataset])
    print(format_table(rows, title="Dataset statistics (Table II layout)"))
    return 0


def _cmd_lint(args) -> int:
    from .lint.cli import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select is not None:
        argv += ["--select", args.select]
    if args.no_config:
        argv.append("--no-config")
    if args.list_rules:
        argv.append("--list-rules")
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.write_baseline is not None:
        argv += ["--write-baseline", args.write_baseline]
    if args.cache is not None:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv.append("--no-cache")
    return lint_main(argv)


def _cmd_query(args) -> int:
    from .exceptions import ConfigurationError
    from .store.query import run_query

    try:
        return run_query(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # query output is made for piping into head/grep; a closed pipe
        # is the reader saying "enough", not an error.  Redirect stdout
        # to devnull so the interpreter's shutdown flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_trace(args) -> int:
    from .obs import load_chrome_trace, summarize

    try:
        spans, metrics = load_chrome_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    print(summarize(spans, metrics, max_depth=args.max_depth))
    return 0


def _write_trace(trace, path: str) -> None:
    from .obs import write_chrome_trace

    write_chrome_trace(trace, path)
    lanes = {span.lane for span in trace.spans}
    print(
        f"trace written to {path} ({len(trace.spans)} spans, "
        f"{len(lanes)} lane{'s' if len(lanes) != 1 else ''}); "
        "open in chrome://tracing or https://ui.perfetto.dev"
    )


def _resolve_runtime_choices(args) -> int:
    """Validate kernel/preprocess choices (including the $REPRO_KERNEL
    / $REPRO_PREPROCESS fallbacks) *before* loading a city, so a typo'd
    environment variable fails in milliseconds with the choices listed
    instead of deep inside the engine."""
    from .core.preprocess import resolve_preprocess_strategy
    from .exceptions import ConfigurationError
    from .network.engine import resolve_kernel

    try:
        resolve_kernel(args.kernel)
        resolve_preprocess_strategy(args.preprocess_strategy)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_plan(args) -> int:
    from .obs import tracing

    code = _resolve_runtime_choices(args)
    if code:
        return code
    dataset = load_city(args.city, scale=args.scale)
    alpha = args.alpha if args.alpha is not None else calibrated_alpha(dataset)
    instance = dataset.instance(alpha)
    config = EBRRConfig(
        max_stops=args.max_stops,
        max_adjacent_cost=args.max_adjacent_cost,
        alpha=alpha,
        workers=args.workers,
        kernel=args.kernel,
        preprocess_strategy=args.preprocess_strategy,
    )
    if args.trace:
        with tracing() as trace:
            result = plan_route(instance, config)
        _write_trace(trace, args.trace)
    else:
        result = plan_route(instance, config)
    print(f"{dataset.name} (scale {args.scale}), alpha={alpha:.2f}")
    print(result.summary())
    print("stops:", " -> ".join(str(s) for s in result.route.stops))
    if args.explain:
        from .core.diagnostics import explain_result

        print()
        print(explain_result(instance, result))
    if args.profile_searches:
        from .core.diagnostics import search_stats_table
        from .network.engine import engine_for

        print()
        if not args.explain:  # --explain already embeds the phase table
            print(search_stats_table(result))
        engine = engine_for(instance.network)
        print(f"search kernel: {engine.kernel_name}")
        info = engine.cache_info()
        print(
            f"engine cache: {info.hits} hits / {info.misses} misses "
            f"(hit rate {info.hit_rate:.1%}), {info.rows} rows and "
            f"{info.points} point entries resident, "
            f"{info.evictions} evictions, {info.invalidations} invalidations"
        )
    if not result.is_feasible:
        print("violations:", "; ".join(result.constraint_violations))
        return 1
    return 0


def _cmd_serve(args) -> int:
    import signal

    from .env import env_bool, env_int
    from .exceptions import ReproError
    from .serve import (
        AdmissionController,
        DatasetRegistry,
        PlanService,
        TenantSpec,
        create_server,
        run_server,
    )

    code = _resolve_runtime_choices(args)
    if code:
        return code
    try:
        port = args.port if args.port is not None else env_int(
            "REPRO_SERVE_PORT", 8080
        )
        max_inflight = (
            args.max_inflight
            if args.max_inflight is not None
            else env_int("REPRO_SERVE_MAX_INFLIGHT", 4)
        )
        warm = False if args.no_warm else env_bool("REPRO_SERVE_WARM", True)
        admission = AdmissionController(
            max_inflight=max_inflight,
            max_queued=args.max_queued,
            default_timeout_s=args.deadline,
        )
        registry = DatasetRegistry()
        for city in args.dataset:
            spec = TenantSpec(
                city=city,
                scale=args.scale,
                max_stops=args.max_stops,
                max_adjacent_cost=args.max_adjacent_cost,
                alpha=args.alpha,
                workers=args.workers,
                kernel=args.kernel,
                preprocess_strategy=args.preprocess_strategy,
                cache_capacity=args.cache_capacity,
            )
            print(f"loading {city} (scale {args.scale}, warm={warm}) ...")
            tenant = registry.add(spec, warm=warm)
            print(f"  ready: {len(tenant.instance.queries)} queries, "
                  f"alpha={tenant.alpha:.3f}, kernel={tenant.engine.kernel_name}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = PlanService(
        registry, admission=admission, trace_dir=args.trace_dir
    )
    server = create_server(service, host=args.host, port=port)
    bound_port = server.server_address[1]
    print(f"serving {', '.join(registry.names())} on "
          f"http://{args.host}:{bound_port} "
          f"(max-inflight {max_inflight}, max-queued {args.max_queued}, "
          f"deadline {args.deadline:g}s)")
    sys.stdout.flush()

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        run_server(server)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        print("shutdown complete")
    return 0


def _cmd_sweep(args) -> int:
    try:
        ks = [int(k) for k in args.ks.split(",") if k]
    except ValueError:
        print(f"error: --ks must be comma-separated integers, got {args.ks!r}",
              file=sys.stderr)
        return 2
    if not ks:
        print("error: --ks is empty", file=sys.stderr)
        return 2
    code = _resolve_runtime_choices(args)
    if code:
        return code
    dataset = load_city(args.city, scale=args.scale)
    alpha = calibrated_alpha(dataset)
    if args.trace:
        from .obs import tracing

        with tracing() as trace:
            rows = effect_of_k(
                dataset, ks, alpha=alpha,
                max_adjacent_cost=args.max_adjacent_cost,
                workers=args.workers, kernel=args.kernel,
                preprocess_strategy=args.preprocess_strategy,
            )
        _write_trace(trace, args.trace)
    else:
        rows = effect_of_k(
            dataset, ks, alpha=alpha, max_adjacent_cost=args.max_adjacent_cost,
            workers=args.workers, kernel=args.kernel,
            preprocess_strategy=args.preprocess_strategy,
        )
    for value, title in (
        ("walk_cost", "Walking cost vs K"),
        ("connectivity", "Connectivity vs K"),
        ("time_s", "Execution time (s) vs K"),
    ):
        print(format_series(rows, x="K", series="algorithm", value=value,
                            title=title))
        print()
    if args.csv:
        rows_to_csv(rows, args.csv)
        print(f"rows exported to {args.csv}")
    return 0


def _cmd_case_study(args) -> int:
    from .demand.ridership import ridership_demand
    from .core.utility import BRRInstance
    from .eval.visualize import render_case_study

    dataset = load_city(args.city, scale=args.scale)
    alpha = calibrated_alpha(dataset)
    queries = ridership_demand(
        dataset.transit, max(1000, len(dataset.queries) // 4), seed=5
    )
    alpha = max(alpha * len(queries) / len(dataset.queries), 1e-9)
    instance = BRRInstance(dataset.transit, queries, alpha=alpha)
    config = EBRRConfig(
        max_stops=args.max_stops,
        max_adjacent_cost=args.max_adjacent_cost,
        alpha=alpha,
    )
    result = plan_route(instance, config)
    print(result.summary())
    render_case_study(
        dataset.network,
        queries,
        dataset.transit.existing_stops,
        result.route,
        args.svg,
        title=f"{dataset.name} case study (K={args.max_stops})",
    )
    print(f"map written to {args.svg}")
    if args.geojson:
        from .eval.geojson import route_to_geojson

        route_to_geojson(
            dataset.network, result.route, args.geojson,
            utility=result.metrics.utility,
        )
        print(f"route written to {args.geojson}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
