"""Synthetic city datasets standing in for Table II.

The paper evaluates on Chicago, New York City, and Orlando (road
networks from DIMACS, transit from the local authorities, demand from
historical queries / Uber Movement).  Each builder here produces the
same *kind* of city at a configurable linear ``scale``:

* node, stop, and query counts shrink with ``scale**2`` (area scaling);
* topology matches the city's style (see
  :mod:`repro.network.generators`);
* demand mixes established hotspots near the existing network with
  under-served growth areas, the structure the paper's evaluation
  depends on.

``scale=1.0`` reproduces the paper's sizes (|V| = 58k-135k) — feasible
but slow in pure Python; the benchmarks default to ``scale≈0.15``.
Real data drops in through :func:`repro.network.read_dimacs` and
:func:`repro.transit.load_transit` without touching anything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.utility import BRRInstance
from ..demand.generators import hotspot_demand
from ..demand.query import QuerySet
from ..exceptions import ConfigurationError
from ..network.generators import grid_city, radial_city, sprawl_city
from ..network.geometry import Point, bounding_box
from ..network.graph import RoadNetwork
from ..transit.builder import build_transit_network
from ..transit.network import TransitNetwork

#: Paper sizes (Table II) the builders scale down from.
PAPER_SIZES: Dict[str, Dict[str, int]] = {
    "Chicago": {"V": 58_337, "E": 178_102, "S_new": 89_051, "S_existing": 10_517, "Q": 1_076_324},
    "NYC": {"V": 134_551, "E": 397_956, "S_new": 198_978, "S_existing": 9_225, "Q": 793_496},
    "Orlando": {"V": 95_678, "E": 238_674, "S_new": 119_337, "S_existing": 3_949, "Q": 136_813},
}


@dataclass
class CityDataset:
    """A complete city: network, transit, demand, and region metadata.

    Attributes:
        name: ``Chicago`` / ``NYC`` / ``Orlando``.
        network: the road network.
        transit: the existing transit network.
        queries: the full demand multiset ``Q``.
        regions: named region centres (NYC boroughs) for the
            effect-of-Q partition; ``None`` means "partition by
            vertical bands" (Chicago's Dataset1-4).
        scale: the linear scale it was generated at.
    """

    name: str
    network: RoadNetwork
    transit: TransitNetwork
    queries: QuerySet
    regions: Optional[List[Tuple[str, Point]]] = None
    scale: float = 1.0

    def instance(self, alpha: float, *, queries: Optional[QuerySet] = None) -> BRRInstance:
        """A BRR instance over this city (optionally a demand subset)."""
        return BRRInstance(
            self.transit, queries if queries is not None else self.queries, alpha=alpha
        )

    def statistics(self) -> Dict[str, int]:
        """Table II row: |V|, |E|, |S_new|, |S_existing|, |Q|."""
        existing = len(self.transit.existing_stops)
        return {
            "V": self.network.num_nodes,
            "E": self.network.num_edges,
            "S_new": self.network.num_nodes - existing,
            "S_existing": existing,
            "Q": len(self.queries),
        }


def _scaled(paper_value: int, scale: float, *, minimum: int = 1) -> int:
    return max(minimum, round(paper_value * scale * scale))


def chicago(scale: float = 0.15, *, seed: int = 7) -> CityDataset:
    """Chicago: dense grid bounded by a lakefront on the east."""
    _check_scale(scale)
    target_nodes = _scaled(PAPER_SIZES["Chicago"]["V"], scale, minimum=400)
    # The coastline cut removes ~20% of lattice nodes.
    side = max(20, round(math.sqrt(target_nodes / 0.8)))
    network = grid_city(rows=side, cols=side, block_km=0.25, coastline=0.8, seed=seed)
    transit = build_transit_network(
        network,
        num_routes=max(6, round(40 * scale / 0.15)),
        stop_spacing_km=0.4,
        seed=seed + 1,
    )
    queries = hotspot_demand(
        network,
        _scaled(PAPER_SIZES["Chicago"]["Q"], scale, minimum=2000),
        num_hotspots=10,
        sigma_km=0.9,
        transit=transit,
        uncovered_fraction=0.5,
        seed=seed + 2,
        name="Chicago-Q",
    )
    return CityDataset("Chicago", network, transit, queries, regions=None, scale=scale)


def nyc(scale: float = 0.15, *, seed: int = 11) -> CityDataset:
    """NYC: four dense boroughs joined by bridges."""
    _check_scale(scale)
    target_nodes = _scaled(PAPER_SIZES["NYC"]["V"], scale, minimum=600)
    per_borough = max(150, target_nodes // 4)
    network = radial_city(
        num_boroughs=4,
        nodes_per_borough=per_borough,
        borough_radius_km=3.5,
        spacing_km=7.5,
        seed=seed,
    )
    transit = build_transit_network(
        network,
        num_routes=max(6, round(36 * scale / 0.15)),
        stop_spacing_km=0.4,
        seed=seed + 1,
    )
    queries = hotspot_demand(
        network,
        _scaled(PAPER_SIZES["NYC"]["Q"], scale, minimum=2000),
        num_hotspots=12,
        sigma_km=1.0,
        transit=transit,
        uncovered_fraction=0.4,
        seed=seed + 2,
        name="NYC-Q",
    )
    regions = _nyc_regions(network)
    return CityDataset("NYC", network, transit, queries, regions=regions, scale=scale)


def _nyc_regions(network: RoadNetwork) -> List[Tuple[str, Point]]:
    """Name the four borough clusters by their quadrant centres."""
    import math as _math

    min_x, min_y, max_x, max_y = bounding_box(network.coordinates())
    cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
    r = 7.5
    names = ["Brooklyn", "Manhattan", "Queens", "Bronx"]
    return [
        (
            names[b],
            (
                cx + r * _math.cos(2 * _math.pi * b / 4) * 0.9,
                cy + r * _math.sin(2 * _math.pi * b / 4) * 0.9,
            ),
        )
        for b in range(4)
    ]


def orlando(scale: float = 0.15, *, seed: int = 13) -> CityDataset:
    """Orlando: low-density sprawl around arterial corridors."""
    _check_scale(scale)
    target_nodes = _scaled(PAPER_SIZES["Orlando"]["V"], scale, minimum=400)
    network = sprawl_city(
        num_nodes=target_nodes,
        extent_km=16.0,
        arterial_count=6,
        seed=seed,
    )
    transit = build_transit_network(
        network,
        num_routes=max(4, round(18 * scale / 0.15)),
        stop_spacing_km=0.45,
        seed=seed + 1,
    )
    queries = hotspot_demand(
        network,
        _scaled(PAPER_SIZES["Orlando"]["Q"], scale, minimum=1000),
        num_hotspots=8,
        sigma_km=1.1,
        transit=transit,
        uncovered_fraction=0.6,  # Orlando's case study is growth-driven
        seed=seed + 2,
        name="Orlando-Q",
    )
    return CityDataset("Orlando", network, transit, queries, regions=None, scale=scale)


def _check_scale(scale: float) -> None:
    if not (0.0 < scale <= 1.0):
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
