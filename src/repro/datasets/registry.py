"""Dataset registry with caching.

Experiments and benchmarks request datasets by name; identical
``(name, scale, seed)`` requests return the *same object*, so the
planners' per-instance caches (ETA-Pre's trajectory preprocessing,
EBRR's query preprocessing reuse) stay effective across a sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..exceptions import ConfigurationError
from .cities import CityDataset, chicago, nyc, orlando

_BUILDERS: Dict[str, Callable[..., CityDataset]] = {
    "chicago": chicago,
    "nyc": nyc,
    "orlando": orlando,
}

_CACHE: Dict[Tuple[str, float, Optional[int]], CityDataset] = {}


def available_cities() -> Tuple[str, ...]:
    """Names accepted by :func:`load_city`."""
    return tuple(sorted(_BUILDERS))


def load_city(
    name: str, *, scale: float = 0.15, seed: Optional[int] = None
) -> CityDataset:
    """Load (and cache) a synthetic city dataset.

    Args:
        name: ``chicago`` / ``nyc`` / ``orlando`` (case-insensitive).
        scale: linear scale versus the paper's sizes.
        seed: override the city's default seed.

    Raises:
        ConfigurationError: for an unknown city name.
    """
    key_name = name.lower()
    if key_name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown city {name!r}; available: {', '.join(available_cities())}"
        )
    cache_key = (key_name, scale, seed)
    if cache_key not in _CACHE:
        builder = _BUILDERS[key_name]
        _CACHE[cache_key] = builder(scale, seed=seed) if seed is not None else builder(scale)
    return _CACHE[cache_key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this for isolation)."""
    _CACHE.clear()
