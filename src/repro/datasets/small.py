"""The small NYC extract used for the OPT comparison (Fig. 11a).

The paper: "From the NYC data, we extract a small graph with 110 nodes
and 324 edges, 132 query nodes, 7 new and 7 existing stops."  This
builder reproduces those exact counts on a synthetic borough-style
patch.  ``S_new`` is an *explicit* 7-element candidate set here (unlike
the full instances, where every non-stop node is a candidate), so the
exhaustive OPT enumerates subsets of just 14 stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.utility import BRRInstance
from ..demand.query import QuerySet
from ..exceptions import ConfigurationError
from ..network.generators import grid_city
from ..network.graph import RoadNetwork
from ..transit.builder import place_stops_along_path
from ..transit.network import TransitNetwork
from ..transit.route import BusRoute
from ..network.engine import engine_for


@dataclass
class SmallExtract:
    """The OPT-comparison instance bundle.

    Attributes:
        network: ~110-node road patch.
        transit: routes giving exactly 7 existing stops.
        queries: 132 query nodes.
        candidates: the explicit 7-element ``S_new``.
    """

    network: RoadNetwork
    transit: TransitNetwork
    queries: QuerySet
    candidates: List[int]

    def instance(self, alpha: float = 1.0) -> BRRInstance:
        """A BRR instance with the explicit candidate set."""
        return BRRInstance(
            self.transit, self.queries, candidates=self.candidates, alpha=alpha
        )


def small_nyc_extract(
    *,
    num_existing: int = 7,
    num_candidates: int = 7,
    num_query_nodes: int = 132,
    seed: int = 3,
) -> SmallExtract:
    """Build the Fig. 11a extract (defaults match the paper's counts).

    Raises:
        ConfigurationError: if the parameters cannot be satisfied.
    """
    if num_existing < 2:
        raise ConfigurationError("need at least 2 existing stops for routes")
    rng = np.random.default_rng(seed)
    network = grid_city(rows=11, cols=10, block_km=0.3, jitter=0.1,
                        removal_fraction=0.0, diagonal_fraction=0.15, seed=seed)

    transit = _transit_with_exact_stops(network, num_existing, rng)
    existing = set(transit.existing_stops)

    # Candidates: spread over non-stop nodes, biased away from stops so
    # they carry real walking gains.
    non_stops = [v for v in network.nodes() if v not in existing]
    picks = rng.choice(len(non_stops), size=num_candidates, replace=False)
    candidates = sorted(int(non_stops[int(i)]) for i in picks)

    query_nodes = [
        int(rng.integers(0, network.num_nodes)) for _ in range(num_query_nodes)
    ]
    queries = QuerySet(network, query_nodes, name="small-NYC")
    return SmallExtract(network, transit, queries, candidates)


def _transit_with_exact_stops(
    network: RoadNetwork, num_existing: int, rng: np.random.Generator
) -> TransitNetwork:
    """Two or three routes whose union has exactly ``num_existing``
    stops, with at least one shared stop (so connectivity is a real
    coverage function, not a count)."""
    for attempt in range(50):
        hub = int(rng.integers(0, network.num_nodes))
        ends = rng.choice(network.num_nodes, size=3, replace=False)
        routes: List[BusRoute] = []
        all_stops: List[int] = []
        for i, end in enumerate(int(e) for e in ends):
            if end == hub:
                continue
            path, cost = engine_for(network).path(hub, end, phase="dataset")
            if len(path) < 3:
                continue
            stops = place_stops_along_path(network, path, spacing_km=1.0)
            routes.append(BusRoute(f"small_{i}", stops, path))
            all_stops.extend(stops)
        distinct = sorted(set(all_stops))
        if len(distinct) == num_existing and len(routes) >= 2:
            return TransitNetwork(network, routes)
        # Retry with a different geometry until the count is exact.
    # Fallback: trim/pad one route's stops deterministically.
    return _force_stop_count(network, num_existing, rng)


def _force_stop_count(
    network: RoadNetwork, num_existing: int, rng: np.random.Generator
) -> TransitNetwork:
    """Deterministic fallback: lay one long path and cut exactly
    ``num_existing`` stops from it, split across two routes sharing the
    middle stop."""
    corner_a, corner_b = 0, network.num_nodes - 1
    path, _ = engine_for(network).path(corner_a, corner_b, phase="dataset")
    if len(path) < num_existing:
        raise ConfigurationError("network too small for the requested stop count")
    indices = np.linspace(0, len(path) - 1, num_existing)
    stops = []
    for i in indices:
        node = path[int(round(float(i)))]
        if node not in stops:
            stops.append(node)
    while len(stops) < num_existing:
        extra = next(v for v in path if v not in stops)
        stops.append(extra)
        stops.sort(key=path.index)
    mid = len(stops) // 2
    route_a_stops = stops[: mid + 1]
    route_b_stops = stops[mid:]
    path_a = path[: path.index(route_a_stops[-1]) + 1]
    path_b = path[path.index(route_b_stops[0]):]
    routes = [
        BusRoute("small_a", route_a_stops, path_a),
        BusRoute("small_b", route_b_stops, path_b),
    ]
    return TransitNetwork(network, routes)
