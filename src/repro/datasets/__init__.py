"""Synthetic datasets standing in for the paper's Chicago / NYC /
Orlando data, the small OPT-comparison extract, and a cached registry."""

from .cities import PAPER_SIZES, CityDataset, chicago, nyc, orlando
from .registry import available_cities, clear_cache, load_city
from .small import SmallExtract, small_nyc_extract

__all__ = [
    "CityDataset",
    "chicago",
    "nyc",
    "orlando",
    "PAPER_SIZES",
    "load_city",
    "available_cities",
    "clear_cache",
    "SmallExtract",
    "small_nyc_extract",
]
