"""The transit network: all existing routes and stops (Definition 3),
``routes(v)``, and the connectivity function (Definition 7).

Connectivity is a coverage function over routes.  Following the paper's
Section IV-C remark, route memberships are packed into *bitmasks* (one
bit per route, stored in arbitrary-precision ints): the marginal gain
``ΔConnect_B(v)`` is then a popcount of ``mask(v) & ~covered``, which
is what makes existing-stop evaluations O(1)-ish instead of set unions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..exceptions import TransitError
from ..network.graph import RoadNetwork
from .route import BusRoute
from .stop import BusStop


class TransitNetwork:
    """All existing bus routes of a city over a road network.

    Args:
        network: the underlying road network.
        routes: the existing routes ``R_existing``.  Every node they
            reference must exist on ``network``.
        validate_paths: also verify each route's path is a real road
            path (slower; on by default).
    """

    def __init__(
        self,
        network: RoadNetwork,
        routes: Sequence[BusRoute],
        *,
        validate_paths: bool = True,
    ) -> None:
        self._network = network
        self._routes: List[BusRoute] = list(routes)
        route_ids = [r.route_id for r in self._routes]
        if len(set(route_ids)) != len(route_ids):
            raise TransitError("duplicate route ids in transit network")
        self._routes_of_stop: Dict[int, List[int]] = {}
        for idx, route in enumerate(self._routes):
            if validate_paths:
                route.validate_on(network)
            else:
                for node in route.stops:
                    if not (0 <= node < network.num_nodes):
                        raise TransitError(
                            f"route {route.route_id!r} stop {node} outside network"
                        )
            for stop in route.stops:
                self._routes_of_stop.setdefault(stop, []).append(idx)
        self._stops: List[int] = sorted(self._routes_of_stop)
        self._masks: Dict[int, int] = {
            stop: _mask_of(indices) for stop, indices in self._routes_of_stop.items()
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def road_network(self) -> RoadNetwork:
        """The underlying road network."""
        return self._network

    @property
    def num_routes(self) -> int:
        """Number of existing routes ``|R_existing|``."""
        return len(self._routes)

    @property
    def existing_stops(self) -> List[int]:
        """``S_existing``: all nodes served by at least one route
        (sorted; a fresh copy each call)."""
        return list(self._stops)

    def existing_stop_mask(self) -> List[bool]:
        """Boolean mask over road nodes, true on existing stops."""
        mask = [False] * self._network.num_nodes
        for stop in self._stops:
            mask[stop] = True
        return mask

    def routes(self) -> List[BusRoute]:
        """All existing routes (a copy of the list)."""
        return list(self._routes)

    def route(self, index: int) -> BusRoute:
        """The route at position ``index``."""
        return self._routes[index]

    def is_stop(self, node: int) -> bool:
        """Whether ``node`` is an existing stop."""
        return node in self._routes_of_stop

    def routes_through(self, node: int) -> List[BusRoute]:
        """``routes(v)``: the existing routes passing through ``node``
        (Definition 7).  Empty for non-stops."""
        return [self._routes[i] for i in self._routes_of_stop.get(node, ())]

    def route_mask(self, node: int) -> int:
        """Bitmask of route indices through ``node`` (0 for non-stops)."""
        return self._masks.get(node, 0)

    def degree(self, node: int) -> int:
        """``|routes(v)|``: how many routes serve the stop."""
        return len(self._routes_of_stop.get(node, ()))

    # ------------------------------------------------------------------
    # Connectivity (Definition 7)
    # ------------------------------------------------------------------

    def connectivity(self, stops: Iterable[int]) -> int:
        """``Connect(B)``: number of distinct existing routes passing
        through the existing stops in ``B``.

        Non-stop members of ``B`` (i.e. new stops) contribute nothing,
        matching ``Connect(B) = Connect(B \\ S_new)``.
        """
        mask = 0
        for stop in stops:
            mask |= self._masks.get(stop, 0)
        return _popcount(mask)

    def connectivity_mask(self, stops: Iterable[int]) -> int:
        """The union bitmask for ``B`` (popcount = ``Connect(B)``)."""
        mask = 0
        for stop in stops:
            mask |= self._masks.get(stop, 0)
        return mask

    def marginal_connectivity(self, node: int, covered_mask: int) -> int:
        """``Connect(B ∪ {v}) − Connect(B)`` given ``B``'s union mask."""
        return _popcount(self._masks.get(node, 0) & ~covered_mask)

    # ------------------------------------------------------------------
    # Mutation (returns new objects; TransitNetwork itself is immutable)
    # ------------------------------------------------------------------

    def with_route(self, route: BusRoute) -> "TransitNetwork":
        """A new transit network with ``route`` added (used to measure
        the system *after* the planned route is incorporated)."""
        return TransitNetwork(self._network, self._routes + [route])

    def stops_as_objects(self) -> List[BusStop]:
        """Existing stops as :class:`BusStop` records."""
        return [BusStop(node=v) for v in self._stops]

    def __repr__(self) -> str:
        return (
            f"TransitNetwork(routes={self.num_routes}, "
            f"stops={len(self._stops)})"
        )


def _mask_of(indices: Iterable[int]) -> int:
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised only on 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")
