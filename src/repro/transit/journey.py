"""A multimodal journey planner (walk + ride + transfer).

Figure 11b of the paper evaluates the *travel cost* of whole trips —
walking to a stop, riding buses, transferring — in minutes, before and
after the new route is incorporated.  This module implements that cost
model as a Dijkstra search over an implicit layered graph:

* **walk layer** — the road network, traversed at walking speed;
* **ride layers** — one chain of states per route (route, stop index),
  traversed at bus speed along the route's road path;
* **board edges** — walk node -> ride state at that stop, charged a
  boarding penalty (average wait);
* **alight edges** — ride state -> walk node, free.

A transfer therefore costs alight + walk (possibly zero) + board, which
reproduces the paper's "walking cost + transit cost + transfer cost"
decomposition without modelling timetables.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from ..network.graph import RoadNetwork
from .network import TransitNetwork
from .route import BusRoute

INF = math.inf


@dataclass(frozen=True)
class JourneyLeg:
    """One leg of a reconstructed itinerary.

    Attributes:
        mode: ``"walk"`` or ``"ride"``.
        nodes: the road nodes traversed (for rides: the stops passed).
        route_id: the route ridden (rides only).
        minutes: the leg's duration, including the boarding penalty for
            ride legs.
    """

    mode: str
    nodes: Tuple[int, ...]
    minutes: float
    route_id: Optional[str] = None


@dataclass(frozen=True)
class Itinerary:
    """A full door-to-door journey.

    Attributes:
        legs: walk/ride legs in travel order (consecutive same-mode walk
            steps are merged).
        minutes: total duration (equals
            :meth:`JourneyPlanner.travel_time` for the same pair).
    """

    legs: Tuple[JourneyLeg, ...]
    minutes: float

    @property
    def num_boardings(self) -> int:
        """How many buses the journey boards."""
        return sum(1 for leg in self.legs if leg.mode == "ride")

    def describe(self) -> str:
        """A compact human-readable line per leg."""
        parts = []
        for leg in self.legs:
            if leg.mode == "walk":
                parts.append(
                    f"walk {leg.nodes[0]}->{leg.nodes[-1]} "
                    f"({leg.minutes:.1f} min)"
                )
            else:
                parts.append(
                    f"ride {leg.route_id} {leg.nodes[0]}->{leg.nodes[-1]} "
                    f"({leg.minutes:.1f} min)"
                )
        return "; ".join(parts) if parts else "stay put"


class JourneyPlanner:
    """Door-to-door travel time queries over a transit network.

    Args:
        transit: the transit network (existing routes, or existing plus
            the newly planned one via :meth:`TransitNetwork.with_route`).
        walk_speed_kmh: walking speed (default 5 km/h).
        bus_speed_kmh: in-vehicle bus speed (default 20 km/h, an urban
            average including dwell times).
        boarding_penalty_min: minutes charged every time a bus is
            boarded (average wait at the stop).
    """

    def __init__(
        self,
        transit: TransitNetwork,
        *,
        walk_speed_kmh: float = 5.0,
        bus_speed_kmh: float = 20.0,
        boarding_penalty_min: float = 5.0,
    ) -> None:
        if walk_speed_kmh <= 0 or bus_speed_kmh <= 0:
            raise ConfigurationError("speeds must be positive")
        if boarding_penalty_min < 0:
            raise ConfigurationError("boarding penalty must be non-negative")
        self._transit = transit
        self._network: RoadNetwork = transit.road_network
        # The walk layer rides on the shared engine's CSR adjacency and
        # accounts its searches to the engine's "journey" counters.
        self._engine = engine_for(self._network)
        self._walk_min_per_km = 60.0 / walk_speed_kmh
        self._bus_min_per_km = 60.0 / bus_speed_kmh
        self._board_min = boarding_penalty_min
        self._build_ride_states()

    def _build_ride_states(self) -> None:
        """Assign a dense state id to every (route, stop position) and
        precompute ride-segment times between consecutive stops."""
        n = self._network.num_nodes
        self._ride_offset = n
        self._ride_node: List[int] = []        # state -> road node of the stop
        self._ride_route: List[str] = []       # state -> route id
        self._ride_next: List[Tuple[int, float]] = []  # state -> (next state, minutes)
        self._ride_prev: List[Tuple[int, float]] = []
        self._states_at_node: Dict[int, List[int]] = {}
        state = 0
        for route in self._transit.routes():
            seg_minutes = self._segment_minutes(route)
            first_state = state
            for pos, stop in enumerate(route.stops):
                self._ride_node.append(stop)
                self._ride_route.append(route.route_id)
                self._states_at_node.setdefault(stop, []).append(
                    self._ride_offset + state
                )
                state += 1
            for pos in range(len(route.stops)):
                sid = first_state + pos
                if pos + 1 < len(route.stops):
                    self._ride_next.append((sid + 1, seg_minutes[pos]))
                else:
                    self._ride_next.append((-1, 0.0))
                if pos > 0:
                    self._ride_prev.append((sid - 1, seg_minutes[pos - 1]))
                else:
                    self._ride_prev.append((-1, 0.0))
        self._num_states = self._ride_offset + state

    def _segment_minutes(self, route: BusRoute) -> List[float]:
        """In-vehicle minutes between consecutive stops of ``route``."""
        costs = route.adjacent_stop_costs(self._network)
        return [c * self._bus_min_per_km for c in costs]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def travel_time(self, origin: int, destination: int) -> float:
        """Door-to-door minutes from ``origin`` to ``destination``.

        The all-walking journey is always admissible, so the result is
        finite on a connected network and never exceeds the pure walking
        time.
        """
        if origin == destination:
            return 0.0
        dist, _ = self._run_dijkstra(origin, destination)
        return dist.get(destination, INF)

    def average_travel_time(
        self, trips: Sequence[Tuple[int, int]]
    ) -> float:
        """Mean door-to-door minutes over origin/destination pairs."""
        if not trips:
            raise ConfigurationError("average_travel_time needs at least one trip")
        return sum(self.travel_time(o, d) for o, d in trips) / len(trips)

    # ------------------------------------------------------------------
    # Itinerary reconstruction
    # ------------------------------------------------------------------

    def journey(self, origin: int, destination: int) -> Itinerary:
        """The fastest itinerary as explicit walk/ride legs.

        The total duration equals :meth:`travel_time` for the same
        pair; the legs say *how* — where to walk, which route to board,
        where to alight.
        """
        if origin == destination:
            return Itinerary(legs=(), minutes=0.0)
        dist, parent = self._run_dijkstra(origin, destination)
        if destination not in dist:
            return Itinerary(legs=(), minutes=INF)
        states = [destination]
        while states[-1] != origin:
            states.append(parent[states[-1]])
        states.reverse()
        return self._decode(states, dist)

    def _run_dijkstra(
        self, origin: int, destination: int
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """The one Dijkstra over the layered graph, shared by
        :meth:`travel_time` and :meth:`journey`.

        Every relaxation goes through :func:`_relax` below, so the two
        public queries cannot drift apart in either their distances or
        their search accounting again (an earlier revision of the
        parent-tracking twin of this loop forgot to count the alight
        push).  Stops as soon as ``destination`` settles.
        """
        csr = self._engine.csr
        indptr, targets, costs = csr.indptr, csr.targets, csr.costs
        stats = self._engine.counters("journey")
        stats.searches += 1
        dist: Dict[int, float] = {origin: 0.0}
        parent: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, origin)]
        offset = self._ride_offset

        def _relax(u: int, v: int, nd: float) -> None:
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
                stats.pushes += 1

        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                continue
            stats.settled += 1
            if u == destination:
                break
            if u < offset:
                # Known pre-ratchet hot loop (ROADMAP item 2): the walk
                # layer relaxes CSR slices in Python because the journey
                # graph interleaves board/alight edges; pending a
                # multimodal kernel primitive.  Counted by
                # lint-baseline.json — may only shrink.
                for i in range(indptr[u], indptr[u + 1]):  # reprolint: disable=RL012
                    _relax(u, targets[i], d + costs[i] * self._walk_min_per_km)
                # board edges
                for state in self._states_at_node.get(u, ()):
                    _relax(u, state, d + self._board_min)
            else:
                sid = u - offset
                # alight edge (free)
                _relax(u, self._ride_node[sid], d)
                # ride edges along the route, both directions
                for nxt, minutes in (self._ride_next[sid], self._ride_prev[sid]):
                    if nxt >= 0:
                        _relax(u, offset + nxt, d + minutes)
        return dist, parent

    def _decode(
        self, states: Sequence[int], dist: Dict[int, float]
    ) -> Itinerary:
        offset = self._ride_offset
        legs: List[JourneyLeg] = []
        walk_nodes: List[int] = []
        walk_start_time = 0.0
        ride_stops: List[int] = []
        ride_start_time = 0.0
        ride_route: Optional[str] = None

        def flush_walk(end_time: float) -> None:
            nonlocal walk_nodes
            if len(walk_nodes) > 1:
                legs.append(
                    JourneyLeg(
                        mode="walk",
                        nodes=tuple(walk_nodes),
                        minutes=end_time - walk_start_time,
                    )
                )
            walk_nodes = []

        for index, state in enumerate(states):
            time_here = dist[state]
            if state < offset:
                if ride_stops:
                    # alighting: close the ride leg
                    legs.append(
                        JourneyLeg(
                            mode="ride",
                            nodes=tuple(ride_stops),
                            minutes=time_here - ride_start_time,
                            route_id=ride_route,
                        )
                    )
                    ride_stops = []
                    ride_route = None
                if not walk_nodes:
                    walk_start_time = time_here
                walk_nodes.append(state)
            else:
                sid = state - offset
                if not ride_stops:
                    # boarding: close any walk leg at the stop
                    flush_walk(dist[states[index - 1]])
                    ride_start_time = dist[states[index - 1]]
                    ride_route = self._ride_route[sid]
                ride_stops.append(self._ride_node[sid])
        flush_walk(dist[states[-1]])
        total = dist[states[-1]]
        return Itinerary(legs=tuple(legs), minutes=total)


def travel_cost_decrease(
    transit_before: TransitNetwork,
    new_route: BusRoute,
    trips: Sequence[Tuple[int, int]],
    *,
    walk_speed_kmh: float = 5.0,
    bus_speed_kmh: float = 20.0,
    boarding_penalty_min: float = 5.0,
) -> float:
    """Average decrease (minutes) in door-to-door travel time once
    ``new_route`` joins the transit system — the quantity of Fig. 11b.

    Non-negative by construction: adding a route can only add journey
    options.
    """
    kwargs = dict(
        walk_speed_kmh=walk_speed_kmh,
        bus_speed_kmh=bus_speed_kmh,
        boarding_penalty_min=boarding_penalty_min,
    )
    before = JourneyPlanner(transit_before, **kwargs)
    after = JourneyPlanner(transit_before.with_route(new_route), **kwargs)
    total = 0.0
    for origin, destination in trips:
        total += before.travel_time(origin, destination) - after.travel_time(
            origin, destination
        )
    return total / len(trips) if trips else 0.0
