"""Transit substrate: stops, routes, the transit network, a synthetic
feed builder, GTFS-like persistence, and the multimodal journey planner.
"""

from .analysis import (
    TransitSummary,
    demand_coverage,
    route_overlap_matrix,
    summarize_transit,
    transfer_degree_histogram,
)
from .builder import build_transit_network, place_stops_along_path
from .frequency import FrequencyPlan, estimate_boardings, set_frequency
from .gtfs import load_transit, save_transit
from .gtfs_real import GtfsImportReport, load_gtfs_feed
from .journey import Itinerary, JourneyLeg, JourneyPlanner, travel_cost_decrease
from .network import TransitNetwork
from .route import BusRoute
from .stop import BusStop
from .validation import Finding, ValidationReport, validate_feed

__all__ = [
    "BusStop",
    "BusRoute",
    "TransitNetwork",
    "build_transit_network",
    "place_stops_along_path",
    "save_transit",
    "FrequencyPlan",
    "set_frequency",
    "estimate_boardings",
    "TransitSummary",
    "summarize_transit",
    "transfer_degree_histogram",
    "route_overlap_matrix",
    "demand_coverage",
    "validate_feed",
    "ValidationReport",
    "Finding",
    "load_transit",
    "load_gtfs_feed",
    "GtfsImportReport",
    "JourneyPlanner",
    "Itinerary",
    "JourneyLeg",
    "travel_cost_decrease",
]
