"""Bus stops (Definition 3).

A bus stop is a node of the road network.  :class:`BusStop` attaches
the human-facing metadata a transit feed carries (an id and a name) to
that node; the algorithms themselves only ever use the node id.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BusStop:
    """An existing bus stop pinned to a road network node.

    Attributes:
        node: the road network node the stop occupies.
        stop_id: feed-level identifier (defaults to ``stop_<node>``).
        name: display name, if any.
    """

    node: int
    stop_id: str = ""
    name: str = ""

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"stop node must be non-negative, got {self.node}")
        if not self.stop_id:
            object.__setattr__(self, "stop_id", f"stop_{self.node}")
