"""Bus routes (Definition 3 and Definition 8).

A route ``r = (B_r, π_r)`` is a set of stops together with the road
path that links them.  :class:`BusRoute` stores the stops in visiting
order (the order is what the adjacent-cost constraint of Definition 8
is checked against) and the full node path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import TransitError
from ..network.graph import RoadNetwork


@dataclass(frozen=True)
class BusRoute:
    """A bus route: ordered stops plus the road path through them.

    Attributes:
        route_id: feed-level identifier.
        stops: the ordered stop nodes ``B_r`` (visiting order).
        path: the node path ``π_r`` connecting all stops; must contain
            every stop, in the same relative order.
    """

    route_id: str
    stops: Tuple[int, ...]
    path: Tuple[int, ...]

    def __init__(
        self,
        route_id: str,
        stops: Sequence[int],
        path: Optional[Sequence[int]] = None,
    ) -> None:
        object.__setattr__(self, "route_id", str(route_id))
        object.__setattr__(self, "stops", tuple(stops))
        object.__setattr__(self, "path", tuple(path) if path is not None else tuple(stops))
        if len(self.stops) == 0:
            raise TransitError(f"route {route_id!r} has no stops")
        if len(set(self.stops)) != len(self.stops):
            raise TransitError(f"route {route_id!r} visits a stop twice")
        if not _is_subsequence(self.stops, self.path):
            raise TransitError(
                f"route {route_id!r}: stops must appear in order along the path"
            )

    @property
    def num_stops(self) -> int:
        """Number of stops ``|B_r|``."""
        return len(self.stops)

    @property
    def stop_set(self) -> frozenset:
        """The stop set ``B_r`` (unordered)."""
        return frozenset(self.stops)

    def validate_on(self, network: RoadNetwork) -> None:
        """Check the path is a valid road path on ``network``.

        Raises:
            TransitError: if any node is out of range or two consecutive
                path nodes are not adjacent.
        """
        n = network.num_nodes
        for node in self.path:
            if not (0 <= node < n):
                raise TransitError(
                    f"route {self.route_id!r} references node {node} outside the network"
                )
        if len(self.path) > 1 and not network.is_path(self.path):
            raise TransitError(f"route {self.route_id!r} path is not a road path")

    def length(self, network: RoadNetwork) -> float:
        """Cost of the route path on ``network`` (Definition 2)."""
        return network.path_cost(self.path) if len(self.path) > 1 else 0.0

    def adjacent_stop_costs(self, network: RoadNetwork) -> List[float]:
        """Path cost between each pair of consecutive stops, following
        the route path (used to check the constraint of ``C``)."""
        costs: List[float] = []
        positions = _stop_positions(self.stops, self.path)
        for i in range(len(self.stops) - 1):
            lo, hi = positions[i], positions[i + 1]
            segment = self.path[lo : hi + 1]
            costs.append(network.path_cost(segment) if len(segment) > 1 else 0.0)
        return costs

    def satisfies_constraints(
        self, network: RoadNetwork, max_stops: int, max_adjacent_cost: float
    ) -> bool:
        """Whether the route satisfies Definition 8 for ``K`` and ``C``
        (up to a 1e-9 tolerance on the cost)."""
        if self.num_stops > max_stops:
            return False
        return all(
            c <= max_adjacent_cost + 1e-9 for c in self.adjacent_stop_costs(network)
        )


def _is_subsequence(needle: Sequence[int], haystack: Sequence[int]) -> bool:
    it = iter(haystack)
    return all(any(x == h for h in it) for x in needle)


def _stop_positions(stops: Sequence[int], path: Sequence[int]) -> List[int]:
    """Index in ``path`` of each stop, scanning left to right."""
    positions: List[int] = []
    cursor = 0
    for stop in stops:
        # cannot run off the end: the constructor checked the stops form
        # a subsequence of the path
        while path[cursor] != stop:
            cursor += 1
        positions.append(cursor)
        if cursor + 1 < len(path):
            cursor += 1
    return positions
