"""Synthetic transit network construction.

Stands in for the CTA / MTA / Lynx feeds of the paper.  Routes are laid
out the way real bus networks grow: pick pairs of high-activity hubs,
run each route along the road shortest path between them, and place
stops every ~400 m along the way.  Hubs are drawn from a spatially
biased distribution so that several routes share stops downtown — which
is what gives ``Connect`` its coverage structure (stops served by many
routes are valuable transfer points).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import TransitError
from ..network.engine import engine_for
from ..network.geometry import bounding_box, euclidean
from ..network.graph import RoadNetwork
from .network import TransitNetwork
from .route import BusRoute


def build_transit_network(
    network: RoadNetwork,
    num_routes: int,
    *,
    stop_spacing_km: float = 0.4,
    num_hubs: Optional[int] = None,
    hub_concentration: float = 2.0,
    seed: int = 0,
) -> TransitNetwork:
    """Generate a synthetic existing transit network.

    Args:
        network: the road network to route over.
        num_routes: how many bus routes to create.
        stop_spacing_km: target cost between consecutive stops.
        num_hubs: number of hub nodes routes start/end at; defaults to
            ``max(4, num_routes // 2)``.
        hub_concentration: >1 biases hubs toward the city centre, which
            makes downtown stops shared by many routes (realistic
            transfer structure).  1.0 places hubs uniformly.
        seed: RNG seed.

    Raises:
        TransitError: if ``num_routes < 1`` or the network is too small.
    """
    if num_routes < 1:
        raise TransitError(f"num_routes must be >= 1, got {num_routes}")
    if network.num_nodes < 4:
        raise TransitError("network too small to host a transit system")
    rng = np.random.default_rng(seed)
    hubs = _pick_hubs(
        network,
        num_hubs if num_hubs is not None else max(4, num_routes // 2),
        hub_concentration,
        rng,
    )

    routes: List[BusRoute] = []
    attempts = 0
    while len(routes) < num_routes and attempts < num_routes * 20:
        attempts += 1
        a, b = rng.choice(len(hubs), size=2, replace=False)
        start, end = hubs[int(a)], hubs[int(b)]
        if start == end:
            continue
        try:
            path, cost = engine_for(network).path(start, end, phase="transit")
        except Exception:  # unreachable pair on exotic subgraphs
            continue
        if len(path) < 2:
            continue
        stops = place_stops_along_path(network, path, stop_spacing_km)
        if len(stops) < 2:
            continue
        routes.append(BusRoute(f"route_{len(routes)}", stops, path))
    if len(routes) < num_routes:
        raise TransitError(
            f"could only construct {len(routes)}/{num_routes} routes; "
            "network may be too small or too disconnected"
        )
    return TransitNetwork(network, routes)


def place_stops_along_path(
    network: RoadNetwork, path: Sequence[int], spacing_km: float
) -> List[int]:
    """Greedy stop placement along a path: the first node, then the
    farthest subsequent node whose along-path cost since the previous
    stop stays at most ``spacing_km`` — falling back to the immediate
    next node for edges longer than the spacing — and always the last
    node.  Consecutive-stop costs therefore never exceed
    ``max(spacing_km, longest edge on the path)``.
    """
    if spacing_km <= 0:
        raise TransitError(f"spacing must be positive, got {spacing_km}")
    if len(path) == 0:
        return []
    stops = [path[0]]
    accumulated = 0.0
    for i in range(1, len(path)):
        step = network.edge_cost(path[i - 1], path[i])
        if accumulated + step > spacing_km and accumulated > 0.0:
            stops.append(path[i - 1])
            accumulated = step
        else:
            accumulated += step
    if path[-1] != stops[-1]:
        stops.append(path[-1])
    # Deduplicate while preserving order (paths may revisit a node).
    seen = set()
    unique = []
    for s in stops:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def _pick_hubs(
    network: RoadNetwork,
    num_hubs: int,
    concentration: float,
    rng: np.random.Generator,
) -> List[int]:
    """Sample hub nodes biased toward the city centre.

    Weight of node v is ``(1 - normalized distance to centroid) **
    concentration`` plus a small floor so outskirts still get routes.
    """
    coords = network.coordinates()
    min_x, min_y, max_x, max_y = bounding_box(coords)
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
    half_diag = max(euclidean((min_x, min_y), (max_x, max_y)) / 2.0, 1e-9)
    weights = np.empty(network.num_nodes, dtype=float)
    for v, (x, y) in enumerate(coords):
        closeness = 1.0 - min(1.0, euclidean((x, y), (cx, cy)) / half_diag)
        weights[v] = 0.05 + closeness ** max(concentration, 0.0)
    weights /= weights.sum()
    count = min(num_hubs, network.num_nodes)
    chosen = rng.choice(network.num_nodes, size=count, replace=False, p=weights)
    return [int(v) for v in chosen]
