"""Transit feed validation.

Real feeds arrive with problems — stops off the network, absurd stop
spacing, routes whose paths teleport.  :func:`validate_feed` audits a
:class:`~repro.transit.network.TransitNetwork` (which already enforces
hard structural rules at construction) for the *soft* quality issues a
planner should review before trusting results, and returns a structured
report instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import ConfigurationError
from .network import TransitNetwork

#: severity levels, ordered
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One validation finding.

    Attributes:
        severity: ``info`` / ``warning`` / ``error``.
        code: stable machine-readable identifier.
        message: human-readable description.
        route_id: the offending route, when applicable.
    """

    severity: str
    code: str
    message: str
    route_id: Optional[str] = None


@dataclass
class ValidationReport:
    """All findings for one feed."""

    findings: List[Finding] = field(default_factory=list)

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        route_id: Optional[str] = None,
    ) -> None:
        if severity not in SEVERITIES:
            raise ConfigurationError(f"unknown severity {severity!r}")
        self.findings.append(Finding(severity, code, message, route_id))

    @property
    def ok(self) -> bool:
        """True when no warnings or errors were found."""
        return all(f.severity == "info" for f in self.findings)

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def summary(self) -> str:
        counts = {s: len(self.by_severity(s)) for s in SEVERITIES}
        return (
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} notes"
        )


def validate_feed(
    transit: TransitNetwork,
    *,
    max_stop_spacing_km: float = 2.0,
    min_stop_spacing_km: float = 0.1,
    min_stops_per_route: int = 2,
    max_detour_factor: float = 3.0,
) -> ValidationReport:
    """Audit a transit network for soft quality issues.

    Checks, per route: stop count, adjacent stop spacing outside the
    ``[min, max]`` band, and path detour (path cost much larger than
    the shortest network cost between its terminals).  Network-level:
    isolated single-route stops share, and whether any transfer stop
    exists at all.
    """
    if min_stop_spacing_km >= max_stop_spacing_km:
        raise ConfigurationError("spacing band must satisfy min < max")
    report = ValidationReport()
    network = transit.road_network

    for route in transit.routes():
        if route.num_stops < min_stops_per_route:
            report.add(
                "warning",
                "too-few-stops",
                f"route {route.route_id!r} has {route.num_stops} stop(s)",
                route.route_id,
            )
            continue
        spacings = route.adjacent_stop_costs(network)
        for i, spacing in enumerate(spacings):
            if spacing > max_stop_spacing_km:
                report.add(
                    "warning",
                    "spacing-too-wide",
                    f"route {route.route_id!r} leg {i} spans "
                    f"{spacing:.2f} km (> {max_stop_spacing_km})",
                    route.route_id,
                )
            elif spacing < min_stop_spacing_km:
                report.add(
                    "info",
                    "spacing-very-tight",
                    f"route {route.route_id!r} leg {i} spans "
                    f"{spacing:.3f} km (< {min_stop_spacing_km})",
                    route.route_id,
                )
        detour = _detour_factor(transit, route)
        if detour is not None and detour > max_detour_factor:
            report.add(
                "warning",
                "excessive-detour",
                f"route {route.route_id!r} path is {detour:.1f}x the "
                "shortest terminal-to-terminal cost",
                route.route_id,
            )

    degrees = [transit.degree(s) for s in transit.existing_stops]
    if degrees and max(degrees) < 2:
        report.add(
            "warning",
            "no-transfer-stops",
            "no stop serves two routes: the network has no transfers",
        )
    if degrees:
        isolated_share = sum(1 for d in degrees if d == 1) / len(degrees)
        report.add(
            "info",
            "single-route-stops",
            f"{100 * isolated_share:.0f}% of stops serve a single route",
        )
    return report


def _detour_factor(transit: TransitNetwork, route) -> Optional[float]:
    """Route path cost over the shortest terminal-to-terminal cost."""
    from ..network.engine import engine_for

    if route.num_stops < 2 or len(route.path) < 2:
        return None
    network = transit.road_network
    direct = engine_for(network).distance(
        route.path[0], route.path[-1], phase="transit"
    )
    if direct <= 0:
        return None
    return route.length(network) / direct
