"""Importer for standard GTFS feeds.

The paper's transit data comes from agencies (CTA, MTA, Lynx) that
publish **GTFS** — the de-facto standard: ``stops.txt`` (lat/lon),
``trips.txt`` (route -> trips), ``stop_times.txt`` (per-trip ordered
stop sequences).  This module turns such a feed into a
:class:`~repro.transit.network.TransitNetwork` over an existing road
network:

1. project stop lat/lon to the network's planar kilometre frame (the
   same equirectangular convention as :mod:`repro.network.dimacs`);
2. snap each stop to its nearest road node (reporting snap distances so
   bad georeferencing is visible);
3. per route, take the trip with the most stops as the representative
   pattern (the common simplification for planning studies);
4. connect consecutive stops with road shortest paths.

Only the three files above are required; all other GTFS files are
ignored.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import DataFormatError, TransitError
from ..network.dimacs import KM_PER_DEGREE
from ..network.engine import engine_for
from ..network.geometry import GridIndex
from ..network.graph import RoadNetwork
from .network import TransitNetwork
from .route import BusRoute

PathLike = Union[str, Path]


@dataclass
class GtfsImportReport:
    """What the import did.

    Attributes:
        num_stops: distinct GTFS stops read.
        num_routes: routes imported.
        max_snap_km: worst stop-to-node snap distance (large values
            mean the feed and the network are not georeferenced alike).
        mean_snap_km: average snap distance.
        skipped_routes: route ids dropped (fewer than two usable stops).
    """

    num_stops: int = 0
    num_routes: int = 0
    max_snap_km: float = 0.0
    mean_snap_km: float = 0.0
    skipped_routes: List[str] = field(default_factory=list)


def load_gtfs_feed(
    network: RoadNetwork,
    directory: PathLike,
    *,
    cos_lat: Optional[float] = None,
) -> Tuple[TransitNetwork, GtfsImportReport]:
    """Import a GTFS feed (see module docstring).

    Args:
        network: the road network to snap onto (planar km frame).
        directory: folder containing ``stops.txt``, ``trips.txt``,
            ``stop_times.txt``.
        cos_lat: the longitude-compression factor of the network's
            projection; defaults to ``cos(mean stop latitude)``, which
            matches how :func:`repro.network.read_dimacs` projected the
            network when both come from the same region.

    Returns:
        ``(transit, report)``.

    Raises:
        DataFormatError: on missing files/columns or malformed rows.
        TransitError: if no route survives the import.
    """
    directory = Path(directory)
    stops = _read_stops(directory / "stops.txt")
    trips = _read_trips(directory / "trips.txt")
    sequences = _read_stop_times(directory / "stop_times.txt")

    if cos_lat is None:
        mean_lat = sum(lat for lat, _ in stops.values()) / len(stops)
        cos_lat = math.cos(math.radians(mean_lat))

    # Project + snap every referenced stop once.
    index = GridIndex(network.coordinates(), cell_size=0.5)
    node_of: Dict[str, int] = {}
    snap_distances: List[float] = []
    for stop_id, (lat, lon) in stops.items():
        x = lon * KM_PER_DEGREE * cos_lat
        y = lat * KM_PER_DEGREE
        node = index.nearest((x, y))
        node_of[stop_id] = node
        nx, ny = network.coordinate(node)
        snap_distances.append(math.hypot(nx - x, ny - y))

    report = GtfsImportReport(
        num_stops=len(stops),
        max_snap_km=max(snap_distances) if snap_distances else 0.0,
        mean_snap_km=(
            sum(snap_distances) / len(snap_distances) if snap_distances else 0.0
        ),
    )

    routes: List[BusRoute] = []
    for route_id, trip_ids in sorted(trips.items()):
        pattern = _representative_pattern(route_id, trip_ids, sequences)
        if pattern is None:
            report.skipped_routes.append(route_id)
            continue
        stop_nodes = _dedupe([node_of[s] for s in pattern if s in node_of])
        if len(stop_nodes) < 2:
            report.skipped_routes.append(route_id)
            continue
        path = _stitch(network, stop_nodes)
        routes.append(BusRoute(route_id, stop_nodes, path))
    if not routes:
        raise TransitError("GTFS import produced no usable routes")
    report.num_routes = len(routes)
    return TransitNetwork(network, routes), report


# ----------------------------------------------------------------------
# File readers
# ----------------------------------------------------------------------


def _read_csv(path: Path, required: Sequence[str]) -> List[Dict[str, str]]:
    if not path.exists():
        raise DataFormatError(f"missing GTFS file {path}")
    with open(path, newline="", encoding="utf-8-sig") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not set(required).issubset(
            reader.fieldnames
        ):
            raise DataFormatError(
                f"{path}: header must contain {sorted(required)}"
            )
        return list(reader)


def _read_stops(path: Path) -> Dict[str, Tuple[float, float]]:
    rows = _read_csv(path, ["stop_id", "stop_lat", "stop_lon"])
    stops: Dict[str, Tuple[float, float]] = {}
    for row_no, row in enumerate(rows, start=2):
        try:
            stops[row["stop_id"]] = (
                float(row["stop_lat"]),
                float(row["stop_lon"]),
            )
        except ValueError as exc:
            raise DataFormatError(f"{path}:{row_no}: {exc}") from exc
    if not stops:
        raise DataFormatError(f"{path}: no stops")
    return stops


def _read_trips(path: Path) -> Dict[str, List[str]]:
    rows = _read_csv(path, ["route_id", "trip_id"])
    trips: Dict[str, List[str]] = {}
    for row in rows:
        trips.setdefault(row["route_id"], []).append(row["trip_id"])
    if not trips:
        raise DataFormatError(f"{path}: no trips")
    return trips


def _read_stop_times(path: Path) -> Dict[str, List[Tuple[int, str]]]:
    rows = _read_csv(path, ["trip_id", "stop_id", "stop_sequence"])
    sequences: Dict[str, List[Tuple[int, str]]] = {}
    for row_no, row in enumerate(rows, start=2):
        try:
            order = int(row["stop_sequence"])
        except ValueError as exc:
            raise DataFormatError(f"{path}:{row_no}: {exc}") from exc
        sequences.setdefault(row["trip_id"], []).append((order, row["stop_id"]))
    return sequences


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def _representative_pattern(
    route_id: str,
    trip_ids: Sequence[str],
    sequences: Dict[str, List[Tuple[int, str]]],
) -> Optional[List[str]]:
    """The stop-id sequence of the route's longest trip."""
    best: Optional[List[str]] = None
    for trip_id in trip_ids:
        entries = sequences.get(trip_id)
        if not entries:
            continue
        ordered = [stop for _, stop in sorted(entries)]
        if best is None or len(ordered) > len(best):
            best = ordered
    return best


def _dedupe(nodes: Sequence[int]) -> List[int]:
    seen = set()
    result = []
    for node in nodes:
        if node not in seen:
            seen.add(node)
            result.append(node)
    return result


def _stitch(network: RoadNetwork, stops: Sequence[int]) -> List[int]:
    engine = engine_for(network)
    path: List[int] = [stops[0]]
    for a, b in zip(stops, stops[1:]):
        leg, _ = engine.path(a, b, phase="transit")
        path.extend(leg[1:])
    return path
