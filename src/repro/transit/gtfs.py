"""GTFS-like CSV persistence for transit networks.

Real feeds (CTA, MTA, Lynx) distribute stops and route shapes as CSV.
This module writes/reads a minimal two-file flavour of that format so
synthetic datasets can be saved, inspected, and reloaded:

* ``stops.csv``   — ``stop_node,x,y`` (one row per distinct stop);
* ``routes.csv``  — ``route_id,stop_nodes,path_nodes`` with the node
  sequences encoded as ``|``-separated integers.

Node coordinates are written for human inspection only; on load the
node ids are authoritative and are validated against the road network.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from ..exceptions import DataFormatError
from ..network.graph import RoadNetwork
from .network import TransitNetwork
from .route import BusRoute

PathLike = Union[str, Path]

_STOPS_FILE = "stops.csv"
_ROUTES_FILE = "routes.csv"


def save_transit(transit: TransitNetwork, directory: PathLike) -> None:
    """Write a transit network to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    network = transit.road_network
    with open(directory / _STOPS_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["stop_node", "x", "y"])
        for stop in transit.existing_stops:
            x, y = network.coordinate(stop)
            writer.writerow([stop, f"{x:.6f}", f"{y:.6f}"])
    with open(directory / _ROUTES_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["route_id", "stop_nodes", "path_nodes"])
        for route in transit.routes():
            writer.writerow(
                [
                    route.route_id,
                    "|".join(str(s) for s in route.stops),
                    "|".join(str(p) for p in route.path),
                ]
            )


def load_transit(network: RoadNetwork, directory: PathLike) -> TransitNetwork:
    """Load a transit network previously written by :func:`save_transit`.

    Raises:
        DataFormatError: on missing files or malformed rows.
    """
    directory = Path(directory)
    routes_path = directory / _ROUTES_FILE
    if not routes_path.exists():
        raise DataFormatError(f"missing {routes_path}")
    routes: List[BusRoute] = []
    with open(routes_path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"route_id", "stop_nodes", "path_nodes"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise DataFormatError(
                f"{routes_path}: header must contain {sorted(required)}"
            )
        for row_no, row in enumerate(reader, start=2):
            try:
                stops = _parse_nodes(row["stop_nodes"])
                path = _parse_nodes(row["path_nodes"])
            except ValueError as exc:
                raise DataFormatError(f"{routes_path}:{row_no}: {exc}") from exc
            routes.append(BusRoute(row["route_id"], stops, path))
    return TransitNetwork(network, routes)


def _parse_nodes(field: str) -> List[int]:
    if not field:
        raise ValueError("empty node sequence")
    return [int(token) for token in field.split("|")]
