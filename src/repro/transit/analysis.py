"""Descriptive analytics of a transit network.

The measures transit papers (including this one) summarize networks
with: stop spacing, route overlap, transfer-degree distribution, and
spatial coverage of the population/demand.  Used by the examples and
handy for sanity-checking real feeds after import.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..demand.query import QuerySet
from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from .network import TransitNetwork


@dataclass(frozen=True)
class TransitSummary:
    """Aggregate statistics of a transit network.

    Attributes:
        num_routes / num_stops: sizes.
        total_route_km: summed route path lengths.
        mean_stop_spacing_km: average adjacent-stop cost over all routes.
        max_stop_spacing_km: worst adjacent-stop cost.
        mean_stops_per_route: average ``|B_r|``.
        transfer_stops: stops served by at least two routes.
        max_transfer_degree: the busiest stop's ``|routes(v)|``.
        node_coverage: fraction of road nodes within the coverage
            radius of some stop.
    """

    num_routes: int
    num_stops: int
    total_route_km: float
    mean_stop_spacing_km: float
    max_stop_spacing_km: float
    mean_stops_per_route: float
    transfer_stops: int
    max_transfer_degree: int
    node_coverage: float


def summarize_transit(
    transit: TransitNetwork, *, coverage_radius_km: float = 0.4
) -> TransitSummary:
    """Compute a :class:`TransitSummary` (see its attribute docs).

    Args:
        transit: the network to summarize.
        coverage_radius_km: walk-access radius for the coverage figure
            (400 m is the common planning standard).
    """
    if coverage_radius_km <= 0:
        raise ConfigurationError("coverage_radius_km must be positive")
    network = transit.road_network
    spacings: List[float] = []
    total_km = 0.0
    stops_per_route: List[int] = []
    for route in transit.routes():
        total_km += route.length(network)
        stops_per_route.append(route.num_stops)
        spacings.extend(route.adjacent_stop_costs(network))
    degrees = [transit.degree(s) for s in transit.existing_stops]
    covered = engine_for(network).multi_source(
        transit.existing_stops, max_cost=coverage_radius_km, phase="transit"
    )
    coverage = sum(1 for d in covered if math.isfinite(d)) / network.num_nodes
    return TransitSummary(
        num_routes=transit.num_routes,
        num_stops=len(transit.existing_stops),
        total_route_km=total_km,
        mean_stop_spacing_km=(sum(spacings) / len(spacings)) if spacings else 0.0,
        max_stop_spacing_km=max(spacings) if spacings else 0.0,
        mean_stops_per_route=(
            sum(stops_per_route) / len(stops_per_route) if stops_per_route else 0.0
        ),
        transfer_stops=sum(1 for d in degrees if d >= 2),
        max_transfer_degree=max(degrees) if degrees else 0,
        node_coverage=coverage,
    )


def transfer_degree_histogram(transit: TransitNetwork) -> Dict[int, int]:
    """``{|routes(v)|: count of stops}`` — the transfer structure."""
    histogram: Dict[int, int] = {}
    for stop in transit.existing_stops:
        degree = transit.degree(stop)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def route_overlap_matrix(transit: TransitNetwork) -> List[List[int]]:
    """``overlap[i][j]`` = number of stops shared by routes i and j
    (the diagonal is each route's own stop count)."""
    routes = transit.routes()
    stop_sets = [r.stop_set for r in routes]
    n = len(routes)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = len(stop_sets[i])
        for j in range(i + 1, n):
            shared = len(stop_sets[i] & stop_sets[j])
            matrix[i][j] = shared
            matrix[j][i] = shared
    return matrix


def demand_coverage(
    transit: TransitNetwork,
    queries: QuerySet,
    *,
    radii_km: Sequence[float] = (0.2, 0.4, 0.8),
) -> Dict[float, float]:
    """Fraction of the demand multiset within each walk radius of a
    stop — the access profile planners quote ("x% within 400 m")."""
    if not radii_km:
        raise ConfigurationError("radii_km must be non-empty")
    ordered = sorted(radii_km)
    dist = engine_for(queries.network).multi_source(
        transit.existing_stops, max_cost=ordered[-1], phase="transit"
    )
    total = len(queries)
    result: Dict[float, float] = {}
    for radius in ordered:
        covered = sum(
            1 for v in queries.nodes
            if math.isfinite(dist[v]) and dist[v] <= radius + 1e-9
        )
        result[radius] = covered / total
    return result
