"""Frequency (headway) setting for a planned route.

Route *design* is the paper's problem; real deployments then set the
route's **frequency** (the related work it cites couples both, e.g.
Szeto & Wu's simultaneous design-and-frequency-setting).  This module
implements the standard peak-load frequency rule as a second stage:

1. assign each demand query node to the route if the route offers its
   nearest stop (the same nearest-stop logic as ``Walk``);
2. estimate the boarding profile along the route (each assigned query
   boards at its nearest route stop and rides toward the route's
   midpoint — a symmetric approximation of unknown destinations);
3. the peak load over all legs, divided by the vehicle capacity and the
   design load factor, gives the required buses per hour, clamped to a
   policy headway range.

The result feeds straight back into the journey planner: the boarding
penalty of a route is half its headway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..demand.query import QuerySet
from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from .network import TransitNetwork
from .route import BusRoute


@dataclass(frozen=True)
class FrequencyPlan:
    """The frequency decision for one route.

    Attributes:
        route_id: the route.
        headway_min: minutes between consecutive buses.
        buses_per_hour: ``60 / headway_min``.
        peak_load: estimated passengers on the busiest leg per hour.
        boardings: estimated boardings per stop, aligned with the
            route's stop order.
    """

    route_id: str
    headway_min: float
    buses_per_hour: float
    peak_load: float
    boardings: Tuple[float, ...]

    @property
    def boarding_penalty_min(self) -> float:
        """Expected wait: half the headway (random arrivals)."""
        return self.headway_min / 2.0


def estimate_boardings(
    transit: TransitNetwork,
    route: BusRoute,
    queries: QuerySet,
    *,
    demand_per_query_node: float = 1.0,
) -> List[float]:
    """Boardings per stop of ``route``: each query node whose nearest
    stop (over the whole network including the new route) lies on the
    route boards there, weighted by multiplicity.
    """
    network = queries.network
    engine = engine_for(network)
    all_stops = set(transit.existing_stops) | set(route.stops)
    dist = engine.multi_source(sorted(all_stops), phase="transit")
    # For each query node, find the route stop achieving the global
    # nearest-stop distance (if any route stop does).
    per_stop = []
    for stop in route.stops:
        per_stop.append(engine.sssp(stop, phase="transit"))
    boardings = [0.0] * route.num_stops
    for node in queries.nodes:
        best = dist[node]
        if not math.isfinite(best):
            continue
        for i, stop_dist in enumerate(per_stop):
            if stop_dist[node] <= best + 1e-9:
                boardings[i] += demand_per_query_node
                break
    return boardings


def set_frequency(
    transit: TransitNetwork,
    route: BusRoute,
    queries: QuerySet,
    *,
    vehicle_capacity: int = 60,
    load_factor: float = 0.8,
    min_headway_min: float = 4.0,
    max_headway_min: float = 30.0,
    demand_per_query_node: float = 1.0,
) -> FrequencyPlan:
    """Peak-load frequency setting (see module docstring).

    Args:
        transit: the existing network (competition for the demand).
        route: the newly planned route.
        queries: the demand multiset, interpreted as hourly trips.
        vehicle_capacity: seats+standees per bus.
        load_factor: design utilization of the capacity (0-1].
        min_headway_min / max_headway_min: policy clamp.
        demand_per_query_node: trips per query node per hour.

    Raises:
        ConfigurationError: on invalid parameters.
    """
    if vehicle_capacity < 1:
        raise ConfigurationError("vehicle_capacity must be >= 1")
    if not (0.0 < load_factor <= 1.0):
        raise ConfigurationError("load_factor must be in (0, 1]")
    if not (0.0 < min_headway_min <= max_headway_min):
        raise ConfigurationError("headway clamp must satisfy 0 < min <= max")

    boardings = estimate_boardings(
        transit, route, queries, demand_per_query_node=demand_per_query_node
    )
    peak = _peak_leg_load(boardings)
    effective_capacity = vehicle_capacity * load_factor
    required_per_hour = peak / effective_capacity if effective_capacity else 0.0
    if required_per_hour <= 0.0:
        headway = max_headway_min
    else:
        headway = 60.0 / required_per_hour
    headway = min(max(headway, min_headway_min), max_headway_min)
    return FrequencyPlan(
        route_id=route.route_id,
        headway_min=headway,
        buses_per_hour=60.0 / headway,
        peak_load=peak,
        boardings=tuple(boardings),
    )


def _peak_leg_load(boardings: Sequence[float]) -> float:
    """Peak on-board load with boardings riding toward the route's
    midpoint: the first half rides forward, the second half backward;
    the load on each leg accumulates the boardings destined past it."""
    n = len(boardings)
    if n < 2:
        return 0.0
    mid = n / 2.0
    load = [0.0] * (n - 1)  # load[i] = passengers on leg i -> i+1
    for i, count in enumerate(boardings):
        if count <= 0:
            continue
        if i < mid:
            for leg in range(i, min(n - 1, int(math.ceil(mid)))):
                load[leg] += count
        else:
            for leg in range(max(0, int(math.floor(mid)) - 1), i):
                load[leg] += count
    return max(load)
