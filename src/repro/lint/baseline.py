"""The suppression ratchet: violation/suppression counts only shrink.

``repro lint --write-baseline`` records the current per-rule violation
counts *and* per-rule inline-suppression counts into
``lint-baseline.json``; ``repro lint --baseline`` then fails whenever
any rule's count exceeds its recorded value.  The effect is a one-way
ratchet: known debt (a hot loop awaiting vectorization, a benchmark
that legitimately times with a raw counter) is tolerated at its current
size, but new violations — and new ``# reprolint: disable=`` pragmas,
which would otherwise be the easy way around the gate — fail CI.
Counts that shrink are reported as ratchet slack so the baseline can be
re-tightened (re-run ``--write-baseline`` and commit).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from .violations import META_RULE_ID, Violation

#: Default baseline path, resolved against the current directory (CI
#: runs from the repo root, where the committed file lives).
DEFAULT_BASELINE_NAME = "lint-baseline.json"

BASELINE_SCHEMA_VERSION = 1


@dataclass
class BaselineReport:
    """Outcome of one ratchet check.

    Attributes:
        failures: human-readable, one per rule whose count grew.
        improvements: rules whose count shrank (slack to re-ratchet).
    """

    failures: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def violation_counts(violations: Sequence[Violation]) -> Dict[str, int]:
    """Per-rule counts of a violation list (the ratchet's left side)."""
    return dict(sorted(Counter(v.rule_id for v in violations).items()))


def render_baseline(
    violations: Mapping[str, int], suppressions: Mapping[str, int]
) -> str:
    """The canonical on-disk form (sorted keys, trailing newline — a
    stable diff target for review)."""
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "violations": dict(sorted(violations.items())),
        "suppressions": dict(sorted(suppressions.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(
    path: str,
    violations: Mapping[str, int],
    suppressions: Mapping[str, int],
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(violations, suppressions))


def load_baseline(path: str) -> Dict[str, Dict[str, int]]:
    """Load and validate a baseline file.

    Raises:
        ValueError: on unreadable/malformed content or a schema
            mismatch — a broken baseline must fail loudly, not pass an
            empty ratchet.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if data.get("schema") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path!r} has schema {data.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA_VERSION} (re-run --write-baseline)"
        )
    result: Dict[str, Dict[str, int]] = {}
    for section in ("violations", "suppressions"):
        table = data.get(section, {})
        if not isinstance(table, dict) or not all(
            isinstance(v, int) and v >= 0 for v in table.values()
        ):
            raise ValueError(
                f"baseline {path!r} section {section!r} must map rule "
                "ids to non-negative counts"
            )
        result[section] = {str(k): int(v) for k, v in table.items()}
    return result


def check_baseline(
    baseline: Mapping[str, Mapping[str, int]],
    violations: Mapping[str, int],
    suppressions: Mapping[str, int],
) -> BaselineReport:
    """Compare current counts against the recorded ones.

    A rule absent from the baseline has a recorded count of zero, so
    brand-new rules ratchet from a clean slate automatically.  Meta
    diagnostics (:data:`META_RULE_ID`) always fail regardless of any
    recorded count — a syntax error or stale pragma is never debt to
    keep.
    """
    report = BaselineReport()
    for section, current in (
        ("violations", violations),
        ("suppressions", suppressions),
    ):
        recorded = baseline.get(section, {})
        noun = "violation(s)" if section == "violations" else "suppression(s)"
        for rule_id in sorted(set(recorded) | set(current)):
            allowed = recorded.get(rule_id, 0)
            observed = current.get(rule_id, 0)
            if rule_id == META_RULE_ID and observed and section == "violations":
                report.failures.append(
                    f"{rule_id}: {observed} meta {noun} (never baselined)"
                )
            elif observed > allowed:
                report.failures.append(
                    f"{rule_id}: {observed} {noun} exceeds baseline "
                    f"of {allowed} — fix the new ones or shrink elsewhere"
                )
            elif observed < allowed:
                report.improvements.append(
                    f"{rule_id}: {observed} {noun} < baseline {allowed} "
                    "— re-run --write-baseline to ratchet down"
                )
    return report
