"""Violation reporters: human text, JSON, and GitHub annotations."""

from __future__ import annotations

import json
from collections import Counter
from typing import Callable, Dict, List, Sequence

from .violations import Violation


def render_text(violations: Sequence[Violation]) -> str:
    """``path:line:col: RLxxx message`` lines plus a tally footer."""
    if not violations:
        return "reprolint: clean"
    lines = [v.format() for v in violations]
    by_rule = Counter(v.rule_id for v in violations)
    tally = ", ".join(f"{rule}×{count}" for rule, count in sorted(by_rule.items()))
    lines.append(f"reprolint: {len(violations)} violation(s) ({tally})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """A machine-readable document: counts plus the violation list."""
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "by_rule": dict(
                sorted(Counter(v.rule_id for v in violations).items())
            ),
        },
        indent=2,
    )


def render_github(violations: Sequence[Violation]) -> str:
    """GitHub Actions workflow commands — one ``::error`` per violation,
    so findings surface inline on the PR diff."""
    lines = []
    for v in violations:
        message = v.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={v.path},line={v.line},col={v.column + 1},"
            f"title=reprolint {v.rule_id}::{message}"
        )
    if not violations:
        lines.append("::notice title=reprolint::clean")
    return "\n".join(lines)


REPORTERS: Dict[str, Callable[[Sequence[Violation]], str]] = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def render(violations: Sequence[Violation], fmt: str = "text") -> str:
    """Render with the named reporter.

    Raises:
        KeyError: on an unknown format name.
    """
    return REPORTERS[fmt](violations)


def format_names() -> List[str]:
    return sorted(REPORTERS)
