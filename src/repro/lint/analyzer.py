"""The analysis driver: files in, sorted violations out.

One :func:`check_paths` call expands the given files/directories to
``*.py`` files, parses each once, runs every applicable rule over the
tree, filters through the file's inline suppressions, and returns one
sorted violation list.  :func:`check_source` is the same pipeline for an
in-memory snippet — the fixture tests and editor integrations use it.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from .config import LintConfig
from .registry import FileContext, all_rules
from .suppressions import parse_suppressions
from .violations import META_RULE_ID, Violation


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories to a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: if a given path does not exist.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


def check_source(
    source: str,
    path: str = "<string>",
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string.

    Args:
        source: Python source text.
        path: path to attribute violations to (and to match rule
            excludes against).
        config: resolved configuration; defaults to all rules on.
        select: restrict to these rule ids (after config filtering);
            ``None`` means all registered rules.

    Returns:
        Sorted violations, including suppression problems and — as a
        :data:`~repro.lint.violations.META_RULE_ID` entry — syntax
        errors.
    """
    config = config or LintConfig()
    known = all_rules()
    rules = known
    if select is not None:
        wanted = set(select)
        rules = {rid: cls for rid, cls in known.items() if rid in wanted}
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                rule_id=META_RULE_ID,
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(path, source_lines, known)
    violations: List[Violation] = list(suppressions.problems)
    for rule_id, rule_cls in rules.items():
        if not config.rule_applies(rule_id, path):
            continue
        context = FileContext(path=path, tree=tree, source_lines=source_lines)
        rule_cls(context).run()
        violations.extend(
            v for v in context.violations if not suppressions.is_suppressed(v)
        )
    return sorted(violations)


def check_paths(
    paths: Sequence[str],
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint files and directory trees; the union of per-file results."""
    config = config or LintConfig()
    violations: List[Violation] = []
    for filename in iter_python_files(paths):
        if config.path_excluded(filename):
            continue
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    path=filename,
                    line=1,
                    column=0,
                    rule_id=META_RULE_ID,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        violations.extend(
            check_source(source, filename, config=config, select=select)
        )
    return sorted(violations)
