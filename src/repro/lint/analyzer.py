"""The analysis driver: files in, sorted violations out.

The pipeline has two phases.  The **per-file** phase parses each file
once, runs every per-file rule (RL001–RL009) over the tree, and
extracts the :class:`~repro.lint.project.FileFacts` record; both
outputs are content-addressed, so the incremental cache
(:mod:`repro.lint.cache`) can skip this phase entirely for unchanged
files.  The **project** phase stitches all facts into a
:class:`~repro.lint.project.ProjectModel` + call graph and runs the
cross-module rules (RL010–RL012) — always fresh, because their answers
depend on every file at once.

Downstream of both: config/``--select`` filtering, inline-suppression
filtering, and the unused-suppression check (a ``# reprolint:
disable=RLxxx`` whose rule no longer fires on that line is itself
reported, as :data:`~repro.lint.violations.META_RULE_ID`), then one
sorted violation list.

:func:`check_source` / :func:`check_paths` keep their historical
list-of-violations signatures; :func:`run_lint` is the full-fat entry
the CLI uses (cache + suppression counts for the baseline ratchet).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .cache import CacheStats, LintCache, content_hash, ruleset_signature
from .callgraph import CallGraph
from .config import LintConfig
from .project import (
    FileFacts,
    ProjectModel,
    extract_facts,
    module_name_for,
)
from .registry import FileContext, all_rules, file_rules, project_rules
from .suppressions import SuppressionTable, parse_suppressions
from .violations import META_RULE_ID, Violation


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories to a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: if a given path does not exist.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


@dataclass
class _FileRecord:
    """One file's state as it moves through the pipeline."""

    path: str
    source_lines: List[str]
    facts: FileFacts
    raw_violations: List[Violation]  # per-file rules, pre-filtering
    suppressions: SuppressionTable
    parse_failed: bool = False
    meta: List[Violation] = field(default_factory=list)


@dataclass
class LintRun:
    """Everything one analysis produced.

    Attributes:
        violations: the final, sorted, filtered list.
        suppression_counts: inline-suppression directives per rule id
            (the ratchet's second column).
        cache_stats: hit/miss accounting, when a cache was in use.
        files: number of files analyzed.
    """

    violations: List[Violation]
    suppression_counts: Dict[str, int]
    cache_stats: Optional[CacheStats]
    files: int


def _run_file_rules(path: str, tree: ast.Module, lines: List[str]) -> List[Violation]:
    """Every per-file rule over one tree — unfiltered; filtering happens
    downstream so results are cacheable under any config/--select."""
    context = FileContext(path=path, tree=tree, source_lines=lines)
    for rule_cls in file_rules().values():
        rule_cls(context).run()
    return context.violations


def _analyze_file(
    path: str,
    source: str,
    known_ids: Iterable[str],
    *,
    source_bytes: Optional[bytes] = None,
    cache: Optional[LintCache] = None,
) -> _FileRecord:
    lines = source.splitlines()
    suppressions = parse_suppressions(path, lines, known_ids)
    digest = None
    if cache is not None:
        digest = content_hash(
            source_bytes if source_bytes is not None else source.encode("utf-8")
        )
        cached = cache.lookup(path, digest)
        if cached is not None:
            facts, raw = cached
            return _FileRecord(
                path=path,
                source_lines=lines,
                facts=facts,
                raw_violations=raw,
                suppressions=suppressions,
            )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return _FileRecord(
            path=path,
            source_lines=lines,
            facts=FileFacts(path=path, module=module_name_for(path)),
            raw_violations=[],
            suppressions=suppressions,
            parse_failed=True,
            meta=[
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule_id=META_RULE_ID,
                    message=f"syntax error: {exc.msg}",
                )
            ],
        )
    raw = _run_file_rules(path, tree, lines)
    facts = extract_facts(path, tree)
    if cache is not None and digest is not None:
        cache.store(path, digest, facts, raw)
    return _FileRecord(
        path=path,
        source_lines=lines,
        facts=facts,
        raw_violations=raw,
        suppressions=suppressions,
    )


def _run_project_rules(
    records: Sequence[_FileRecord],
) -> Dict[str, List[Violation]]:
    """The cross-module phase: one model, every project rule, results
    grouped by file path."""
    model = ProjectModel(record.facts for record in records)
    graph = CallGraph(model)
    by_path: Dict[str, List[Violation]] = {}
    for rule_cls in project_rules().values():
        rule = rule_cls()
        rule.check_project(model, graph)
        for violation in rule.violations:
            by_path.setdefault(violation.path, []).append(violation)
    return by_path


def _finalize(
    records: Sequence[_FileRecord],
    project_violations: Mapping[str, List[Violation]],
    config: LintConfig,
    select: Optional[Set[str]],
) -> List[Violation]:
    """Config/select filtering, suppression filtering, and the
    unused-suppression check — the fan-in to one sorted list."""

    def effective(rule_id: str, path: str) -> bool:
        if select is not None and rule_id not in select:
            return False
        return config.rule_applies(rule_id, path)

    final: List[Violation] = []
    for record in records:
        final.extend(record.meta)
        final.extend(record.suppressions.problems)
        candidates = [
            v
            for v in [*record.raw_violations, *project_violations.get(record.path, [])]
            if effective(v.rule_id, record.path)
        ]
        fired_lines = {(v.rule_id, v.line) for v in candidates}
        fired_rules = {v.rule_id for v in candidates}
        final.extend(
            v for v in candidates if not record.suppressions.is_suppressed(v)
        )
        if record.parse_failed:
            continue  # nothing fired because nothing ran; pragmas keep
        for directive in record.suppressions.directives:
            if directive.rule_id == META_RULE_ID:
                continue
            if not effective(directive.rule_id, record.path):
                continue  # rule disabled here — the pragma is unjudgeable
            used = (
                directive.rule_id in fired_rules
                if directive.scope == "file"
                else (directive.rule_id, directive.lineno) in fired_lines
            )
            if not used:
                final.append(
                    Violation(
                        path=record.path,
                        line=directive.lineno,
                        column=directive.column,
                        rule_id=META_RULE_ID,
                        message=(
                            f"unused suppression: {directive.rule_id} does "
                            "not fire "
                            + (
                                "anywhere in this file"
                                if directive.scope == "file"
                                else "on this line"
                            )
                            + " — remove the stale pragma"
                        ),
                    )
                )
    return sorted(final)


def _normalize_select(select: Optional[Iterable[str]]) -> Optional[Set[str]]:
    if select is None:
        return None
    return set(select)


def check_sources(
    sources: Mapping[str, str],
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint a set of in-memory files as one project.

    The fixture entry point for cross-module rules: keys are the paths
    the project model derives module names from, values are source
    text.  No cache is involved.
    """
    config = config or LintConfig()
    known = all_rules()
    records = [
        _analyze_file(path, source, known)
        for path, source in sources.items()
        if not config.path_excluded(path)
    ]
    project_violations = _run_project_rules(records)
    return _finalize(
        records, project_violations, config, _normalize_select(select)
    )


def check_source(
    source: str,
    path: str = "<string>",
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string (a one-file project).

    Args:
        source: Python source text.
        path: path to attribute violations to (and to match rule
            excludes against; it also determines the module name the
            cross-module rules see).
        config: resolved configuration; defaults to all rules on.
        select: restrict to these rule ids (after config filtering);
            ``None`` means all registered rules.

    Returns:
        Sorted violations, including suppression problems and — as a
        :data:`~repro.lint.violations.META_RULE_ID` entry — syntax
        errors.
    """
    return check_sources({path: source}, config=config, select=select)


def run_lint(
    paths: Sequence[str],
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    cache_path: Optional[str] = None,
) -> LintRun:
    """The full pipeline over files on disk.

    Args:
        paths: files and directory trees to lint.
        config: resolved configuration.
        select: restrict reporting to these rule ids.
        cache_path: where the incremental cache lives; ``None`` runs
            cold and writes nothing.

    Returns:
        A :class:`LintRun` with the violations, the per-rule
        suppression-directive counts (for the baseline ratchet), and
        the cache accounting.
    """
    config = config or LintConfig()
    known = all_rules()
    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache.load(cache_path, ruleset_signature(known))
    records: List[_FileRecord] = []
    filenames = [
        name
        for name in iter_python_files(paths)
        if not config.path_excluded(name)
    ]
    for filename in filenames:
        try:
            with open(filename, "rb") as handle:
                raw_bytes = handle.read()
            source = raw_bytes.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            records.append(
                _FileRecord(
                    path=filename,
                    source_lines=[],
                    facts=FileFacts(
                        path=filename, module=module_name_for(filename)
                    ),
                    raw_violations=[],
                    suppressions=SuppressionTable(),
                    parse_failed=True,
                    meta=[
                        Violation(
                            path=filename,
                            line=1,
                            column=0,
                            rule_id=META_RULE_ID,
                            message=f"cannot read file: {exc}",
                        )
                    ],
                )
            )
            continue
        records.append(
            _analyze_file(
                filename, source, known, source_bytes=raw_bytes, cache=cache
            )
        )
    project_violations = _run_project_rules(records)
    violations = _finalize(
        records, project_violations, config, _normalize_select(select)
    )
    suppression_counts: Dict[str, int] = {}
    for record in records:
        for directive in record.suppressions.directives:
            suppression_counts[directive.rule_id] = (
                suppression_counts.get(directive.rule_id, 0) + 1
            )
    if cache is not None:
        cache.prune(filenames)
        cache.save()
    return LintRun(
        violations=violations,
        suppression_counts=dict(sorted(suppression_counts.items())),
        cache_stats=cache.stats if cache is not None else None,
        files=len(records),
    )


def check_paths(
    paths: Sequence[str],
    *,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint files and directory trees; the union of per-file results
    plus the cross-module rules over the whole set (uncached)."""
    return run_lint(paths, config=config, select=select).violations
