"""``[tool.reprolint]`` configuration loaded from ``pyproject.toml``.

The config answers two questions the rules themselves cannot: which
rules this repo wants (``disable``), and where an invariant legitimately
does not apply (``exclude`` globally, ``[tool.reprolint.rule-excludes]``
per rule).  The canonical example is RL001: the engine and the legacy
Dijkstra module *are* the sanctioned implementations, so they are
excluded from the engine-bypass rule by path rather than by littering
them with inline suppressions.

TOML parsing is gated: ``tomllib`` (3.11+) or ``tomli`` when available,
otherwise the analyzer silently runs with defaults — the lint pass must
work on every interpreter the package supports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional

try:  # pragma: no cover - trivial import dance
    import tomllib as _toml  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover
    try:
        import tomli as _toml  # type: ignore[import-not-found, no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]


@dataclass
class LintConfig:
    """Resolved reprolint configuration.

    Attributes:
        disable: rule ids turned off repo-wide.
        include: default paths to lint when the CLI is given none,
            relative to ``root`` (``["src"]`` when unset).
        exclude: glob patterns (posix separators) of paths no rule runs
            on, matched against the path relative to ``root``.
        rule_excludes: per-rule glob patterns — the rule is skipped for
            matching files only.
        root: directory the patterns are relative to (where
            ``pyproject.toml`` was found), or ``None`` for defaults.
    """

    disable: List[str] = field(default_factory=list)
    include: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    rule_excludes: Dict[str, List[str]] = field(default_factory=dict)
    root: Optional[str] = None

    def default_paths(self) -> List[str]:
        """The paths a bare ``repro lint`` invocation covers: the
        configured ``include`` list resolved against ``root``, or
        ``["src"]`` when nothing is configured."""
        if not self.include:
            return ["src"]
        if self.root is None:
            return list(self.include)
        return [os.path.join(self.root, path) for path in self.include]

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def _normalize(self, path: str) -> str:
        if self.root is not None:
            try:
                path = os.path.relpath(os.path.abspath(path), self.root)
            except ValueError:  # pragma: no cover - windows drive mismatch
                pass
        return path.replace(os.sep, "/")

    def path_excluded(self, path: str) -> bool:
        """Whether no rule at all should run on ``path``."""
        return _matches_any(self._normalize(path), self.exclude)

    def rule_applies(self, rule_id: str, path: str) -> bool:
        """Whether ``rule_id`` should run on ``path``."""
        if not self.rule_enabled(rule_id):
            return False
        patterns = self.rule_excludes.get(rule_id, [])
        return not _matches_any(self._normalize(path), patterns)


def _matches_any(path: str, patterns: List[str]) -> bool:
    # A pattern matches the relative path outright, or any suffix of it
    # ("network/graph.py" matches "src/repro/network/graph.py").
    return any(
        fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)
        for pattern in patterns
    )


def find_pyproject(start: str) -> Optional[str]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    directory = os.path.abspath(start)
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(start: str = ".") -> LintConfig:
    """Load ``[tool.reprolint]`` from the nearest ``pyproject.toml``.

    Missing file, missing table, or an interpreter without a TOML parser
    all yield the all-defaults config (every rule on everywhere).
    """
    pyproject = find_pyproject(start)
    if pyproject is None or _toml is None:
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = _toml.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    return config_from_table(table, root=os.path.dirname(pyproject))


def config_from_table(table: Dict[str, Any], root: Optional[str] = None) -> LintConfig:
    """Build a :class:`LintConfig` from an already-parsed TOML table."""
    rule_excludes = {
        str(rule_id): [str(p) for p in patterns]
        for rule_id, patterns in table.get("rule-excludes", {}).items()
    }
    return LintConfig(
        disable=[str(r) for r in table.get("disable", [])],
        include=[str(p) for p in table.get("include", [])],
        exclude=[str(p) for p in table.get("exclude", [])],
        rule_excludes=rule_excludes,
        root=root,
    )
