"""RL005 — no mutable default arguments.

A ``def f(acc=[])`` default is evaluated once at definition time and
shared across calls; in a package whose planners are re-entered across
K/Q sweeps, state leaking between runs corrupts exactly the determinism
the evaluation depends on.  Flagged defaults: list/dict/set displays and
comprehensions, and calls to the bare mutable constructors
(``list``/``dict``/``set``/``collections.*``).  Use ``None`` plus an
in-body default, or ``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Union

from ..registry import Rule, register

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "Counter", "OrderedDict", "defaultdict", "deque"}
)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "RL005"
    title = "mutable-default-argument"
    rationale = (
        "mutable defaults are shared across calls and leak state between "
        "planner runs; default to None (or field(default_factory=...))"
    )

    def _check_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self.report(
                    default,
                    "mutable default argument; use None and create the "
                    "object inside the function body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_function(node)
        self.generic_visit(node)
