"""RL007 — no exact equality between float-*typed* expressions.

RL004 catches ``x == 0.0`` (a float literal on either side), but the
bug class it guards against also appears with no literal in sight:
``ratio == best[0]`` where both sides are ``float`` compares quantities
that reached their values through different summation orders, so the
"equal" branch silently depends on ulp-level drift (this exact bug hid
the deterministic tie-break in the selection loop).

Full type inference is mypy's job; this rule runs a deliberately small,
high-precision inference over each scope and only reports when it is
*sure* an operand is a float:

* names annotated ``float`` (parameters or ``x: float = ...``);
* names assigned from an expression that must be a float: a float
  literal, a ``float(...)`` call, a true division (``/`` always yields
  a float on numbers), or another float-typed name;
* the expressions above used inline as a comparison operand.

Comparisons involving a float *literal* are RL004's domain and are not
re-reported here.  Use :func:`math.isclose` or the shared helpers in
:mod:`repro.core.numeric` (``close``, ``is_zero``) instead.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..registry import Rule, register

_FLOAT_CALLS = {"float"}


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


def _is_float_annotation(annotation: ast.AST) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


class _ScopeInference(ast.NodeVisitor):
    """Collect the names provably float-typed within one scope.

    Nested function/class bodies are separate scopes and are skipped;
    the rule analyzes each of them with a fresh pass.
    """

    def __init__(self) -> None:
        self.float_names: Set[str] = set()

    def collect(self, body: List[ast.stmt]) -> Set[str]:
        for stmt in body:
            self.visit(stmt)
        return self.float_names

    # -- scope boundaries ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # separate scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # separate scope

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # separate scope

    # -- float-name sources ----------------------------------------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _is_float_annotation(node.annotation):
            self.float_names.add(node.target.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _expression_is_float(node.value, self.float_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.float_names.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and (
            isinstance(node.op, ast.Div)
            or _expression_is_float(node.value, self.float_names)
        ):
            self.float_names.add(node.target.id)
        self.generic_visit(node)


def _expression_is_float(node: ast.AST, float_names: Set[str]) -> bool:
    """Whether ``node`` must evaluate to a float (conservative)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _expression_is_float(node.operand, float_names)
    if _is_float_literal(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name) and node.func.id in _FLOAT_CALLS
        )
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division of numbers is always a float
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            return _expression_is_float(
                node.left, float_names
            ) or _expression_is_float(node.right, float_names)
    return False


@register
class FloatTypedEqualityRule(Rule):
    rule_id = "RL007"
    title = "float-typed-equality"
    rationale = (
        "exact ==/!= between float-typed expressions (no literal in "
        "sight) hides tie-breaks and guards behind ulp-level drift; use "
        "math.isclose or repro.core.numeric (close / is_zero)"
    )

    def run(self) -> None:
        self._check_scope(self.context.tree.body, set())
        for scope in ast.walk(self.context.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                float_args = {
                    arg.arg
                    for arg in _all_args(scope.args)
                    if arg.annotation is not None
                    and _is_float_annotation(arg.annotation)
                }
                self._check_scope(scope.body, float_args)

    def _check_scope(self, body: List[ast.stmt], seed: Set[str]) -> None:
        inference = _ScopeInference()
        inference.float_names |= seed
        float_names = inference.collect(body)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes get their own pass
            for node in _walk_scope(stmt):
                if isinstance(node, ast.Compare):
                    self._check_compare(node, float_names)

    def _check_compare(self, node: ast.Compare, float_names: Set[str]) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                continue  # RL004's domain
            if _expression_is_float(left, float_names) or _expression_is_float(
                right, float_names
            ):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"exact {symbol} between float-typed expressions; use "
                    "math.isclose or repro.core.numeric (close / is_zero)",
                )


def _all_args(args: ast.arguments) -> List[ast.arg]:
    collected = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        collected.append(args.vararg)
    if args.kwarg is not None:
        collected.append(args.kwarg)
    return collected


def _walk_scope(stmt: ast.stmt) -> List[ast.AST]:
    """All nodes under ``stmt`` without descending into nested
    function/class scopes (those get their own inference pass)."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        found.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)
    return found
