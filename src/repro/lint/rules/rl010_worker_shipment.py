"""RL010 — worker-shipment safety for the process-pool layer.

``repro.parallel`` ships callables and arguments across process
boundaries; three properties keep that safe, and all three are
invisible to per-file analysis:

1. **Picklable entry points.**  A pool submission (``pool.map(f, ...)``
   or ``Pool(initializer=f)``) must name a module-level function.
   Lambdas and nested defs fail to pickle under ``spawn`` and silently
   *work* under ``fork`` — until the platform changes; bound-method /
   attribute callables drag their whole instance through the pickle.
2. **No live engines over the wire.**  A
   :class:`~repro.network.engine.SearchEngine` holds per-process caches
   and a stats ledger; pickling one into ``initargs`` forks state the
   parent still mutates.  Workers build their own engine from the
   (engine-free) network pickle — that is what the pool initializers
   are for.
3. **No module-global mutation in tasks.**  Anything reachable from a
   *task* callable that rebinds a module global is a fork-safety race:
   under ``fork`` the write aliases the parent's module dict layout,
   under ``spawn`` it diverges per worker, and either way the result
   depends on which worker ran the chunk.  Per-process worker state is
   installed exactly once, by the pool *initializer* — initializers are
   therefore exempt.

Reachability is the resolved static call graph, so the rule follows
``_run_sweep_task → plan_route → …`` across modules.  Worker-side
trace shipping (:mod:`repro.obs.collect` draining its shard marks) is
sanctioned per-process state management and excluded by path in
``[tool.reprolint.rule-excludes]``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..callgraph import CallGraph
from ..project import ProjectModel, SubmissionFact
from ..registry import ProjectRule, register


@register
class WorkerShipmentRule(ProjectRule):
    rule_id = "RL010"
    title = "worker-shipment-safety"
    rationale = (
        "pool submissions must ship module-level picklable functions, "
        "never a live SearchEngine, and nothing reachable from a pool "
        "task may mutate module globals (per-process state belongs to "
        "the pool initializer)"
    )

    def check_project(self, model: ProjectModel, graph: CallGraph) -> None:
        task_roots: List[Tuple[str, SubmissionFact, str]] = []
        for module, facts in model.modules.items():
            if not facts.imports_pools:
                continue
            for sub in facts.submissions:
                self._check_callable(model, module, facts.path, sub)
                self._check_shipped_args(model, module, facts.path, sub)
                if sub.kind == "task" and sub.callee_kind == "name":
                    resolved = model.resolve(
                        module, sub.callee, scope=sub.in_function
                    )
                    if resolved is not None:
                        task_roots.append((resolved, sub, module))
        self._check_task_reachability(model, graph, task_roots)

    # -- property 1: picklable entry points ---------------------------

    def _check_callable(
        self, model: ProjectModel, module: str, path: str, sub: SubmissionFact
    ) -> None:
        what = "pool task" if sub.kind == "task" else "pool initializer"
        if sub.callee_kind == "lambda":
            self.report_at(
                path, sub.lineno, sub.col,
                f"{what} is a lambda; workers need a module-level "
                "function (lambdas do not pickle under spawn)",
            )
        elif sub.callee_kind == "attribute":
            self.report_at(
                path, sub.lineno, sub.col,
                f"{what} {sub.callee!r} is a bound-method/attribute "
                "callable; ship a module-level function so the pickle "
                "does not drag the whole instance across the pool",
            )
        elif sub.callee_kind == "name":
            resolved = model.resolve(module, sub.callee, scope=sub.in_function)
            fact = model.functions.get(resolved) if resolved else None
            if fact is not None and fact.nested:
                self.report_at(
                    path, sub.lineno, sub.col,
                    f"{what} {sub.callee!r} is a nested function "
                    f"(defined at line {fact.lineno}); pool entry "
                    "points must be module-level to pickle",
                )

    # -- property 2: no live engines shipped --------------------------

    def _check_shipped_args(
        self, model: ProjectModel, module: str, path: str, sub: SubmissionFact
    ) -> None:
        if sub.arg_engine_call:
            self.report_at(
                path, sub.lineno, sub.col,
                "pool arguments construct a live SearchEngine; workers "
                "must build their own engine from the network pickle "
                "(see the pool initializers in repro.parallel.fanout)",
            )
            return
        enclosing = (
            model.functions.get(sub.in_function) if sub.in_function else None
        )
        if enclosing is None:
            return
        shipped_engines = sorted(
            set(sub.arg_names) & set(enclosing.engine_locals)
        )
        if shipped_engines:
            self.report_at(
                path, sub.lineno, sub.col,
                f"pool arguments ship live SearchEngine value(s) "
                f"{', '.join(shipped_engines)}; engines hold per-process "
                "caches and stats — pass the network and rebuild in the "
                "worker initializer",
            )

    # -- property 3: no global mutation reachable from tasks ----------

    def _check_task_reachability(
        self,
        model: ProjectModel,
        graph: CallGraph,
        task_roots: List[Tuple[str, SubmissionFact, str]],
    ) -> None:
        if not task_roots:
            return
        root_names = {qname for qname, _, _ in task_roots}
        for qname in sorted(graph.reachable_from(root_names)):
            fact = model.functions[qname]
            if not fact.global_writes:
                continue
            owner = model.module_of(qname)
            path = model.path_of.get(owner) if owner is not None else None
            if path is None:
                continue
            self.report_at(
                path, fact.lineno, fact.col,
                f"{fact.name!r} rebinds module global(s) "
                f"{', '.join(sorted(fact.global_writes))} and is "
                "reachable from a pool task submission; per-process "
                "state may only be installed by a pool initializer",
            )
