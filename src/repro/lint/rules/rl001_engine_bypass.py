"""RL001 — searches must flow through the SearchEngine.

PR 1 routed every shortest-path computation through the cached,
instrumented :class:`repro.network.engine.SearchEngine`.  A module that
imports the legacy free functions from :mod:`repro.network.dijkstra`
bypasses the cache (redundant work), the stats ledger (invisible work),
and the version-checked CSR snapshot (possibly *stale* work).  The
sanctioned homes of the legacy API — ``network/engine.py``,
``network/dijkstra.py`` itself, and the package re-export — are excluded
via ``[tool.reprolint.rule-excludes]`` / inline suppression, and tests
may use the free functions to cross-check the engine.
"""

from __future__ import annotations

import ast

from ..registry import Rule, register

#: The legacy free-function surface of ``repro.network.dijkstra``.
LEGACY_NAMES = frozenset(
    {
        "shortest_path_costs",
        "shortest_path",
        "distance_between",
        "search_to_nearest",
        "query_preprocessing_search",
        "multi_source_costs",
        "IncrementalNearestDistance",
    }
)

_MODULE = "repro.network.dijkstra"


@register
class EngineBypassRule(Rule):
    rule_id = "RL001"
    title = "engine-bypass"
    rationale = (
        "all graph searches go through repro.network.engine.SearchEngine; "
        "importing repro.network.dijkstra directly skips the cache, the "
        "stats ledger, and staleness checks"
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _MODULE or alias.name.startswith(_MODULE + "."):
                self.report(
                    node,
                    f"direct import of {alias.name}; use "
                    "repro.network.engine.SearchEngine (engine_for) instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        # Absolute or relative spelling of the dijkstra module itself.
        if module == _MODULE or module.split(".")[-1] == "dijkstra":
            self.report(
                node,
                "import from the legacy dijkstra module; use "
                "repro.network.engine.SearchEngine (engine_for) instead",
            )
        # The re-exported free functions, e.g.
        # ``from repro.network import shortest_path_costs``.
        elif module.split(".")[-1] == "network" or module == "repro.network":
            legacy = sorted(
                alias.name for alias in node.names if alias.name in LEGACY_NAMES
            )
            if legacy:
                self.report(
                    node,
                    f"import of legacy search function(s) {', '.join(legacy)}; "
                    "use the SearchEngine methods instead",
                )
        self.generic_visit(node)
