"""RL002 — graph internals are only mutated by version-bumping methods.

The engine's CSR snapshot and every cached search row stay valid only
while :attr:`RoadNetwork.version` is unchanged.  The mutation methods in
``network/graph.py`` (:meth:`add_edge`, :meth:`set_edge_cost`) bump the
version; any *other* code writing to the adjacency/edge/coordinate
internals mutates the graph behind the cache's back, and every
subsequent search silently answers against the old topology.  This rule
flags writes — assignments, augmented assignments, deletes, and mutating
method calls — that reach a protected attribute.  ``network/graph.py``
itself is excluded by config (it is the sanctioned mutator).
"""

from __future__ import annotations

import ast
from typing import Optional

from ..registry import Rule, register

#: RoadNetwork internals no outside code may write to.
PROTECTED_ATTRIBUTES = frozenset({"_adj", "_edge_costs", "_coords", "_version"})

#: Method names that mutate a list/dict in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
    }
)


def _protected_attribute(node: ast.AST) -> Optional[ast.Attribute]:
    """The first *foreign* protected-attribute access inside ``node``.

    ``self._coords = ...`` is an object defining its own state (several
    classes legitimately keep their own ``_coords``); the hazard this
    rule guards is reaching into **another** object's graph internals
    (``network._adj``, ``self._network._edge_costs``, ...).
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in PROTECTED_ATTRIBUTES:
            base = sub.value
            if isinstance(base, ast.Name) and base.id == "self":
                continue
            return sub
    return None


@register
class CacheInvalidationRule(Rule):
    rule_id = "RL002"
    title = "cache-invalidation-hazard"
    rationale = (
        "RoadNetwork adjacency/edge/coordinate internals may only be "
        "written by graph.py mutation methods that bump _version; anything "
        "else leaves the SearchEngine cache silently stale"
    )

    def _check_write_target(self, target: ast.AST) -> None:
        hit = _protected_attribute(target)
        if hit is not None:
            self.report(
                hit,
                f"write to graph internal '{hit.attr}' outside the "
                "version-bumping mutators in network/graph.py; use "
                "add_edge/set_edge_cost (or add a mutator that bumps _version)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            hit = _protected_attribute(func.value)
            if hit is not None:
                self.report(
                    hit,
                    f"mutating call .{func.attr}() on graph internal "
                    f"'{hit.attr}' outside network/graph.py; route the "
                    "change through a version-bumping mutator",
                )
        self.generic_visit(node)
