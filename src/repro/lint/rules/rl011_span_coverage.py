"""RL011 — every phase entry point runs under an obs span.

PR 5 threaded :mod:`repro.obs` spans through every EBRR phase so that
``--trace`` yields one complete picture and ``EBRRResult.timings`` is
*derived* from the measured spans.  That guarantee rots silently: a new
phase (or a refactor of an old one) that forgets its ``with span(...)``
still returns correct routes — only the trace goes blind.  This rule
makes the convention checkable.

An **entry point** is a public module-level function, defined under
``repro.core``, ``repro.parallel``, or ``repro.serve``, whose name
starts with one of the phase verbs (``plan``, ``run``, ``sweep``,
``preprocess``, ``update``, ``postprocess``, ``refine``, ``select``,
``order``, ``handle``, ``serve``) — the naming convention every phase
driver and request handler in this codebase already follows, so new
phases (and new service endpoints — each request must produce a
complete span tree for ``--trace-dir``) are covered the moment they
are named like one.

**Coverage** is transitive over the resolved call graph: the function
itself opens a span (``with span(...)`` / ``with tracing(...)`` /
``with <trace>.begin(...)`` / decorated ``@traced``), or something it
(statically) calls does.  ``plan_route`` is covered by its
``obs_trace.begin("plan_route", ...)`` block; a thin public wrapper is
covered by the phase function it delegates to.
"""

from __future__ import annotations

from ..callgraph import CallGraph
from ..project import FunctionFact, ProjectModel
from ..registry import ProjectRule, register

#: Package prefixes whose public functions are phase material.
PHASE_PACKAGES = ("repro.core.", "repro.parallel.", "repro.serve.")

#: Leading verbs that mark a public function as a phase entry point.
PHASE_VERBS = (
    "plan",
    "run",
    "sweep",
    "preprocess",
    "update",
    "postprocess",
    "refine",
    "select",
    "order",
    "handle",
    "serve",
)


def _is_entry_point(module: str, fact: FunctionFact) -> bool:
    if not fact.is_public:
        return False
    if not any((module + ".").startswith(pkg) for pkg in PHASE_PACKAGES):
        return False
    head = fact.name.split("_")[0]
    return head in PHASE_VERBS


@register
class SpanCoverageRule(ProjectRule):
    rule_id = "RL011"
    title = "span-coverage"
    rationale = (
        "public phase entry points (plan_/run_/sweep_/handle_/... "
        "under repro.core, repro.parallel, and repro.serve) must run "
        "under an obs span — directly or via a callee — so traces, "
        "derived timings, and per-request span trees cannot silently "
        "lose a phase"
    )

    def check_project(self, model: ProjectModel, graph: CallGraph) -> None:
        for module in sorted(model.modules):
            facts = model.modules[module]
            for fact in facts.functions:
                if not _is_entry_point(module, fact):
                    continue
                if graph.reaches(fact.qname, lambda f: f.has_span):
                    continue
                self.report_at(
                    facts.path, fact.lineno, fact.col,
                    f"phase entry point {fact.name!r} neither opens an "
                    "obs span nor calls anything that does; wrap the "
                    "phase body in `with span(...)` (or @traced) so the "
                    "trace keeps covering it",
                )
