"""RL003 — result-affecting code must be deterministic.

The paper's evaluation (§6) reports exact utility ratios and runtimes;
they reproduce only if every run makes identical decisions.  Two classic
leaks are flagged:

* calls on the *global* ``random`` / ``numpy.random`` state — seedless
  by construction from the caller's point of view.  The sanctioned
  idiom everywhere in this repo is an explicitly seeded generator
  (``np.random.default_rng(seed)`` / ``random.Random(seed)``) threaded
  through as a parameter, which this rule deliberately does not flag;
* iterating directly over a set (literal, comprehension, or ``set()``
  call) in a ``for`` loop or comprehension — iteration order depends on
  ``PYTHONHASHSEED`` for strings and on insertion history in general.
  Sort it (``sorted(...)``) or deduplicate order-preservingly
  (``dict.fromkeys(...)``).
"""

from __future__ import annotations

import ast
from typing import Union

from ..registry import Rule, register

#: Constructors that *produce* a seeded generator; calling these on the
#: random module is how determinism is achieved, not broken.
_SANCTIONED_CONSTRUCTORS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "RandomState", "SeedSequence", "seed"}
)

_RANDOM_MODULE_NAMES = frozenset({"random"})
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class DeterminismRule(Rule):
    rule_id = "RL003"
    title = "nondeterminism"
    rationale = (
        "unseeded global random/numpy.random calls and iteration over bare "
        "sets make runs irreproducible; thread a seeded generator through "
        "and sort (or dict.fromkeys) before iterating"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr not in _SANCTIONED_CONSTRUCTORS:
            value = func.value
            # random.shuffle(...), random.choice(...), ...
            if isinstance(value, ast.Name) and value.id in _RANDOM_MODULE_NAMES:
                self.report(
                    node,
                    f"call to global-state random.{func.attr}(); pass an "
                    "explicitly seeded random.Random(seed) instead",
                )
            # np.random.normal(...), numpy.random.permutation(...), ...
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in _NUMPY_NAMES
            ):
                self.report(
                    node,
                    f"call to global-state numpy.random.{func.attr}(); use an "
                    "explicitly seeded np.random.default_rng(seed) instead",
                )
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.AST) -> None:
        if _is_set_expression(iterable):
            self.report(
                iterable,
                "iteration over a bare set has hash-dependent order; wrap in "
                "sorted(...) or deduplicate with dict.fromkeys(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
    ) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
