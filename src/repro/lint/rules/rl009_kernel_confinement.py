"""RL009 — kernel backends are confined behind the engine.

The :mod:`repro.network.kernels` package is the *algorithmic substrate*
of the search layer — raw Dijkstra/frontier-relaxation loops with no
caching, no stats ledger, and no snapshot invalidation.  Calling a
kernel directly re-opens every hole :class:`SearchEngine` closed
(RL001, one layer down): redundant searches, invisible work, stale CSR
reads, and results that silently diverge from the profile the engine
reports.  Only ``network/engine.py`` (the orchestrator) and the kernels
package itself may import it; everyone else selects a backend *by
name* — ``EBRRConfig.kernel``, ``--kernel``, ``$REPRO_KERNEL`` — and
uses the helpers the engine re-exports (``available_kernels``,
``resolve_kernel``, ``KERNEL_IDS``).  The sanctioned importers are
excluded via ``[tool.reprolint.rule-excludes]``.
"""

from __future__ import annotations

import ast

from ..registry import Rule, register

_PACKAGE = "repro.network.kernels"

#: Names that exist only inside the kernels package; importing them from
#: anywhere (even via the engine re-export) means code is about to hold
#: a raw backend.  The engine's re-exported *name-based* helpers
#: (``available_kernels``, ``resolve_kernel``, ``KERNEL_IDS``) are fine.
_KERNEL_CLASSES = frozenset({"PythonKernel", "VectorizedKernel"})


@register
class KernelConfinementRule(Rule):
    rule_id = "RL009"
    title = "kernel-confinement"
    rationale = (
        "search-kernel backends (repro.network.kernels) are raw, "
        "uncached, unaccounted search loops; only the SearchEngine may "
        "drive them — select a backend by name via EBRRConfig.kernel / "
        "--kernel / REPRO_KERNEL instead"
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _PACKAGE or alias.name.startswith(_PACKAGE + "."):
                self.report(
                    node,
                    f"direct import of {alias.name}; kernels are engine "
                    "internals — select a backend by name "
                    "(EBRRConfig.kernel / --kernel / REPRO_KERNEL)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        parts = module.split(".")
        # Absolute or relative spelling of the package or its modules
        # (``from repro.network.kernels.vectorized import ...``,
        # ``from ..network.kernels import ...``, ``from .kernels import
        # ...``).
        if (
            module == _PACKAGE
            or module.startswith(_PACKAGE + ".")
            or "kernels" in parts
        ):
            self.report(
                node,
                "import from the kernels package; kernels are engine "
                "internals — select a backend by name "
                "(EBRRConfig.kernel / --kernel / REPRO_KERNEL)",
            )
        # Concrete backend classes leaked through a re-export, e.g.
        # ``from repro.network.engine import PythonKernel``.
        else:
            leaked = sorted(
                alias.name
                for alias in node.names
                if alias.name in _KERNEL_CLASSES
            )
            if leaked:
                self.report(
                    node,
                    f"import of kernel backend class(es) {', '.join(leaked)}; "
                    "select a backend by name "
                    "(EBRRConfig.kernel / --kernel / REPRO_KERNEL)",
                )
        self.generic_visit(node)
