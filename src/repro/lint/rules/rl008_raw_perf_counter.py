"""RL008 — raw ``time.perf_counter()`` belongs to :mod:`repro.obs`.

Phase timings are derived from trace spans (see
:func:`repro.obs.trace.phase_timings`), so a timing measured with a
bare ``perf_counter()`` pair lives outside the trace: it cannot show up
in a ``--trace`` export, the summary tree, or the diagnostics report,
and it silently drifts from the span-derived numbers next to it.  All
clock reads go through :mod:`repro.obs.clock` — ``now()`` for a raw
reading, ``stopwatch``/``timed`` for sinks, ``span`` for anything that
should appear in the trace.  ``repro/obs/clock.py`` itself (the single
sanctioned call site) and the :mod:`repro.eval.timing` compatibility
shim are exempt.
"""

from __future__ import annotations

import ast

from ..registry import Rule, register

#: Path fragments this rule never fires in: the sanctioned clock module
#: and the thin re-export shim kept for backward compatibility.
_EXEMPT_FRAGMENTS = ("repro/obs/", "repro\\obs\\", "eval/timing.py", "eval\\timing.py")


@register
class RawPerfCounterRule(Rule):
    rule_id = "RL008"
    title = "raw-perf-counter"
    rationale = (
        "bare time.perf_counter() timings bypass the trace substrate; "
        "use repro.obs (now, stopwatch, span) so every measurement shows "
        "up in --trace exports and the diagnostics report"
    )

    def run(self) -> None:
        if any(fragment in self.context.path for fragment in _EXEMPT_FRAGMENTS):
            return
        self.visit(self.context.tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "perf_counter"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self.report(
                node,
                "raw time.perf_counter() outside repro.obs; use "
                "repro.obs.now()/stopwatch/span so the measurement joins "
                "the trace",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "perf_counter":
                    self.report(
                        node,
                        "importing time.perf_counter bypasses repro.obs; "
                        "import repro.obs.now instead",
                    )
        self.generic_visit(node)
