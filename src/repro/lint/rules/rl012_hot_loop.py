"""RL012 — kernel hot loops are confined to ``repro.network.kernels``.

ROADMAP item 2 is the raw-speed push: full-scale cities need the search
inner loops vectorized, and PR 6 built the place for them — the
:mod:`repro.network.kernels` backends behind the engine.  The failure
mode this rule guards against is *regression by convenience*: new code
(or a quick fix) iterating the CSR flat-adjacency views
(``indptr``/``targets``/``costs`` and their ``np_*`` twins) or the
per-node adjacency dict (``_adj``) in a Python-level ``for``/``while``
loop, re-growing exactly the interpreter-bound hot paths the vectorized
backend exists to absorb.

Detection is the facts pass's loop records: the **innermost** loop of a
nest whose header or body reads one of those attributes, in any module
outside the kernels package.  The sanctioned substrate (``engine.py``,
``csr.py``, the legacy compat wrappers) is excluded by path in
``[tool.reprolint.rule-excludes]``; the two known pre-existing hot
loops (``astar.py``, ``transit/journey.py``) carry inline suppressions
counted by the baseline ratchet — they may only disappear, never
multiply.
"""

from __future__ import annotations

from ..callgraph import CallGraph
from ..project import ProjectModel
from ..registry import ProjectRule, register

_KERNELS_PACKAGE = "repro.network.kernels"


@register
class HotLoopConfinementRule(ProjectRule):
    rule_id = "RL012"
    title = "kernel-hot-loop-confinement"
    rationale = (
        "Python for/while loops over CSR views (indptr/targets/costs) "
        "or the per-node adjacency dict belong in the "
        "repro.network.kernels backends; route the search through the "
        "engine so the vectorized kernel can own the inner loop"
    )

    def check_project(self, model: ProjectModel, graph: CallGraph) -> None:
        for module in sorted(model.modules):
            if module == _KERNELS_PACKAGE or module.startswith(
                _KERNELS_PACKAGE + "."
            ):
                continue
            facts = model.modules[module]
            for loop in facts.loops:
                where = (
                    f" in {loop.in_function.rsplit('.', 1)[-1]!r}"
                    if loop.in_function
                    else ""
                )
                self.report_at(
                    facts.path, loop.lineno, loop.col,
                    f"python {loop.kind}-loop{where} iterates CSR/"
                    f"adjacency state ({', '.join(loop.touches)}) "
                    "outside repro.network.kernels; use an engine "
                    "primitive (sssp/bounded/multi-source/nodes_within) "
                    "or add a kernel method so the vectorized backend "
                    "owns this loop",
                )
