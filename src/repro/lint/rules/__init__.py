"""Built-in rule set: this repo's architectural invariants as code.

Importing this package registers every rule (each module's classes are
decorated with :func:`repro.lint.registry.register`).
"""

from . import (  # noqa: F401
    rl001_engine_bypass,
    rl002_cache_invalidation,
    rl003_determinism,
    rl004_float_equality,
    rl005_mutable_defaults,
    rl006_wall_clock,
    rl007_float_typed_equality,
    rl008_raw_perf_counter,
    rl009_kernel_confinement,
    rl010_worker_shipment,
    rl011_span_coverage,
    rl012_hot_loop,
)
