"""RL004 — no exact equality against float literals.

Costs, utilities, and walk distances in this codebase are sums of many
float edge weights; ``x == 0.0`` style guards work until a refactor
changes summation order by one ulp.  Comparisons where any operand is a
float *literal* are flagged — use :func:`math.isclose` or the shared
tolerance helpers in :mod:`repro.core.numeric` (``is_zero``, ``close``).

Integer-literal comparisons are not flagged (``count == 0`` is exact),
and neither are float-to-float variable comparisons: an ``a == b``
short-circuit for identical objects is a legitimate idiom the rule
cannot distinguish from a tolerance bug without type information (that
is mypy's job, not the linter's).
"""

from __future__ import annotations

import ast

from ..registry import Rule, register


def _is_float_literal(node: ast.AST) -> bool:
    # Cover the negated spelling too: -0.0, -1.5 parse as UnaryOp(USub).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


@register
class FloatEqualityRule(Rule):
    rule_id = "RL004"
    title = "float-equality"
    rationale = (
        "exact ==/!= against float literals on cost/utility values breaks "
        "under ulp-level drift; use math.isclose or repro.core.numeric "
        "(is_zero, close)"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"exact float comparison ({symbol} against a float "
                    "literal); use math.isclose or repro.core.numeric "
                    "(is_zero / close)",
                )
        self.generic_visit(node)
