"""RL006 — timings use the monotonic clock, not wall-clock time.

The per-phase timings in :class:`repro.core.result.EBRRResult` and the
runtime figures of the evaluation harness are differences of clock
readings.  ``time.time()`` is wall-clock: NTP slews and DST jumps make
its differences wrong by arbitrary amounts, and its resolution is
platform-dependent.  Everything downstream of :mod:`repro.eval.timing`
must use ``time.perf_counter()`` (which that module wraps) — this rule
flags ``time.time()`` calls and ``from time import time`` imports.
Wall-clock timestamps for *labelling* a report (not measuring a
duration) are legitimate; suppress those lines explicitly.
"""

from __future__ import annotations

import ast

from ..registry import Rule, register


@register
class WallClockTimingRule(Rule):
    rule_id = "RL006"
    title = "wall-clock-timing"
    rationale = (
        "time.time() differences drift under NTP/DST; measure durations "
        "with time.perf_counter() via repro.eval.timing (stopwatch, timed)"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self.report(
                node,
                "time.time() used for timing; use time.perf_counter() "
                "(see repro.eval.timing.stopwatch/timed)",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self.report(
                        node,
                        "importing time.time invites wall-clock timing; "
                        "import perf_counter instead",
                    )
        self.generic_visit(node)
