"""Call-graph queries over the :class:`~repro.lint.project.ProjectModel`.

Edges are the statically-resolvable call references the facts pass
recorded: ``caller qname → callee qname`` whenever
:meth:`ProjectModel.resolve` can trace the dotted callee through the
caller module's imports or local symbols.  Method calls on dynamic
values (``engine.query_search``) have no edge — the graph
under-approximates, so reachability answers are "definitely reachable",
never "maybe".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Set, Tuple

from .project import FunctionFact, ProjectModel


class CallGraph:
    """Resolved call edges plus the standard reachability queries."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._callees: Dict[str, List[Tuple[str, int]]] = {}
        self._callers: Dict[str, List[str]] = {}
        for module, facts in model.modules.items():
            for fact in facts.functions:
                edges: List[Tuple[str, int]] = []
                for dotted, lineno in fact.calls:
                    target = model.resolve(module, dotted)
                    if target is not None and target != fact.qname:
                        edges.append((target, lineno))
                self._callees[fact.qname] = edges
                for target, _ in edges:
                    self._callers.setdefault(target, []).append(fact.qname)

    def callees(self, qname: str) -> List[str]:
        """Functions ``qname`` directly calls (deduplicated, in call order)."""
        seen: List[str] = []
        for target, _ in self._callees.get(qname, []):
            if target not in seen:
                seen.append(target)
        return seen

    def callers(self, qname: str) -> List[str]:
        """Functions with a direct edge into ``qname``."""
        return sorted(set(self._callers.get(qname, [])))

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included,
        when known to the model)."""
        frontier = deque(q for q in roots if q in self.model.functions)
        reached: Set[str] = set(frontier)
        while frontier:
            current = frontier.popleft()
            for target in self.callees(current):
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
        return reached

    def reaches(
        self, qname: str, predicate: Callable[[FunctionFact], bool]
    ) -> bool:
        """Whether ``qname`` or anything reachable from it satisfies
        ``predicate`` (a function of :class:`FunctionFact`)."""
        for reached in self.reachable_from([qname]):
            fact = self.model.functions.get(reached)
            if fact is not None and predicate(fact):
                return True
        return False
