"""The unit of lint output: one rule firing at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

#: Meta rule id used for problems with the lint run itself (syntax
#: errors, unknown rule ids inside suppression comments).  It cannot be
#: suppressed or disabled.
META_RULE_ID = "RL000"


@dataclass(frozen=True, order=True)
class Violation:
    """One invariant violation at one source location.

    Attributes:
        path: the file the violation is in, as given to the analyzer.
        line / column: 1-based line and 0-based column of the offending
            node (``ast`` conventions).
        rule_id: the rule that fired, e.g. ``"RL001"``.
        message: a human-readable explanation with the fix direction.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col: RLxxx msg``)."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"
