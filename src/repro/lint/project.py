"""The whole-program project model: parse once, query everywhere.

Per-file rules (RL001–RL009) see one file at a time; the invariants
PRs 3–6 introduced are *cross-module* — "nothing reachable from a pool
submission mutates module globals", "every phase entry point opens a
span".  This module gives those rules something to query: one pass over
every linted file extracts a compact, JSON-serializable
:class:`FileFacts` record (imports, function/class symbols with
decorator tags, call references, loop sites, pool-submission sites),
and :class:`ProjectModel` stitches the records into a module graph with
a name-resolution API (``resolve`` a dotted call in a module's scope to
the fully-qualified function it names).

Facts — not ASTs — are the unit of caching: they round-trip through
``as_dict``/``facts_from_dict``, so the incremental cache
(:mod:`repro.lint.cache`) can skip re-parsing unchanged files entirely
while the cross-module rules still run fresh on every invocation
(they are cheap graph queries; parsing is the cost worth skipping).

Resolution is deliberately conservative: a dotted reference that cannot
be traced through the import map or the module's own symbols resolves
to ``None`` and drops out of the call graph.  Cross-module rules
therefore under-approximate — they miss dynamic dispatch — but never
hallucinate an edge, which is the right failure mode for a linter.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: The CSR flat-adjacency views and per-node adjacency dict; a Python
#: loop reading these is a hot loop the vectorized kernels should own
#: (RL012).
CSR_VIEW_ATTRS = frozenset(
    {"indptr", "targets", "costs", "np_indptr", "np_targets", "np_costs", "_adj"}
)

#: The unambiguous subset: ``targets``/``costs`` alone are everyday
#: identifiers (``ast.Assign.targets``, cost tables), so a loop only
#: counts as a CSR hot loop when it touches one of these *or* two
#: distinct view names together (the slice-and-relax signature).
_STRONG_CSR_ATTRS = frozenset(
    {"indptr", "np_indptr", "np_targets", "np_costs", "_adj"}
)


def loop_signal(touches: Iterable[str]) -> bool:
    """Whether a loop's touched-attribute set marks a CSR hot loop."""
    touched = set(touches)
    return bool(touched & _STRONG_CSR_ATTRS) or len(touched) >= 2

#: Pool methods that submit *task* callables to worker processes.
POOL_TASK_METHODS = frozenset(
    {"map", "map_async", "imap", "imap_unordered", "starmap", "starmap_async",
     "apply", "apply_async", "submit"}
)

#: Constructors whose result is a live search engine; shipping one into
#: a pool re-pickles caches and forks unshared state (RL010).
ENGINE_CONSTRUCTORS = frozenset({"SearchEngine", "engine_for"})

_SPAN_CALL_NAMES = frozenset({"span", "tracing"})
_SPAN_ATTR_NAMES = frozenset({"span", "tracing", "begin"})
_TRACED_NAMES = frozenset({"traced"})


@dataclass
class FunctionFact:
    """One function or method definition, as the project rules see it.

    Attributes:
        name: the bare function name.
        qname: fully qualified name (``module.func`` or
            ``module.Class.func``; nested defs get the enclosing
            function's qname as prefix).
        lineno / col: definition location (``ast`` conventions).
        nested: defined inside another function (not picklable by
            reference — pool submissions of these are RL010 fodder).
        is_method: defined directly inside a class body.
        is_public: module-level, non-underscore name.
        decorators: dotted decorator names (``traced``, ``obs.traced``).
        calls: ``(dotted_name, lineno)`` per call whose callee is a
            plain name or attribute chain (``plan_route``,
            ``fanout.pool_context``); method calls on dynamic values are
            not recorded.
        has_span: body opens a trace span — ``with span(...)`` /
            ``with tracing(...)`` / ``with <trace>.begin(...)`` — or the
            function is decorated ``@traced``.
        global_writes: names both declared ``global`` and assigned in
            the body.
        engine_locals: local names bound to a live engine in this body
            (assigned from ``SearchEngine(...)`` / ``engine_for(...)``,
            or parameters annotated ``SearchEngine``).
    """

    name: str
    qname: str
    lineno: int
    col: int
    nested: bool = False
    is_method: bool = False
    is_public: bool = False
    decorators: List[str] = field(default_factory=list)
    calls: List[Tuple[str, int]] = field(default_factory=list)
    has_span: bool = False
    global_writes: List[str] = field(default_factory=list)
    engine_locals: List[str] = field(default_factory=list)


@dataclass
class LoopFact:
    """One innermost Python loop touching a CSR view / per-node dict.

    Only the *innermost* offending loop of a nest is recorded: the
    outer ``while heap:`` of a Dijkstra is noise once the inner
    neighbor-slice loop is flagged.
    """

    lineno: int
    col: int
    kind: str  # "for" | "while"
    touches: List[str] = field(default_factory=list)
    in_function: Optional[str] = None


@dataclass
class SubmissionFact:
    """One pool-submission site: a callable shipped to worker processes.

    Attributes:
        lineno / col: the submission call.
        kind: ``"task"`` (``pool.map(f, ...)`` family) or
            ``"initializer"`` (``Pool(initializer=f, initargs=...)``).
        callee_kind: ``"name"`` / ``"lambda"`` / ``"attribute"`` /
            ``"other"`` — how the callable was spelled.
        callee: the dotted text for ``name``/``attribute`` spellings.
        arg_names: bare names appearing anywhere in the shipped
            argument expressions (``initargs`` / the task iterable).
        arg_engine_call: an engine constructor is called inline in the
            shipped arguments.
        in_function: qname of the enclosing function, if any.
    """

    lineno: int
    col: int
    kind: str
    callee_kind: str
    callee: str = ""
    arg_names: List[str] = field(default_factory=list)
    arg_engine_call: bool = False
    in_function: Optional[str] = None


@dataclass
class FileFacts:
    """Everything the cross-module rules need to know about one file."""

    path: str
    module: str
    imports: List[Tuple[str, str]] = field(default_factory=list)
    imports_pools: bool = False
    functions: List[FunctionFact] = field(default_factory=list)
    classes: List[str] = field(default_factory=list)
    loops: List[LoopFact] = field(default_factory=list)
    submissions: List[SubmissionFact] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def facts_from_dict(data: Dict[str, Any]) -> FileFacts:
    """Rebuild :class:`FileFacts` from ``as_dict`` output (cache load)."""
    return FileFacts(
        path=data["path"],
        module=data["module"],
        imports=[(str(a), str(b)) for a, b in data.get("imports", [])],
        imports_pools=bool(data.get("imports_pools", False)),
        functions=[
            FunctionFact(
                name=f["name"],
                qname=f["qname"],
                lineno=f["lineno"],
                col=f["col"],
                nested=f.get("nested", False),
                is_method=f.get("is_method", False),
                is_public=f.get("is_public", False),
                decorators=list(f.get("decorators", [])),
                calls=[(str(n), int(ln)) for n, ln in f.get("calls", [])],
                has_span=f.get("has_span", False),
                global_writes=list(f.get("global_writes", [])),
                engine_locals=list(f.get("engine_locals", [])),
            )
            for f in data.get("functions", [])
        ],
        classes=list(data.get("classes", [])),
        loops=[LoopFact(**loop) for loop in data.get("loops", [])],
        submissions=[SubmissionFact(**sub) for sub in data.get("submissions", [])],
    )


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    ``src/repro/parallel/fanout.py`` → ``repro.parallel.fanout``;
    package ``__init__.py`` maps to the package itself.  Paths outside a
    recognizable package root fall back to the file stem, which keeps
    in-memory fixture snippets addressable.
    """
    normalized = path.replace("\\", "/")
    parts = [p for p in normalized.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ("src", "repro"):
        if root in parts:
            index = parts.index(root)
            tail = parts[index + 1 :] if root == "src" else parts[index:]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else "<unknown>"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_span_context(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id in _SPAN_CALL_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _SPAN_ATTR_NAMES
    return False


def _is_engine_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    dotted = _dotted(expr.func)
    return dotted is not None and dotted.split(".")[-1] in ENGINE_CONSTRUCTORS


class _FactsCollector(ast.NodeVisitor):
    """Single-pass extractor feeding one :class:`FileFacts`."""

    def __init__(self, path: str, module: str) -> None:
        self.facts = FileFacts(path=path, module=module)
        self._module = module
        self._scope: List[str] = []  # qname segments past the module
        self._function_stack: List[FunctionFact] = []
        self._class_depth = 0
        self._loop_stack: List[List[bool]] = []  # child-fired flags

    # -- scope helpers -------------------------------------------------

    def _qname(self, name: str) -> str:
        return ".".join([self._module, *self._scope, name])

    def _current_function(self) -> Optional[FunctionFact]:
        return self._function_stack[-1] if self._function_stack else None

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.facts.imports.append((local, target))
            if alias.name.split(".")[0] in ("multiprocessing", "concurrent"):
                self.facts.imports_pools = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_import_base(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = f"{base}.{alias.name}" if base else alias.name
            self.facts.imports.append((local, target))
        if base and base.split(".")[0] in ("multiprocessing", "concurrent"):
            self.facts.imports_pools = True
        self.generic_visit(node)

    def _resolve_import_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: drop `level` trailing segments from this
        # module's dotted path (one for the module itself, more for each
        # extra dot), then append the stated module, if any.
        parts = self._module.split(".")
        base_parts = parts[: -node.level] if node.level < len(parts) else []
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    # -- definitions ---------------------------------------------------

    def _visit_function(self, node: ast.AST, name: str) -> None:
        enclosing = self._current_function()
        fact = FunctionFact(
            name=name,
            qname=self._qname(name),
            lineno=node.lineno,  # type: ignore[attr-defined]
            col=node.col_offset,  # type: ignore[attr-defined]
            nested=enclosing is not None,
            is_method=self._class_depth > 0 and enclosing is None,
            is_public=(
                enclosing is None
                and self._class_depth == 0
                and not name.startswith("_")
            ),
            decorators=[
                d
                for d in (
                    _dotted(dec.func if isinstance(dec, ast.Call) else dec)
                    for dec in node.decorator_list  # type: ignore[attr-defined]
                )
                if d is not None
            ],
        )
        if any(d.split(".")[-1] in _TRACED_NAMES for d in fact.decorators):
            fact.has_span = True
        for arg in _all_args(node):
            annotation = getattr(arg, "annotation", None)
            if annotation is not None:
                dotted = _dotted(annotation)
                if dotted and dotted.split(".")[-1] == "SearchEngine":
                    fact.engine_locals.append(arg.arg)
        self.facts.functions.append(fact)
        self._function_stack.append(fact)
        self._scope.append(name)
        for child in ast.iter_child_nodes(node):
            if child not in node.decorator_list:  # type: ignore[attr-defined]
                self.visit(child)
        self._scope.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class_depth == 0 and not self._function_stack:
            self.facts.classes.append(node.name)
        self._scope.append(node.name)
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1
        self._scope.pop()

    def visit_Global(self, node: ast.Global) -> None:
        fact = self._current_function()
        if fact is not None:
            for name in node.names:
                if name not in fact.global_writes:
                    fact.global_writes.append(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_engine_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_engine_binding([node.target], node.value)
        self.generic_visit(node)

    def _record_engine_binding(
        self, targets: Iterable[ast.expr], value: ast.expr
    ) -> None:
        fact = self._current_function()
        if fact is None or not _is_engine_call(value):
            return
        for target in targets:
            if isinstance(target, ast.Name) and target.id not in fact.engine_locals:
                fact.engine_locals.append(target.id)

    # -- spans, calls, submissions ------------------------------------

    def visit_With(self, node: ast.With) -> None:
        fact = self._current_function()
        if fact is not None and any(
            _is_span_context(item.context_expr) for item in node.items
        ):
            fact.has_span = True
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        fact = self._current_function()
        dotted = _dotted(node.func)
        if fact is not None and dotted is not None:
            fact.calls.append((dotted, node.lineno))
        self._maybe_record_submission(node, dotted)
        self.generic_visit(node)

    def _maybe_record_submission(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        fact = self._current_function()
        in_function = fact.qname if fact is not None else None
        # pool.map(func, iterable) and friends.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_TASK_METHODS
            and node.args
        ):
            self.facts.submissions.append(
                _submission(
                    node, node.args[0], node.args[1:], "task",
                    in_function=in_function,
                )
            )
        # SomethingPool(..., initializer=f, initargs=(...)).
        if dotted is not None and dotted.split(".")[-1].endswith("Pool"):
            initializer = None
            initargs: List[ast.expr] = []
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    initializer = keyword.value
                elif keyword.arg == "initargs":
                    initargs.append(keyword.value)
            if initializer is not None:
                self.facts.submissions.append(
                    _submission(
                        node, initializer, initargs, "initializer",
                        in_function=in_function,
                    )
                )

    # -- loops ---------------------------------------------------------

    def _visit_loop(self, node: ast.AST, kind: str, header: List[ast.expr]) -> None:
        touches = set()
        for expr in header:
            touches |= _csr_touches(expr)
        self._loop_stack.append([False])
        body_touches: set = set()
        for stmt in node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
            body_touches |= _csr_touches(stmt)
        for stmt in getattr(node, "orelse", []):
            self.visit(stmt)
        child_fired = self._loop_stack.pop()[0]
        fired = loop_signal(touches) or (
            loop_signal(touches | body_touches) and not child_fired
        )
        if fired:
            fact = self._current_function()
            self.facts.loops.append(
                LoopFact(
                    lineno=node.lineno,  # type: ignore[attr-defined]
                    col=node.col_offset,  # type: ignore[attr-defined]
                    kind=kind,
                    touches=sorted(touches | body_touches),
                    in_function=fact.qname if fact is not None else None,
                )
            )
        if self._loop_stack and (fired or child_fired):
            self._loop_stack[-1][0] = True

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_loop(node, "for", [node.iter])

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_loop(node, "while", [node.test])


def _all_args(node: ast.AST) -> List[ast.arg]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return [
        *getattr(args, "posonlyargs", []),
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]


def _csr_touches(node: ast.AST) -> set:
    """CSR-view / adjacency-dict attribute names read under ``node``."""
    touches = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in CSR_VIEW_ATTRS:
            touches.add(child.attr)
        elif isinstance(child, ast.Name) and child.id in CSR_VIEW_ATTRS:
            touches.add(child.id)
    return touches


def _submission(
    call: ast.Call,
    callee: ast.expr,
    shipped_args: List[ast.expr],
    kind: str,
    *,
    in_function: Optional[str],
) -> SubmissionFact:
    if isinstance(callee, ast.Lambda):
        callee_kind, callee_text = "lambda", ""
    elif isinstance(callee, ast.Name):
        callee_kind, callee_text = "name", callee.id
    elif isinstance(callee, ast.Attribute):
        callee_kind, callee_text = "attribute", _dotted(callee) or callee.attr
    else:
        callee_kind, callee_text = "other", ""
    arg_names: List[str] = []
    arg_engine_call = False
    for expr in shipped_args:
        for child in ast.walk(expr):
            if isinstance(child, ast.Name) and child.id not in arg_names:
                arg_names.append(child.id)
            if _is_engine_call(child):
                arg_engine_call = True
    return SubmissionFact(
        lineno=call.lineno,
        col=call.col_offset,
        kind=kind,
        callee_kind=callee_kind,
        callee=callee_text,
        arg_names=arg_names,
        arg_engine_call=arg_engine_call,
        in_function=in_function,
    )


def extract_facts(path: str, tree: ast.Module, module: Optional[str] = None) -> FileFacts:
    """Run the facts pass over one parsed file."""
    collector = _FactsCollector(path, module or module_name_for(path))
    collector.visit(tree)
    return collector.facts


class ProjectModel:
    """The resolved cross-module view the project rules query.

    Attributes:
        modules: :class:`FileFacts` per dotted module name.
        functions: every :class:`FunctionFact`, by qualified name.
    """

    def __init__(self, facts: Iterable[FileFacts]) -> None:
        self.modules: Dict[str, FileFacts] = {}
        self.functions: Dict[str, FunctionFact] = {}
        self.path_of: Dict[str, str] = {}
        for file_facts in facts:
            self.modules[file_facts.module] = file_facts
            self.path_of[file_facts.module] = file_facts.path
            for fact in file_facts.functions:
                self.functions[fact.qname] = fact

    def resolve(
        self, module: str, dotted: str, scope: Optional[str] = None
    ) -> Optional[str]:
        """Resolve a dotted reference in ``module``'s scope to a known
        function qname, or ``None`` when it cannot be traced statically.

        ``scope`` is the qname of the enclosing function, if any: a bare
        name used inside a function may refer to a def nested in it, and
        the innermost binding wins over the module-level one.
        """
        facts = self.modules.get(module)
        if facts is None:
            return None
        if scope is not None:
            nested = f"{scope}.{dotted}"
            if nested in self.functions:
                return nested
        parts = dotted.split(".")
        import_map = dict(facts.imports)
        head = parts[0]
        if head in import_map:
            candidate = ".".join([import_map[head], *parts[1:]])
        else:
            candidate = f"{module}.{dotted}"
        if candidate in self.functions:
            return candidate
        return None

    def module_of(self, qname: str) -> Optional[str]:
        """The module a known function qname belongs to."""
        if qname not in self.functions:
            return None
        parts = qname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                return module
        return None


def build_model(facts: Iterable[FileFacts]) -> ProjectModel:
    """Convenience constructor (mirrors ``CallGraph`` in callgraph.py)."""
    return ProjectModel(facts)
