"""reprolint — static enforcement of this repo's architectural invariants.

PR 1 centralised every graph search behind the cached
:class:`~repro.network.engine.SearchEngine`; correctness now rests on
conventions (no engine bypasses, version-bumped graph mutation,
deterministic iteration, tolerant float comparison, fork-safe pool
shipment, span-covered phases, kernel-confined hot loops) that code
review alone cannot guarantee.  This package turns them into CI
failures:

* ``python -m repro.lint [paths]`` or ``repro lint [paths]``;
* per-file rules RL001–RL009 plus cross-module rules RL010–RL012 built
  on a whole-program :class:`~repro.lint.project.ProjectModel` and call
  graph (see ``--list-rules`` and DESIGN.md);
* an on-disk incremental cache (content hash → parsed facts) keeping
  warm runs fast in CI and pre-commit;
* output formats ``text``, ``json``, ``github`` (inline PR annotations);
* per-line ``# reprolint : disable=RL003`` and per-file
  ``# reprolint : disable-file=RL001`` suppressions (space added here
  so the docstring is not itself a directive) — stale ones are
  reported as unused, and ``--baseline`` ratchets both violation and
  suppression counts downward only;
* repo policy in ``pyproject.toml`` under ``[tool.reprolint]``.

The analyzer is stdlib-only (``ast`` + optional ``tomllib``) so the
lint gate runs on any interpreter the package supports.
"""

from .analyzer import (
    LintRun,
    check_paths,
    check_source,
    check_sources,
    iter_python_files,
    run_lint,
)
from .baseline import check_baseline, load_baseline, write_baseline
from .callgraph import CallGraph
from .cli import main
from .config import LintConfig, load_config
from .project import FileFacts, ProjectModel, extract_facts, module_name_for
from .registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    known_rule_ids,
    register,
)
from .report import render
from .violations import META_RULE_ID, Violation

__all__ = [
    "META_RULE_ID",
    "CallGraph",
    "FileContext",
    "FileFacts",
    "LintConfig",
    "LintRun",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "check_baseline",
    "check_paths",
    "check_source",
    "check_sources",
    "extract_facts",
    "iter_python_files",
    "known_rule_ids",
    "load_baseline",
    "load_config",
    "main",
    "module_name_for",
    "register",
    "render",
    "run_lint",
    "write_baseline",
]
