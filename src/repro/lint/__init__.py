"""reprolint — static enforcement of this repo's architectural invariants.

PR 1 centralised every graph search behind the cached
:class:`~repro.network.engine.SearchEngine`; correctness now rests on
conventions (no engine bypasses, version-bumped graph mutation,
deterministic iteration, tolerant float comparison) that code review
alone cannot guarantee.  This package turns them into CI failures:

* ``python -m repro.lint [paths]`` or ``repro lint [paths]``;
* rules RL001–RL006 (see ``--list-rules`` and DESIGN.md);
* output formats ``text``, ``json``, ``github`` (inline PR annotations);
* per-line ``# reprolint: disable=RL003`` and per-file
  ``# reprolint: disable-file=RL001`` suppressions;
* repo policy in ``pyproject.toml`` under ``[tool.reprolint]``.

The analyzer is stdlib-only (``ast`` + optional ``tomllib``) so the
lint gate runs on any interpreter the package supports.
"""

from .analyzer import check_paths, check_source, iter_python_files
from .cli import main
from .config import LintConfig, load_config
from .registry import FileContext, Rule, all_rules, known_rule_ids, register
from .report import render
from .violations import META_RULE_ID, Violation

__all__ = [
    "META_RULE_ID",
    "FileContext",
    "LintConfig",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "iter_python_files",
    "known_rule_ids",
    "load_config",
    "main",
    "register",
    "render",
]
