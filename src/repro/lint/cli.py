"""The ``python -m repro.lint`` / ``repro lint`` command line.

Exit codes follow CI conventions: 0 clean, 1 violations found, 2 usage
or environment errors (bad path, unknown rule id).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .analyzer import check_paths
from .config import LintConfig, load_config
from .registry import all_rules
from .report import format_names, render


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "reprolint: AST-based checker for this repo's architectural "
            "invariants (engine-routed searches, cache-safe graph "
            "mutation, deterministic iteration, tolerant float compares)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=format_names(), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=str, default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all enabled)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for rule_id, rule_cls in all_rules().items():
        lines.append(f"{rule_id}  {rule_cls.title}")
        lines.append(f"       {rule_cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = sorted(set(select) - set(all_rules()))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}")
            return 2
    config = LintConfig() if args.no_config else load_config()
    try:
        violations = check_paths(args.paths, config=config, select=select)
    except FileNotFoundError as exc:
        print(str(exc))
        return 2
    output = render(violations, args.format)
    if output:
        print(output)
    return 1 if violations else 0
