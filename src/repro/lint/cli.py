"""The ``python -m repro.lint`` / ``repro lint`` command line.

Exit codes follow CI conventions: 0 clean (or within the baseline in
``--baseline`` mode), 1 violations found (or ratchet exceeded), 2 usage
or environment errors (bad path, unknown rule id, unreadable baseline).

The incremental cache is on by default (``.reprolint-cache.json`` next
to ``pyproject.toml``); ``--no-cache`` forces a cold run, and the
hit/miss accounting goes to stderr so the machine-readable stdout
formats stay pure.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analyzer import run_lint
from .baseline import (
    DEFAULT_BASELINE_NAME,
    check_baseline,
    load_baseline,
    violation_counts,
    write_baseline,
)
from .cache import DEFAULT_CACHE_NAME
from .config import LintConfig, load_config
from .registry import all_rules, project_rules
from .report import format_names, render


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "reprolint: whole-program AST checker for this repo's "
            "architectural invariants (engine-routed searches, "
            "cache-safe graph mutation, deterministic iteration, "
            "tolerant float compares, fork-safe pool shipment, "
            "span-covered phases, kernel-confined hot loops)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=(
            "files or directories to lint (default: the "
            "[tool.reprolint] include paths, or src)"
        ),
    )
    parser.add_argument(
        "--format", choices=format_names(), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=str, default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all enabled)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE_NAME, default=None,
        metavar="PATH",
        help=(
            "ratchet mode: exit 0 iff no rule's violation or "
            "suppression count exceeds the recorded baseline "
            f"(default path: {DEFAULT_BASELINE_NAME})"
        ),
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
        default=None, metavar="PATH",
        help="record the current counts as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache", type=str, default=None, metavar="PATH",
        help=(
            "incremental cache file (default: "
            f"{DEFAULT_CACHE_NAME} next to pyproject.toml)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (cold run, writes nothing)",
    )
    return parser


def list_rules() -> str:
    project_ids = set(project_rules())
    lines = []
    for rule_id, rule_cls in all_rules().items():
        scope = "cross-module" if rule_id in project_ids else "per-file"
        lines.append(f"{rule_id}  {rule_cls.title} [{scope}]")
        lines.append(f"       {rule_cls.rationale}")
    return "\n".join(lines)


def _resolve_cache_path(
    args: argparse.Namespace, config: LintConfig
) -> Optional[str]:
    if args.no_cache:
        return None
    if args.cache is not None:
        return args.cache
    root = config.root if config.root is not None else "."
    return os.path.join(root, DEFAULT_CACHE_NAME)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = sorted(set(select) - set(all_rules()))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}")
            return 2
    config = LintConfig() if args.no_config else load_config()
    paths = args.paths if args.paths else config.default_paths()
    try:
        run = run_lint(
            paths,
            config=config,
            select=select,
            cache_path=_resolve_cache_path(args, config),
        )
    except FileNotFoundError as exc:
        print(str(exc))
        return 2
    output = render(run.violations, args.format)
    if output:
        print(output)
    if run.cache_stats is not None:
        stats = run.cache_stats
        print(
            f"reprolint: cache {stats.hits} hit(s), {stats.misses} "
            f"miss(es) across {run.files} file(s)",
            file=sys.stderr,
        )
    current = violation_counts(run.violations)
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, current, run.suppression_counts)
        print(
            f"reprolint: baseline written to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        report = check_baseline(baseline, current, run.suppression_counts)
        for line in report.improvements:
            print(f"reprolint: ratchet slack — {line}", file=sys.stderr)
        for line in report.failures:
            print(f"reprolint: ratchet FAILED — {line}", file=sys.stderr)
        if report.ok:
            print("reprolint: ratchet ok", file=sys.stderr)
        return 0 if report.ok else 1
    return 1 if run.violations else 0
