"""The pluggable rule registry.

A *rule* is a small :class:`ast.NodeVisitor` subclass that inspects one
parsed file and reports :class:`~repro.lint.violations.Violation`\\ s
through its :class:`FileContext`.  Rules self-register with the
:func:`register` decorator; the analyzer instantiates every enabled rule
fresh per file, so visitor state never leaks between files.

Adding a rule is three steps: subclass :class:`Rule`, set ``rule_id`` /
``title`` / ``rationale``, and decorate with ``@register``.  Nothing
else in the package needs to change — the CLI, config handling,
suppressions, and reporters all key off the registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Type

from .violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import CallGraph
    from .project import ProjectModel


@dataclass
class FileContext:
    """Everything a rule may look at for one file.

    Attributes:
        path: the file path as given to the analyzer (used in output and
            for path-scoped rules).
        tree: the parsed module.
        source_lines: the raw source split into lines (1-based access
            via ``source_lines[line - 1]``).
        violations: the sink rules report into.
    """

    path: str
    tree: ast.Module
    source_lines: List[str]
    violations: List[Violation] = field(default_factory=list)

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )


class Rule(ast.NodeVisitor):
    """Base class for all lint rules.

    Class attributes (set by subclasses):
        rule_id: stable identifier, ``RL`` + three digits.
        title: short name for ``--list-rules`` and the docs.
        rationale: one-line statement of the invariant the rule guards.

    A rule instance lives for exactly one file: the analyzer constructs
    it with the file's :class:`FileContext` and calls :meth:`run`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def __init__(self, context: FileContext) -> None:
        self.context = context

    def run(self) -> None:
        """Visit the whole module (override for non-visitor rules)."""
        self.visit(self.context.tree)

    def report(self, node: ast.AST, message: str) -> None:
        self.context.report(node, self.rule_id, message)


class ProjectRule(Rule):
    """Base class for cross-module (whole-program) rules.

    Where a :class:`Rule` sees one file's AST, a project rule runs
    *once per analysis* against the resolved
    :class:`~repro.lint.project.ProjectModel` and reports violations
    attributed to whichever files the facts point at.  Subclasses
    override :meth:`check_project`; the per-file visitor machinery is
    inert for them (the analyzer never calls :meth:`Rule.run` on a
    project rule).

    Suppressions, config ``rule-excludes``, and ``--select`` apply to
    project-rule violations exactly as to per-file ones — filtering
    happens downstream on the reported path/line.
    """

    def __init__(self) -> None:  # no FileContext: the project is the scope
        self.violations: List[Violation] = []

    def check_project(self, model: "ProjectModel", graph: "CallGraph") -> None:
        raise NotImplementedError

    def report_at(
        self, path: str, line: int, column: int, message: str
    ) -> None:
        self.violations.append(
            Violation(
                path=path,
                line=line,
                column=column,
                rule_id=self.rule_id,
                message=message,
            )
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the global rule registry.

    Raises:
        ValueError: on a missing, malformed, or duplicate ``rule_id``.
    """
    rule_id = cls.rule_id
    if not (
        len(rule_id) == 5 and rule_id.startswith("RL") and rule_id[2:].isdigit()
    ):
        raise ValueError(f"rule id {rule_id!r} must look like 'RL001'")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """All registered rules, keyed by id, in id order."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def file_rules() -> Dict[str, Type[Rule]]:
    """The per-file rules only (everything except project rules)."""
    return {
        rid: cls
        for rid, cls in all_rules().items()
        if not issubclass(cls, ProjectRule)
    }


def project_rules() -> Dict[str, Type[ProjectRule]]:
    """The cross-module rules only."""
    return {
        rid: cls
        for rid, cls in all_rules().items()
        if issubclass(cls, ProjectRule)
    }


def known_rule_ids() -> List[str]:
    """The sorted ids of every registered rule."""
    return sorted(all_rules())


def _load_builtin_rules() -> None:
    # Import for the registration side effect; deferred so that
    # ``import repro.lint`` stays cheap and so rules can import registry
    # without a cycle.
    from . import rules  # noqa: F401
