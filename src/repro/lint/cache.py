"""On-disk incremental cache: per-file content hash → parsed facts.

``repro lint`` re-runs on every commit; parsing a few hundred files
dominates its runtime.  The cache stores, per file, the SHA-256 of the
source bytes together with the two things the analyzer derives from the
AST — the per-file rule violations (pre-suppression, all rules) and the
:class:`~repro.lint.project.FileFacts` record the cross-module rules
query.  A warm run therefore reads and hashes every file (cheap), skips
``ast.parse`` plus every per-file rule for unchanged files, rebuilds the
project model from the cached facts, and runs only the cross-module
rules fresh — those are graph queries, not parses.

Soundness: per-file rule results depend only on the file's bytes, so a
hash hit may reuse them verbatim.  Cross-module rules depend on *other*
files too and are therefore never cached.  Suppression filtering,
config filtering, and ``--select`` narrowing all happen downstream of
the cache (cached entries always hold the full, unfiltered result), so
changing flags or ``pyproject.toml`` never requires invalidation.  The
cache key bakes in a schema version and the registered rule-id set;
adding or renaming a rule invalidates everything at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .project import FileFacts, facts_from_dict
from .violations import Violation

#: Bump when the cached schema (facts or violation fields) changes.
CACHE_SCHEMA_VERSION = 1

#: Default cache file name, resolved against the config root (the
#: directory holding pyproject.toml) so every invocation shares it.
DEFAULT_CACHE_NAME = ".reprolint-cache.json"


def content_hash(source_bytes: bytes) -> str:
    """The cache key of one file's content."""
    return hashlib.sha256(source_bytes).hexdigest()


def ruleset_signature(rule_ids: Iterable[str]) -> str:
    """A fingerprint of the registered rules; part of the cache key."""
    return hashlib.sha256(",".join(sorted(rule_ids)).encode()).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss accounting for one analyzer run."""

    hits: int = 0
    misses: int = 0

    @property
    def files(self) -> int:
        return self.hits + self.misses


@dataclass
class LintCache:
    """The cache contents, plus load/save plumbing.

    Entries are keyed by file path; each holds the content hash it was
    computed from, the serialized facts, and the serialized per-file
    violations.
    """

    path: Optional[str] = None
    signature: str = ""
    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _dirty: bool = field(default=False, repr=False)

    @classmethod
    def load(cls, path: Optional[str], signature: str) -> "LintCache":
        """Load the cache file; any mismatch (missing, unreadable,
        wrong schema or ruleset) yields an empty cache that will be
        rewritten on save."""
        cache = cls(path=path, signature=signature)
        if path is None or not os.path.isfile(path):
            return cache
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return cache
        if (
            data.get("schema") != CACHE_SCHEMA_VERSION
            or data.get("signature") != signature
        ):
            return cache
        entries = data.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def lookup(
        self, path: str, digest: str
    ) -> Optional[Tuple[FileFacts, List[Violation]]]:
        """The cached (facts, per-file violations) for ``path`` at
        ``digest``, or ``None`` on miss.  Updates the stats either way."""
        entry = self.entries.get(path)
        if entry is None or entry.get("hash") != digest:
            self.stats.misses += 1
            return None
        try:
            facts = facts_from_dict(entry["facts"])
            violations = [
                Violation(
                    path=v["path"],
                    line=int(v["line"]),
                    column=int(v["column"]),
                    rule_id=str(v["rule"]),
                    message=str(v["message"]),
                )
                for v in entry["violations"]
            ]
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return facts, violations

    def store(
        self,
        path: str,
        digest: str,
        facts: FileFacts,
        violations: List[Violation],
    ) -> None:
        self.entries[path] = {
            "hash": digest,
            "facts": facts.as_dict(),
            "violations": [v.as_dict() for v in violations],
        }
        self._dirty = True

    def prune(self, live_paths: Iterable[str]) -> None:
        """Drop entries for files no longer part of the run."""
        live = set(live_paths)
        stale = [p for p in self.entries if p not in live]
        for p in stale:
            del self.entries[p]
            self._dirty = True

    def save(self) -> None:
        """Atomically persist (write-to-temp + rename); a cache that
        cannot be written degrades to a cold run, never to an error."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "signature": self.signature,
            "entries": self.entries,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        tmp_path: Optional[str] = None
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=".reprolint-cache-", suffix=".tmp", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_path, self.path)
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
