"""Inline ``# reprolint: disable=...`` suppression comments.

Two scopes (shown with a space before the colon so these docstring
examples are not parsed as live directives by the line scanner):

* line — ``x = risky()  # reprolint : disable=RL003`` silences the
  named rules for violations reported *on that line*;
* file — a standalone ``# reprolint : disable-file=RL001`` comment
  anywhere in the file (conventionally at the top) silences the named
  rules for the whole file.

A suppression naming a rule id that does not exist is itself reported
(as the :data:`~repro.lint.violations.META_RULE_ID` meta rule): a typo
in a suppression would otherwise silently disable nothing while looking
like it disabled something.  A suppression naming a rule that no longer
fires where the comment sits is reported the same way (unused
suppression) — stale pragmas cannot accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from .violations import META_RULE_ID, Violation

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Directive:
    """One rule id named by one suppression comment.

    A comment naming two rules yields two directives — the unit the
    unused-suppression check and the baseline ratchet count.
    """

    lineno: int
    column: int
    rule_id: str
    scope: str  # "line" | "file"


@dataclass
class SuppressionTable:
    """Parsed suppressions of one file.

    Attributes:
        by_line: rule ids silenced per 1-based line number.
        whole_file: rule ids silenced for every line.
        directives: every individual (line, rule) suppression, for the
            unused-suppression check and the ratchet's counts.
        problems: violations about the suppressions themselves
            (unknown rule ids).
    """

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)
    directives: List[Directive] = field(default_factory=list)
    problems: List[Violation] = field(default_factory=list)

    def is_suppressed(self, violation: Violation) -> bool:
        if violation.rule_id == META_RULE_ID:
            return False  # meta diagnostics cannot be silenced
        if violation.rule_id in self.whole_file:
            return True
        return violation.rule_id in self.by_line.get(violation.line, set())


def parse_suppressions(
    path: str, source_lines: Sequence[str], known_ids: Iterable[str]
) -> SuppressionTable:
    """Scan ``source_lines`` for reprolint directives.

    Args:
        path: file path, for the unknown-id diagnostics.
        source_lines: the file's lines (no trailing newlines required).
        known_ids: every registered rule id; anything else named in a
            directive is reported.
    """
    # The meta id is recognized (not "unknown") but has no effect:
    # is_suppressed never silences meta diagnostics.
    known = set(known_ids) | {META_RULE_ID}
    table = SuppressionTable()
    for lineno, line in enumerate(source_lines, start=1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        unknown = sorted(ids - known)
        for bad in unknown:
            table.problems.append(
                Violation(
                    path=path,
                    line=lineno,
                    column=match.start(),
                    rule_id=META_RULE_ID,
                    message=(
                        f"suppression names unknown rule id {bad!r} "
                        f"(known: {', '.join(sorted(known))})"
                    ),
                )
            )
        valid = ids & known
        scope = "file" if match.group("scope") == "disable-file" else "line"
        for rule_id in sorted(valid):
            table.directives.append(
                Directive(
                    lineno=lineno,
                    column=match.start(),
                    rule_id=rule_id,
                    scope=scope,
                )
            )
        if scope == "file":
            table.whole_file |= valid
        else:
            table.by_line.setdefault(lineno, set()).update(valid)
    return table
