"""The one sanctioned monotonic clock.

Every duration in this repository is a difference of two readings of
this clock — the per-phase timings of :func:`repro.core.ebrr.plan_route`,
the baseline timing dicts, the experiment harness, and every trace span
of :mod:`repro.obs.trace`.  ``time.perf_counter()`` appears exactly once
in ``src/`` (here); the RL008 lint rule enforces that everything else
goes through these helpers, so there is a single timing implementation
to reason about (resolution, monotonicity, cross-process comparability).

``perf_counter`` reads the system-wide monotonic clock on every major
platform (``CLOCK_MONOTONIC`` on Linux/macOS, ``QPC`` on Windows), so
readings taken in different processes of the same run are directly
comparable — the property the cross-process span collection of
:mod:`repro.obs.collect` relies on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


def now() -> float:
    """The current monotonic reading, in fractional seconds."""
    return time.perf_counter()


@contextmanager
def stopwatch(sink: Dict[str, float], key: str) -> Iterator[None]:
    """Record elapsed seconds into ``sink[key]`` (also on exception)."""
    start = now()
    try:
        yield
    finally:
        sink[key] = now() - start


def timed(func: Callable[[], T]) -> Tuple[T, float]:
    """Run ``func`` once; return ``(result, elapsed_seconds)``."""
    start = now()
    result = func()
    return result, now() - start
