"""Cross-process span collection: the worker ↔ parent trace contract.

The parallel substrate (:mod:`repro.parallel`) runs chunks of work in
pool processes.  Mirroring how each worker's ``SearchStats`` travel back
for :meth:`SearchEngine.absorb`, each worker also ships its *spans* and
*metric deltas* home, so a ``--workers 4`` run yields one coherent
trace:

* the pool initializer calls :func:`begin_worker_trace`, installing a
  fresh enabled trace whose lane is ``worker-<pid>`` (a fork-started
  child would otherwise inherit — and corrupt — the parent's buffer);
* after each task the worker calls :func:`drain_shard`, harvesting the
  spans recorded since the previous drain (rebased to be
  self-contained) plus the metrics accumulated so far, into a picklable
  :class:`TraceShard` returned with the task result;
* the parent calls :func:`merge_shard` on its enabled trace, appending
  the shard's spans (re-indexed, optionally parented under the parent's
  fan-out span) and folding its metrics.

Timestamps are *not* rebased: :mod:`repro.obs.clock` reads the
system-wide monotonic clock, so parent and worker readings share a
timebase and worker spans land at their true position on the timeline.

Drains must happen at span-tree boundaries (no span still open); the
worker entry points in :mod:`repro.parallel` guarantee this by draining
only between tasks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .trace import Span, Trace, current_trace, enable, set_default_lane


@dataclass
class TraceShard:
    """One worker's picklable trace contribution.

    Attributes:
        lane: the worker's lane label (``worker-<pid>``).
        spans: self-contained span list (indices from 0, parents
            internal or ``None``).
        metrics: :meth:`MetricsRegistry.as_dict` snapshot of the
            metrics *delta* since the previous drain.
    """

    lane: str
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)


# Worker-process drain state: index of the first not-yet-shipped span,
# and the last metrics snapshot shipped (for delta computation).
_DRAIN_MARK = 0
_SHIPPED_METRICS: Optional[MetricsRegistry] = None


def worker_lane() -> str:
    """The lane label for this process."""
    return f"worker-{os.getpid()}"


def begin_worker_trace() -> Trace:
    """Install a fresh enabled trace for a pool worker process and
    return it.  Safe under both ``fork`` (discards the inherited parent
    buffer) and ``spawn`` (nothing inherited)."""
    global _DRAIN_MARK, _SHIPPED_METRICS
    lane = worker_lane()
    set_default_lane(lane)
    trace = enable(Trace(lane=lane))
    _DRAIN_MARK = 0
    _SHIPPED_METRICS = MetricsRegistry()
    return trace


def drain_shard() -> Optional[TraceShard]:
    """Harvest everything recorded since the last drain into a shard;
    ``None`` when no worker trace is enabled (tracing-off runs ship
    nothing).  Must be called at a span-tree boundary."""
    trace = current_trace()
    if trace is None:
        return None
    global _DRAIN_MARK, _SHIPPED_METRICS
    if trace.open_depth():
        raise RuntimeError(
            "drain_shard called with spans still open; drain only "
            "between tasks"
        )
    mark = _DRAIN_MARK
    spans: List[Span] = []
    for span in trace.spans[mark:]:
        parent = span.parent
        spans.append(
            replace(
                span,
                index=span.index - mark,
                parent=parent - mark
                if parent is not None and parent >= mark
                else None,
                attrs=dict(span.attrs),
            )
        )
    _DRAIN_MARK = len(trace.spans)

    shipped = _SHIPPED_METRICS if _SHIPPED_METRICS is not None else MetricsRegistry()
    delta = MetricsRegistry()
    delta.merge(trace.metrics)
    for name, counter in shipped.counters.items():
        delta.counter(name).value -= counter.value
    delta.counters = {
        name: counter
        for name, counter in delta.counters.items()
        if counter.value
    }
    for name, histogram in shipped.histograms.items():
        mine = delta.histogram(name)
        mine.count -= histogram.count
        mine.total -= histogram.total
    delta.histograms = {
        name: histogram
        for name, histogram in delta.histograms.items()
        if histogram.count
    }
    snapshot = MetricsRegistry()
    snapshot.merge(trace.metrics)
    _SHIPPED_METRICS = snapshot
    return TraceShard(lane=trace.lane, spans=spans, metrics=delta.as_dict())


def merge_shard(
    trace: Trace, shard: TraceShard, *, parent: Optional[int] = None
) -> None:
    """Append a worker shard to ``trace``: spans re-indexed onto the end
    of the buffer (shard roots adopted by ``parent`` when given, so the
    worker's work hangs under the parent's fan-out span in the tree
    view while staying in its own lane on the timeline), metrics folded
    per :meth:`MetricsRegistry.merge` semantics."""
    offset = len(trace.spans)
    for span in shard.spans:
        trace.spans.append(
            replace(
                span,
                index=span.index + offset,
                parent=span.parent + offset if span.parent is not None else parent,
                lane=shard.lane,
                attrs=dict(span.attrs),
            )
        )
    trace.metrics.merge(MetricsRegistry.from_dict(shard.metrics))
