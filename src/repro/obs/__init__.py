"""repro.obs — the unified tracing + metrics substrate.

One observability surface for the whole system, replacing the four
ad-hoc mechanisms that grew alongside it (engine ``SearchStats``
snapshots, ``eval/timing`` stopwatch sinks, the perf-counter pairs in
``plan_route``, and the diagnostics report's own timing table):

* **clock** — :func:`now`, :func:`stopwatch`, :func:`timed`: the single
  monotonic timing implementation (RL008 bans raw ``perf_counter``
  elsewhere);
* **spans** — :func:`span` / :func:`traced` record hierarchical timed
  regions into the enabled :class:`Trace`, at no measurable cost while
  disabled;
* **metrics** — the per-trace :class:`MetricsRegistry` (counters,
  gauges, histograms) absorbs engine search counters so a trace carries
  the same totals as ``--profile-searches``;
* **exporters** — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto), JSONL, and a deterministic text summary tree;
* **cross-process collection** — pool workers ship
  :class:`~repro.obs.collect.TraceShard`\\ s back to the parent, so a
  ``--workers 4`` run produces one trace with per-worker lanes and
  metric totals identical to serial.

Quickstart::

    from repro import obs

    with obs.tracing() as trace:
        result = plan_route(instance, config)
    obs.write_chrome_trace(trace, "plan.json")   # open in Perfetto
    print(obs.summarize(trace.spans, trace.metrics.as_dict()))
"""

from .clock import now, stopwatch, timed
from .collect import TraceShard, begin_worker_trace, drain_shard, merge_shard, worker_lane
from .export import (
    chrome_trace,
    load_chrome_trace,
    load_jsonl,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import SEARCH_STAT_FIELDS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NULL_SPAN,
    PLAN_PHASES,
    LiveSpan,
    Span,
    Trace,
    current_trace,
    default_lane,
    disable,
    enable,
    extract_run,
    iter_tree,
    phase_timings,
    set_default_lane,
    span,
    traced,
    tracing,
)

__all__ = [
    "now",
    "stopwatch",
    "timed",
    "Span",
    "LiveSpan",
    "Trace",
    "span",
    "traced",
    "tracing",
    "enable",
    "disable",
    "current_trace",
    "extract_run",
    "phase_timings",
    "iter_tree",
    "NULL_SPAN",
    "PLAN_PHASES",
    "SEARCH_STAT_FIELDS",
    "set_default_lane",
    "default_lane",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceShard",
    "begin_worker_trace",
    "drain_shard",
    "merge_shard",
    "worker_lane",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_chrome_trace",
    "load_jsonl",
    "validate_chrome_trace",
    "summarize",
]
