"""Trace exporters: Chrome trace-event JSON, JSONL, and a text summary.

The Chrome format is the `trace-event` JSON object form — open the file
in ``chrome://tracing`` or https://ui.perfetto.dev to get a zoomable
timeline with one track per process lane.  Spans are complete ("X")
events in microseconds; the span/parent buffer indices ride along in
``args`` so :func:`load_chrome_trace` can rebuild the exact tree (and
``repro trace summarize`` can re-render it) without interval-containment
guessing.  Metric totals travel in the top-level ``metadata`` key, which
both viewers ignore.

JSONL is the streaming-friendly twin: one ``meta`` line, one line per
span, one per metric — greppable and diffable.

:func:`summarize` renders the deterministic text tree used by golden
tests and the CLI: spans aggregated by path (children in first-seen
order), with call counts, total seconds, and percent of the root.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .trace import Span, Trace

#: Chrome trace timestamps are integer-ish microseconds.
_US = 1e6

FORMAT_VERSION = 1


def _lane_order(spans: List[Span]) -> List[str]:
    """Lanes in first-appearance order, "main" always first if present."""
    lanes: List[str] = []
    for span in spans:
        if span.lane not in lanes:
            lanes.append(span.lane)
    if "main" in lanes:
        lanes.remove("main")
        lanes.insert(0, "main")
    return lanes


def chrome_trace(trace: Trace) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object."""
    lanes = _lane_order(trace.spans)
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for lane in lanes:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid_of[lane],
                "args": {"name": lane},
            }
        )
    for span in trace.spans:
        args: Dict[str, Any] = dict(span.attrs)
        args["span"] = span.index
        if span.parent is not None:
            args["parent"] = span.parent
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "pid": 0,
                "tid": tid_of[span.lane],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "generator": "repro.obs",
            "version": FORMAT_VERSION,
            "lanes": lanes,
            "metrics": trace.metrics.as_dict(),
        },
    }


def _record_trace_pointer(
    path: str, kind: str, run_id: Optional[int] = None
) -> None:
    """File a pointer to an exported trace in the experiment store when
    ``$REPRO_STORE`` opts in, so traces are one join away from the runs
    they explain.  ``run_id`` links the pointer to an already-recorded
    run row (the serve daemon records one per request).  Lazy import:
    obs stays dependency-free unless the store is actually in use."""
    from ..store import store_from_env

    store = store_from_env()
    if store is not None:
        with store:
            store.record_trace(path, kind=kind, run_id=run_id)


def write_chrome_trace(
    trace: Trace, path: str, *, run_id: Optional[int] = None
) -> None:
    """Write the Chrome trace JSON to ``path`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, indent=1, sort_keys=True)
        handle.write("\n")
    _record_trace_pointer(path, "chrome", run_id)


def validate_chrome_trace(obj: Any) -> List[str]:
    """Validate an object against the trace-event schema this module
    emits.  Returns a list of problems — empty means valid.  The CI
    ``trace`` job runs this on the artifact it uploads."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["top level must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    span_ids = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: ph must be 'X' or 'M', got {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {key} must be a number >= 0")
            args = event.get("args", {})
            if not isinstance(args, dict) or not isinstance(
                args.get("span"), int
            ):
                errors.append(f"{where}: args.span index missing")
            else:
                span_ids.add(args["span"])
    for i, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") == "X":
            parent = event.get("args", {}).get("parent")
            if parent is not None and parent not in span_ids:
                errors.append(f"traceEvents[{i}]: dangling parent {parent}")
    return errors


def load_chrome_trace(path: str) -> Tuple[List[Span], Dict[str, Any]]:
    """Rebuild ``(spans, metrics_dict)`` from a file this module wrote.

    Raises:
        ValueError: if the file fails :func:`validate_chrome_trace`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        obj = json.load(handle)
    errors = validate_chrome_trace(obj)
    if errors:
        raise ValueError(f"{path} is not a valid repro trace: {errors[:3]}")
    lane_of_tid: Dict[int, str] = {}
    for event in obj["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "thread_name":
            lane_of_tid[event["tid"]] = event["args"]["name"]
    spans: List[Span] = []
    for event in obj["traceEvents"]:
        if event["ph"] != "X":
            continue
        args = dict(event["args"])
        index = args.pop("span")
        parent = args.pop("parent", None)
        spans.append(
            Span(
                name=event["name"],
                start=event["ts"] / _US,
                duration=event["dur"] / _US,
                index=index,
                parent=parent,
                lane=lane_of_tid.get(event["tid"], f"tid-{event['tid']}"),
                attrs=args,
            )
        )
    spans.sort(key=lambda s: s.index)
    metrics = obj.get("metadata", {}).get("metrics", {})
    return spans, metrics


def write_jsonl(
    trace: Trace, path: str, *, run_id: Optional[int] = None
) -> None:
    """Write the trace as JSON lines: meta, spans, metrics."""
    _write_jsonl(trace, path)
    _record_trace_pointer(path, "jsonl", run_id)


def load_jsonl(path: str) -> Tuple[List[Span], Dict[str, Any]]:
    """Rebuild ``(spans, metrics_dict)`` from a :func:`write_jsonl`
    file — the inverse the CI serve job uses to re-validate a
    per-request JSONL trace against the Chrome schema (load, rebuild,
    :func:`validate_chrome_trace`).

    The returned metrics dict has the ``as_dict()`` shape
    (``counters``/``gauges``/``histograms``).

    Raises:
        ValueError: when the file is not a repro JSONL trace (bad meta
            line, unknown record type, or a span count that disagrees
            with the meta line).
    """
    spans: List[Span] = []
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    meta: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not JSON ({exc})"
                ) from None
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "span":
                spans.append(
                    Span(
                        name=record["name"],
                        start=record["start"],
                        duration=record["duration"],
                        index=record["index"],
                        parent=record["parent"],
                        lane=record["lane"],
                        attrs=dict(record.get("attrs", {})),
                    )
                )
            elif kind == "metric":
                metrics[record["kind"] + "s"][record["name"]] = record["value"]
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if meta is None or meta.get("generator") != "repro.obs":
        raise ValueError(f"{path}: missing repro.obs meta line")
    if meta.get("spans") != len(spans):
        raise ValueError(
            f"{path}: meta says {meta.get('spans')} spans, found {len(spans)}"
        )
    spans.sort(key=lambda s: s.index)
    return spans, metrics


def _write_jsonl(trace: Trace, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "type": "meta",
            "generator": "repro.obs",
            "version": FORMAT_VERSION,
            "lanes": _lane_order(trace.spans),
            "spans": len(trace.spans),
        }
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for span in trace.spans:
            record = {
                "type": "span",
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "index": span.index,
                "parent": span.parent,
                "lane": span.lane,
                "attrs": span.attrs,
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        metrics = trace.metrics.as_dict()
        for kind in ("counters", "gauges", "histograms"):
            for name, value in metrics[kind].items():
                record = {
                    "type": "metric",
                    "kind": kind[:-1],
                    "name": name,
                    "value": value,
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")


def summarize(
    spans: List[Span],
    metrics: Optional[Any] = None,
    *,
    max_depth: int = 6,
) -> str:
    """The deterministic text summary tree.

    Spans are aggregated by path — every occurrence of the same name
    chain folds into one line with a call count and a summed duration —
    with children in first-seen order, so two runs of the same code
    produce the same tree shape (durations differ, of course).

    ``metrics`` may be a :class:`~repro.obs.metrics.MetricsRegistry` or
    its ``as_dict()`` form.
    """
    if metrics is not None and hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    lanes = _lane_order(spans)
    roots = [s for s in spans if s.parent is None]
    total = sum(s.duration for s in roots)
    lines = [
        f"trace summary: {len(spans)} spans, "
        f"{len(lanes)} lane{'s' if len(lanes) != 1 else ''} "
        f"({', '.join(lanes)})"
    ]

    # path -> [count, total_duration]; insertion order preserves the
    # first-seen child order at every level.
    aggregate: Dict[Tuple[str, ...], List[float]] = {}
    paths: Dict[int, Tuple[str, ...]] = {}
    for span in spans:
        parent_path = paths.get(span.parent, ()) if span.parent is not None else ()
        path = parent_path + (span.name,)
        paths[span.index] = path
        entry = aggregate.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration

    for path, (count, duration) in aggregate.items():
        depth = len(path) - 1
        if depth >= max_depth:
            continue
        share = 100.0 * duration / total if total > 0 else 0.0
        label = "  " * depth + path[-1]
        lines.append(
            f"  {label:<40} {int(count):>5}x {duration:>12.6f}s {share:>6.1f}%"
        )

    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            lines.append("  metrics:")
            for name, value in sorted(counters.items()):
                lines.append(f"    {name:<42} {value:>14}")
    return "\n".join(lines)
