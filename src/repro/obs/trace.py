"""Hierarchical trace spans on the monotonic clock.

A :class:`Span` is one timed region of work — a name, a start reading
of :func:`repro.obs.clock.now`, a duration, free-form attributes, and a
parent link — appended to the flat buffer of a :class:`Trace`.  Parent
links are buffer indices, so a trace pickles, merges, and exports
without object graphs.

One module-global trace can be *enabled*; :func:`span` writes into it.
When no trace is enabled, :func:`span` returns a shared no-op handle
without reading the clock or allocating — the disabled cost is one
global load and one ``is None`` check per call site (gated below 3% of
the phase-breakdown workload by ``benchmarks/bench_trace_overhead.py``).

Each trace carries a *lane* label ("main" in the parent process,
``worker-<pid>`` in pool workers — see :mod:`repro.obs.collect`), which
becomes the thread track in the Chrome trace export, so a ``--workers
4`` run renders as one timeline with five lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import TracebackType
from typing import Any, Callable, Dict, Iterator, List, Optional, Type, TypeVar

from .clock import now
from .metrics import MetricsRegistry

F = TypeVar("F", bound=Callable[..., Any])

#: Phase names :func:`repro.core.ebrr.plan_route` records, in pipeline
#: order (the keys of ``EBRRResult.timings`` besides ``total``).
PLAN_PHASES = ("preprocess", "selection", "ordering", "refinement")


@dataclass
class Span:
    """One completed (or still-open) timed region.

    Attributes:
        name: the region label (dotted names group in the summary tree).
        start: :func:`~repro.obs.clock.now` reading at entry.
        duration: elapsed seconds (0.0 while still open).
        index: this span's position in its trace buffer.
        parent: buffer index of the enclosing span, ``None`` for roots.
        lane: process lane the span was recorded in.
        attrs: free-form attributes (JSON-serializable values).
    """

    name: str
    start: float
    duration: float = 0.0
    index: int = 0
    parent: Optional[int] = None
    lane: str = "main"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class LiveSpan:
    """Context-manager handle for one open span."""

    __slots__ = ("_trace", "span")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self.span = span

    def set(self, **attrs: Any) -> "LiveSpan":
        """Attach attributes to the open span."""
        self.span.attrs.update(attrs)
        return self

    def __enter__(self) -> "LiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._trace.finish(self.span)
        return False


class _NullSpan:
    """The shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Trace:
    """One run's span buffer plus its metrics registry.

    Args:
        lane: lane label stamped on spans recorded here; defaults to
            the process default (see :func:`set_default_lane`).
        clock: the time source (injectable for deterministic tests and
            golden exports; defaults to the monotonic clock).
    """

    def __init__(
        self,
        *,
        lane: Optional[str] = None,
        clock: Callable[[], float] = now,
    ) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self.lane = lane if lane is not None else _DEFAULT_LANE
        self._clock = clock
        self._stack: List[int] = []

    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> LiveSpan:
        """Open a child of the current span; use as a context manager."""
        span = Span(
            name=name,
            start=self._clock(),
            index=len(self.spans),
            parent=self._stack[-1] if self._stack else None,
            lane=self.lane,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(span)
        self._stack.append(span.index)
        return LiveSpan(self, span)

    def finish(self, span: Span) -> None:
        """Close ``span`` (and anything left open beneath it)."""
        span.duration = self._clock() - span.start
        while self._stack and self._stack.pop() != span.index:
            pass

    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self.spans[self._stack[-1]] if self._stack else None

    def open_depth(self) -> int:
        """How many spans are currently open (0 at tree boundaries)."""
        return len(self._stack)

    def children(self, parent_index: Optional[int]) -> List[Span]:
        """Direct children of the given span index (``None`` = roots)."""
        return [s for s in self.spans if s.parent == parent_index]


def extract_run(trace: Trace, first_index: int) -> List[Span]:
    """Copy ``trace.spans[first_index:]`` rebased so the slice is
    self-contained: indices start at 0 and parent links pointing before
    the slice become ``None``.  This is how one :func:`plan_route` run
    detaches its spans from a longer-lived trace for
    :attr:`~repro.core.result.EBRRResult.spans`."""
    run: List[Span] = []
    for span in trace.spans[first_index:]:
        parent = span.parent
        run.append(
            replace(
                span,
                index=span.index - first_index,
                parent=parent - first_index
                if parent is not None and parent >= first_index
                else None,
                attrs=dict(span.attrs),
            )
        )
    return run


def phase_timings(spans: List[Span], root_index: int = 0) -> Dict[str, float]:
    """The ``EBRRResult.timings`` dict derived from run spans: one key
    per :data:`PLAN_PHASES` child of the root span plus ``total`` (the
    root's own duration).  This is the *single* source of phase timings
    — the diagnostics report and the trace export cannot drift apart
    because both read the same measured spans."""
    timings: Dict[str, float] = {}
    for span in spans:
        if span.parent == root_index and span.name in PLAN_PHASES:
            timings[span.name] = span.duration
    if spans:
        timings["total"] = spans[root_index].duration
    return timings


# ----------------------------------------------------------------------
# The module-global enabled trace
# ----------------------------------------------------------------------

_ACTIVE: Optional[Trace] = None
_DEFAULT_LANE = "main"


def set_default_lane(lane: str) -> None:
    """Set the lane label new traces in this process default to.  Pool
    initializers call this with ``worker-<pid>`` so shards from every
    start method (fork or spawn) land in distinguishable lanes."""
    global _DEFAULT_LANE
    _DEFAULT_LANE = lane


def default_lane() -> str:
    return _DEFAULT_LANE


def enable(trace: Optional[Trace] = None) -> Trace:
    """Install ``trace`` (or a fresh one) as the process's enabled
    trace and return it."""
    global _ACTIVE
    _ACTIVE = trace if trace is not None else Trace()
    return _ACTIVE


def disable() -> Optional[Trace]:
    """Disable tracing; returns the trace that was enabled, if any."""
    global _ACTIVE
    trace, _ACTIVE = _ACTIVE, None
    return trace


def current_trace() -> Optional[Trace]:
    """The enabled trace, or ``None`` while tracing is disabled."""
    return _ACTIVE


def span(name: str, **attrs: Any) -> Any:
    """Open a span in the enabled trace; a shared no-op handle when
    tracing is disabled.  Use as a context manager::

        with span("selection", K=config.max_stops):
            ...
    """
    trace = _ACTIVE
    if trace is None:
        return NULL_SPAN
    return trace.begin(name, attrs if attrs else None)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable[[F], F]:
    """Decorator form of :func:`span`; defaults to the function name."""

    def decorate(func: F) -> F:
        import functools

        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            trace = _ACTIVE
            if trace is None:
                return func(*args, **kwargs)
            with trace.begin(label, attrs if attrs else None):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


class tracing:
    """Context manager: enable a trace for a block, restoring whatever
    was enabled before (nesting-safe, exception-safe)::

        with tracing() as trace:
            plan_route(...)
        write_chrome_trace(trace, "out.json")
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self._trace = trace if trace is not None else Trace()
        self._previous: Optional[Trace] = None

    def __enter__(self) -> Trace:
        self._previous = current_trace()
        return enable(self._trace)

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def iter_tree(
    spans: List[Span], parent: Optional[int] = None
) -> Iterator[Span]:
    """Yield ``spans`` in depth-first tree order (children in buffer
    order, which is start order within one lane)."""
    for s in spans:
        if s.parent == parent:
            yield s
            yield from iter_tree(spans, s.index)
