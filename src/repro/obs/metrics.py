"""Typed metrics: counters, gauges, histograms in one registry.

The registry is the numeric side of a :class:`~repro.obs.trace.Trace`:
spans say *where time went*, metrics say *how much work was done*.  The
engine's :class:`~repro.network.engine.SearchStats` blocks fold into
ordinary counters via :meth:`MetricsRegistry.absorb_search_stats`, so a
trace export carries the same totals as ``--profile-searches``.

Everything here is plain data: registries serialize with
:meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict`
(the cross-process shard contract of :mod:`repro.obs.collect`) and
merge deterministically with :meth:`MetricsRegistry.merge` — counters
and histograms add, gauges keep the incoming value (last write wins,
matching what a serial run would have recorded last).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Optional

#: The counter fields of one ``SearchStats`` block, in declaration order.
SEARCH_STAT_FIELDS = ("searches", "cache_hits", "settled", "pushes", "truncated")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Optional[float] = None) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks ``count`` / ``total`` / ``min`` / ``max`` — enough for the
    summary tree and for deterministic cross-process merging without
    keeping every observation.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All metrics of one trace, keyed by name within each kind."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # SearchStats absorption
    # ------------------------------------------------------------------

    def absorb_search_stats(self, phase: str, stats: Any) -> None:
        """Fold one engine :class:`SearchStats`-shaped block (anything
        with the five counter attributes) into ``search.<phase>.*`` and
        ``search.total.*`` counters."""
        for field in SEARCH_STAT_FIELDS:
            amount = getattr(stats, field)
            self.counter(f"search.{phase}.{field}").inc(amount)
            self.counter(f"search.total.{field}").inc(amount)

    def absorb_search_profile(self, profile: Mapping[str, Any]) -> None:
        """Absorb a whole per-phase stats dict (e.g.
        :attr:`~repro.core.result.EBRRResult.search_stats`)."""
        for phase, stats in profile.items():
            self.absorb_search_stats(phase, stats)

    # ------------------------------------------------------------------
    # Serialization + merging (the cross-process contract)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """A plain-data snapshot, stable under JSON round-trips."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"count": h.count, "total": h.total, "min": h.min, "max": h.max}
                for n, h in sorted(self.histograms.items())
                if h.count
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, summary in data.get("histograms", {}).items():
            histogram = registry.histogram(name)
            histogram.count = int(summary["count"])
            histogram.total = float(summary["total"])
            histogram.min = float(summary["min"])
            histogram.max = float(summary["max"])
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters and histograms
        add, gauges take the incoming value."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            mine = self.histogram(name)
            mine.count += histogram.count
            mine.total += histogram.total
            mine.min = min(mine.min, histogram.min)
            mine.max = max(mine.max, histogram.max)

    def names(self) -> Iterable[str]:
        """Every metric name, sorted, across all kinds."""
        return sorted(
            set(self.counters) | set(self.gauges) | set(self.histograms)
        )
