"""Demand (query) generators.

The paper's demand comes from historical transit-routing queries and
Uber Movement pickups/dropoffs.  Its key spatial property — the one the
whole evaluation hinges on — is that *some* demand sits near the
existing transit network (already covered) while a growing share sits
in under-served areas (the Lake Nona / airport-corridor pattern of the
case studies).  The generators below reproduce that structure:

* :func:`uniform_demand` — a null model, queries everywhere;
* :func:`hotspot_demand` — a Gaussian-mixture model whose hotspot
  centres are split between "covered" locations (near existing stops)
  and "uncovered growth" locations (far from every stop);
* :func:`commute_demand` — OD pairs from residential clusters to a
  downtown core, for the journey-planner experiments that need real
  origin/destination pairing rather than just the multiset.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..exceptions import DemandError
from ..network.engine import engine_for
from ..network.geometry import GridIndex, bounding_box
from ..network.graph import RoadNetwork
from ..transit.network import TransitNetwork
from .query import QuerySet, TransitQuery


def uniform_demand(
    network: RoadNetwork, num_nodes: int, *, seed: int = 0, name: str = "uniform"
) -> QuerySet:
    """``num_nodes`` query nodes drawn uniformly from the network."""
    if num_nodes < 1:
        raise DemandError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, network.num_nodes, size=num_nodes)
    return QuerySet(network, (int(v) for v in nodes), name=name)


def hotspot_demand(
    network: RoadNetwork,
    num_nodes: int,
    *,
    num_hotspots: int = 8,
    sigma_km: float = 0.8,
    transit: Optional[TransitNetwork] = None,
    uncovered_fraction: float = 0.5,
    background_fraction: float = 0.1,
    seed: int = 0,
    name: str = "hotspot",
) -> QuerySet:
    """Gaussian-mixture demand with covered and uncovered hotspots.

    Args:
        network: the road network.
        num_nodes: size of the multiset ``Q``.
        num_hotspots: number of mixture components.
        sigma_km: spatial spread of each hotspot.
        transit: if given, hotspot centres are split into two kinds —
            ``uncovered_fraction`` of them are placed at the nodes
            *farthest* from any existing stop (new growth areas whose
            demand the current network misses), the rest at nodes *near*
            stops (established demand).  Without ``transit`` all centres
            are uniform.
        uncovered_fraction: share of hotspots in uncovered areas.
        background_fraction: share of ``Q`` scattered uniformly.
        seed: RNG seed.
        name: label for experiment reports.
    """
    if num_nodes < 1:
        raise DemandError(f"num_nodes must be >= 1, got {num_nodes}")
    if not (0.0 <= uncovered_fraction <= 1.0):
        raise DemandError("uncovered_fraction must be in [0, 1]")
    if not (0.0 <= background_fraction < 1.0):
        raise DemandError("background_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    centers = _pick_hotspot_centers(
        network, num_hotspots, transit, uncovered_fraction, rng
    )
    index = GridIndex(network.coordinates(), cell_size=max(sigma_km, 0.25))
    coords = network.coordinates()

    nodes: List[int] = []
    num_background = int(num_nodes * background_fraction)
    for _ in range(num_background):
        nodes.append(int(rng.integers(0, network.num_nodes)))
    for _ in range(num_nodes - num_background):
        cx, cy = coords[centers[int(rng.integers(0, len(centers)))]]
        x = cx + rng.normal(0.0, sigma_km)
        y = cy + rng.normal(0.0, sigma_km)
        nodes.append(index.nearest((x, y)))
    return QuerySet(network, nodes, name=name)


def commute_demand(
    network: RoadNetwork,
    num_queries: int,
    *,
    num_residential: int = 6,
    sigma_km: float = 0.7,
    seed: int = 0,
) -> List[TransitQuery]:
    """Origin/destination commute queries: origins scattered around
    residential cluster centres, destinations around the network's
    geographic core.  Returns full OD pairs (Definition 4) for use with
    the journey planner; build the multiset with
    :meth:`QuerySet.from_queries`.
    """
    if num_queries < 1:
        raise DemandError(f"num_queries must be >= 1, got {num_queries}")
    rng = np.random.default_rng(seed)
    coords = network.coordinates()
    index = GridIndex(coords, cell_size=max(sigma_km, 0.25))
    min_x, min_y, max_x, max_y = bounding_box(coords)
    core = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
    residential = [
        coords[int(rng.integers(0, network.num_nodes))] for _ in range(num_residential)
    ]
    queries: List[TransitQuery] = []
    for _ in range(num_queries):
        rx, ry = residential[int(rng.integers(0, num_residential))]
        origin = index.nearest(
            (rx + rng.normal(0, sigma_km), ry + rng.normal(0, sigma_km))
        )
        destination = index.nearest(
            (core[0] + rng.normal(0, sigma_km), core[1] + rng.normal(0, sigma_km))
        )
        if origin != destination:
            queries.append(TransitQuery(origin, destination))
    if not queries:
        raise DemandError("commute_demand produced no distinct OD pairs")
    return queries


def _pick_hotspot_centers(
    network: RoadNetwork,
    num_hotspots: int,
    transit: Optional[TransitNetwork],
    uncovered_fraction: float,
    rng: np.random.Generator,
) -> List[int]:
    """Hotspot centre nodes, split covered/uncovered when transit data
    is available."""
    if num_hotspots < 1:
        raise DemandError(f"num_hotspots must be >= 1, got {num_hotspots}")
    if transit is None or not transit.existing_stops:
        return [int(v) for v in rng.integers(0, network.num_nodes, size=num_hotspots)]

    dist_to_stop = engine_for(network).multi_source(
        transit.existing_stops, phase="demand"
    )
    finite = [(d if math.isfinite(d) else 0.0) for d in dist_to_stop]
    order = sorted(range(network.num_nodes), key=lambda v: finite[v])

    num_uncovered = round(num_hotspots * uncovered_fraction)
    num_covered = num_hotspots - num_uncovered
    centers: List[int] = []
    # Uncovered growth areas: sample from the farthest decile.
    far_pool = order[-max(1, network.num_nodes // 10):]
    for _ in range(num_uncovered):
        centers.append(int(far_pool[int(rng.integers(0, len(far_pool)))]))
    # Established demand: sample from the nearest quartile.
    near_pool = order[: max(1, network.num_nodes // 4)]
    for _ in range(num_covered):
        centers.append(int(near_pool[int(rng.integers(0, len(near_pool)))]))
    return centers
