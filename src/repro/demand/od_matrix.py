"""Zone-to-zone origin/destination matrices.

The paper's Orlando demand comes from Uber Movement, which publishes
*zone-level* OD data, not raw points.  This module closes that gap:

* :class:`ZoneGrid` — a uniform zoning of the network's extent, mapping
  every node to a zone and back;
* :class:`ODMatrix` — trip counts between zones, buildable from raw
  queries (aggregation) or loaded from the kind of zone-pair rows Uber
  Movement ships; and sampleable back into node-level
  :class:`~repro.demand.query.TransitQuery` lists / ``Q`` multisets so
  every planner runs on it unchanged.

Aggregate → sample is the standard way to synthesize privacy-safe
demand that preserves the zone-level structure.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import DemandError
from ..network.geometry import bounding_box
from ..network.graph import RoadNetwork
from .query import QuerySet, TransitQuery

ZonePair = Tuple[int, int]


class ZoneGrid:
    """A uniform rectangular zoning of a road network.

    Args:
        network: the network to zone.
        zone_km: zone side length (kilometres).
    """

    def __init__(self, network: RoadNetwork, zone_km: float = 2.0) -> None:
        if zone_km <= 0:
            raise DemandError(f"zone_km must be positive, got {zone_km}")
        self._network = network
        self._zone_km = zone_km
        min_x, min_y, max_x, max_y = bounding_box(network.coordinates())
        self._min_x, self._min_y = min_x, min_y
        self._cols = max(1, int(math.ceil((max_x - min_x) / zone_km)))
        self._rows = max(1, int(math.ceil((max_y - min_y) / zone_km)))
        self._zone_of: List[int] = [
            self._zone_for_point(*network.coordinate(v))
            for v in network.nodes()
        ]
        members: Dict[int, List[int]] = {}
        for node, zone in enumerate(self._zone_of):
            members.setdefault(zone, []).append(node)
        self._members = members

    def _zone_for_point(self, x: float, y: float) -> int:
        col = min(self._cols - 1, max(0, int((x - self._min_x) / self._zone_km)))
        row = min(self._rows - 1, max(0, int((y - self._min_y) / self._zone_km)))
        return row * self._cols + col

    @property
    def num_zones(self) -> int:
        """Total grid cells (including empty ones)."""
        return self._rows * self._cols

    def zone_of(self, node: int) -> int:
        """The zone containing ``node``."""
        return self._zone_of[node]

    def nodes_in(self, zone: int) -> List[int]:
        """Road nodes inside ``zone`` (empty list for empty zones)."""
        return list(self._members.get(zone, ()))

    def populated_zones(self) -> List[int]:
        """Zones containing at least one node, sorted."""
        return sorted(self._members)


class ODMatrix:
    """Trip counts between zones of a :class:`ZoneGrid`.

    Args:
        grid: the zoning.
        counts: mapping ``(origin_zone, destination_zone) -> trips``.
    """

    def __init__(self, grid: ZoneGrid, counts: Dict[ZonePair, float]) -> None:
        self._grid = grid
        self._counts: Dict[ZonePair, float] = {}
        for (o, d), trips in counts.items():
            if trips < 0:
                raise DemandError(f"negative trip count for zones ({o}, {d})")
            if not (0 <= o < grid.num_zones and 0 <= d < grid.num_zones):
                raise DemandError(f"zone pair ({o}, {d}) outside the grid")
            if trips > 0:
                if not grid.nodes_in(o) or not grid.nodes_in(d):
                    raise DemandError(
                        f"zone pair ({o}, {d}) references an empty zone"
                    )
                self._counts[(o, d)] = float(trips)
        if not self._counts:
            raise DemandError("OD matrix has no positive entries")

    @classmethod
    def from_queries(
        cls,
        grid: ZoneGrid,
        queries: Sequence[TransitQuery],
    ) -> "ODMatrix":
        """Aggregate raw OD queries to zone level."""
        counts: Counter = Counter()
        for q in queries:
            counts[(grid.zone_of(q.origin), grid.zone_of(q.destination))] += 1
        return cls(grid, dict(counts))

    @property
    def total_trips(self) -> float:
        return sum(self._counts.values())

    def trips(self, origin_zone: int, destination_zone: int) -> float:
        """Trip count for one zone pair (0 if absent)."""
        return self._counts.get((origin_zone, destination_zone), 0.0)

    def pairs(self) -> List[Tuple[ZonePair, float]]:
        """All positive entries, sorted by zone pair."""
        return sorted(self._counts.items())

    # ------------------------------------------------------------------
    # Disaggregation
    # ------------------------------------------------------------------

    def sample_queries(self, num_queries: int, *, seed: int = 0) -> List[TransitQuery]:
        """Sample node-level OD queries proportional to zone-pair trips,
        with uniform node placement inside each zone."""
        if num_queries < 1:
            raise DemandError(f"num_queries must be >= 1, got {num_queries}")
        rng = np.random.default_rng(seed)
        pairs = list(self._counts)
        weights = np.asarray([self._counts[p] for p in pairs], dtype=float)
        weights /= weights.sum()
        picks = rng.choice(len(pairs), size=num_queries, p=weights)
        queries: List[TransitQuery] = []
        for pick in picks:
            o_zone, d_zone = pairs[int(pick)]
            o_nodes = self._grid.nodes_in(o_zone)
            d_nodes = self._grid.nodes_in(d_zone)
            origin = o_nodes[int(rng.integers(0, len(o_nodes)))]
            destination = d_nodes[int(rng.integers(0, len(d_nodes)))]
            queries.append(TransitQuery(origin, destination))
        return queries

    def sample_query_set(
        self, network: RoadNetwork, num_queries: int, *, seed: int = 0,
        name: str = "od-matrix",
    ) -> QuerySet:
        """Sample straight into the multiset ``Q`` (both endpoints)."""
        queries = self.sample_queries(num_queries, seed=seed)
        return QuerySet.from_queries(network, queries, name=name)
