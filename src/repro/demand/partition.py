"""Spatial partitioning of query multisets.

The "Effect of Q" experiments (Figs. 9, 10, 14) split a city's demand
into sub-multisets: Chicago into four equal-size bands along the
vertical direction, NYC into its four boroughs.  Both splits are
reproduced here:

* :func:`vertical_bands` — equal-size quantile bands by the query
  node's y coordinate (the paper's Chicago Dataset1-4);
* :func:`by_regions` — assignment to named seed points (borough
  centres) by nearest-centre rule, a Voronoi partition.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import DemandError
from ..network.geometry import Point, euclidean
from .query import QuerySet


def vertical_bands(queries: QuerySet, num_bands: int = 4) -> List[QuerySet]:
    """Split ``Q`` into ``num_bands`` parts of (nearly) equal size by
    the y coordinate of each query node.

    Returns query sets named ``Dataset1..DatasetN`` from south to north,
    mirroring the paper's Chicago split.
    """
    if num_bands < 1:
        raise DemandError(f"num_bands must be >= 1, got {num_bands}")
    if num_bands > len(queries):
        raise DemandError(
            f"cannot split {len(queries)} query nodes into {num_bands} bands"
        )
    network = queries.network
    ordered = sorted(queries.nodes, key=lambda v: network.coordinate(v)[1])
    size = len(ordered) / num_bands
    bands: List[QuerySet] = []
    for b in range(num_bands):
        lo = round(b * size)
        hi = round((b + 1) * size) if b + 1 < num_bands else len(ordered)
        members = ordered[lo:hi]
        bands.append(queries.subset(members, name=f"Dataset{b + 1}"))
    return bands


def by_regions(
    queries: QuerySet, regions: Sequence[Tuple[str, Point]]
) -> List[QuerySet]:
    """Split ``Q`` by nearest region centre (Voronoi assignment).

    Args:
        queries: the full multiset.
        regions: ``(name, (x, y))`` pairs — e.g. the four NYC borough
            centres.  Every query node is assigned to its nearest centre.

    Returns:
        One query set per region, in the given order.  Regions that
        receive no query node are returned as empty markers via a
        :class:`DemandError` — the caller should choose sensible centres.
    """
    if not regions:
        raise DemandError("by_regions needs at least one region")
    network = queries.network
    buckets: Dict[str, List[int]] = {name: [] for name, _ in regions}
    centers = [(name, center) for name, center in regions]
    for v in queries.nodes:
        point = network.coordinate(v)
        best_name = min(centers, key=lambda item: euclidean(item[1], point))[0]
        buckets[best_name].append(v)
    result: List[QuerySet] = []
    for name, _ in regions:
        members = buckets[name]
        if not members:
            raise DemandError(f"region {name!r} received no query nodes")
        result.append(queries.subset(members, name=name))
    return result
