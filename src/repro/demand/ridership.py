"""Ridership-driven demand extraction (the case-study workloads).

The Orlando case study (Fig. 1) builds its query multiset from Lynx
ridership data; the Chicago case study (Fig. 12) highlights demand that
the current network leaves "uncovered".  Real feeds are not available
offline, so :func:`ridership_demand` simulates the same extraction:

* a share of demand proportional to *stop-level ridership* — each
  existing stop gets a ridership weight (heavy-tailed, so a few hub
  stops dominate, like real boarding counts) and spawns query nodes
  around itself;
* a share of *growth-corridor* demand placed in clusters far from every
  existing stop, representing the new neighbourhoods (Lake Nona, the
  airport corridor) whose trips the network misses today.

The split between the two shares is the experiment knob: the paper's
case studies succeed precisely because EBRR chases the second share
while the baselines chase the first.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..exceptions import DemandError
from ..network.engine import engine_for
from ..network.geometry import GridIndex
from ..network.graph import RoadNetwork
from ..transit.network import TransitNetwork
from .query import QuerySet


def ridership_demand(
    transit: TransitNetwork,
    num_nodes: int,
    *,
    growth_fraction: float = 0.45,
    num_growth_clusters: int = 3,
    sigma_km: float = 0.6,
    pareto_shape: float = 1.2,
    seed: int = 0,
    name: str = "ridership",
) -> QuerySet:
    """Simulated ridership-extracted demand (see module docstring).

    Args:
        transit: the existing transit network.
        num_nodes: size of the multiset ``Q``.
        growth_fraction: share of demand in uncovered growth clusters.
        num_growth_clusters: how many growth neighbourhoods to create.
        sigma_km: spatial spread around stops / cluster centres.
        pareto_shape: shape of the heavy-tailed per-stop ridership
            weights (smaller = heavier tail = more hub-dominated).
        seed: RNG seed.
        name: label for reports.
    """
    if num_nodes < 1:
        raise DemandError(f"num_nodes must be >= 1, got {num_nodes}")
    if not (0.0 <= growth_fraction <= 1.0):
        raise DemandError("growth_fraction must be in [0, 1]")
    network = transit.road_network
    stops = transit.existing_stops
    if not stops:
        raise DemandError("ridership_demand needs a transit network with stops")
    rng = np.random.default_rng(seed)
    coords = network.coordinates()
    index = GridIndex(coords, cell_size=max(sigma_km, 0.25))

    # Heavy-tailed ridership weights per stop; stops on more routes get
    # a boost (transfer hubs see more boardings).
    weights = rng.pareto(pareto_shape, size=len(stops)) + 1.0
    for i, stop in enumerate(stops):
        weights[i] *= 1.0 + 0.5 * (transit.degree(stop) - 1)
    weights /= weights.sum()

    growth_centers = _growth_cluster_centers(
        network, transit, num_growth_clusters, rng
    )

    num_growth = round(num_nodes * growth_fraction)
    nodes: List[int] = []
    for _ in range(num_nodes - num_growth):
        stop = stops[int(rng.choice(len(stops), p=weights))]
        cx, cy = coords[stop]
        nodes.append(index.nearest((cx + rng.normal(0, sigma_km), cy + rng.normal(0, sigma_km))))
    for _ in range(num_growth):
        center = growth_centers[int(rng.integers(0, len(growth_centers)))]
        cx, cy = coords[center]
        nodes.append(index.nearest((cx + rng.normal(0, sigma_km), cy + rng.normal(0, sigma_km))))
    return QuerySet(network, nodes, name=name)


def _growth_cluster_centers(
    network: RoadNetwork,
    transit: TransitNetwork,
    count: int,
    rng: np.random.Generator,
) -> List[int]:
    """Centres of uncovered growth neighbourhoods: nodes sampled from
    the decile farthest from any existing stop."""
    if count < 1:
        raise DemandError(f"num_growth_clusters must be >= 1, got {count}")
    dist = engine_for(network).multi_source(transit.existing_stops, phase="demand")
    finite = [(d if math.isfinite(d) else 0.0) for d in dist]
    order = sorted(range(network.num_nodes), key=lambda v: finite[v])
    pool = order[-max(count, network.num_nodes // 10):]
    picks = rng.choice(len(pool), size=min(count, len(pool)), replace=False)
    return [int(pool[int(i)]) for i in picks]


def uncovered_query_nodes(
    queries: QuerySet,
    transit: TransitNetwork,
    *,
    walk_limit_km: float = 0.5,
) -> List[int]:
    """The query nodes farther than ``walk_limit_km`` (network distance)
    from every existing stop — the "previously uncovered demand" of the
    Chicago case study.  Multiset semantics: a node appearing twice in
    ``Q`` appears twice in the result.
    """
    dist = engine_for(queries.network).multi_source(
        transit.existing_stops, max_cost=walk_limit_km, phase="demand"
    )
    return [v for v in queries.nodes if not math.isfinite(dist[v])]
