"""Transit routing queries and the query multiset ``Q``.

Definition 4: a query is an (origin, destination) node pair.
Definition 6: the objective only sees the *multiset* ``Q`` of all
origins and destinations ("by the symmetry of the origin and
destination, we could regard them as one type of nodes").

:class:`QuerySet` is that multiset, with provenance: it can be built
directly from node lists or from OD pairs, and it validates every node
against the road network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import DemandError
from ..network.graph import RoadNetwork


@dataclass(frozen=True)
class TransitQuery:
    """One transit routing query ``q = (v_s, v_t)`` (Definition 4)."""

    origin: int
    destination: int

    def nodes(self) -> Tuple[int, int]:
        """The query's contribution to the multiset ``Q``."""
        return (self.origin, self.destination)


class QuerySet:
    """The multiset ``Q`` of query origin/destination nodes.

    Args:
        network: the road network the nodes live on.
        nodes: the multiset members (duplicates meaningful — a node that
            appears in many queries weighs more in ``Walk``).
        name: optional label used by experiment reports ("Brooklyn",
            "Dataset1", ...).

    Raises:
        DemandError: if ``nodes`` is empty or contains an id outside the
            network.
    """

    def __init__(
        self,
        network: RoadNetwork,
        nodes: Iterable[int],
        *,
        name: str = "Q",
    ) -> None:
        self._network = network
        self._nodes: List[int] = [int(v) for v in nodes]
        if not self._nodes:
            raise DemandError("a query set must contain at least one node")
        n = network.num_nodes
        for v in self._nodes:
            if not (0 <= v < n):
                raise DemandError(f"query node {v} outside the network (|V|={n})")
        self.name = name

    @classmethod
    def from_queries(
        cls,
        network: RoadNetwork,
        queries: Sequence[TransitQuery],
        *,
        name: str = "Q",
    ) -> "QuerySet":
        """Build ``Q`` from OD queries: every origin and destination is
        added (Definition 6)."""
        nodes: List[int] = []
        for q in queries:
            nodes.extend(q.nodes())
        return cls(network, nodes, name=name)

    @property
    def network(self) -> RoadNetwork:
        """The road network the queries live on."""
        return self._network

    @property
    def nodes(self) -> List[int]:
        """The multiset members (the internal list; do not mutate)."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def distinct_nodes(self) -> List[int]:
        """Distinct members, sorted."""
        return sorted(set(self._nodes))

    def subset(self, nodes: Iterable[int], *, name: Optional[str] = None) -> "QuerySet":
        """A new query set over the given members (used by partitions)."""
        return QuerySet(self._network, nodes, name=name or self.name)

    def __repr__(self) -> str:
        return f"QuerySet({self.name!r}, |Q|={len(self._nodes)})"
