"""Demand substrate: transit queries, the multiset ``Q``, demand
generators, spatial partitioners, and ridership simulation."""

from .generators import commute_demand, hotspot_demand, uniform_demand
from .partition import by_regions, vertical_bands
from .query import QuerySet, TransitQuery
from .od_matrix import ODMatrix, ZoneGrid
from .ridership import ridership_demand, uncovered_query_nodes
from .temporal import TemporalDemand, simulate_daily_profile

__all__ = [
    "TransitQuery",
    "QuerySet",
    "uniform_demand",
    "hotspot_demand",
    "commute_demand",
    "vertical_bands",
    "by_regions",
    "ridership_demand",
    "uncovered_query_nodes",
    "TemporalDemand",
    "simulate_daily_profile",
    "ZoneGrid",
    "ODMatrix",
]
