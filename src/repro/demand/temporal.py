"""Time-sliced demand.

The paper's related work distinguishes demand by time window (night
routes [6], temporal supply/demand matching [8]); its own evaluation
collapses time away.  This module keeps the time dimension available:
a :class:`TemporalDemand` holds one query multiset per hour-of-day
slice, supports peak extraction and window aggregation, and produces
plain :class:`~repro.demand.query.QuerySet` objects so every planner in
the package works per time window unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..exceptions import DemandError
from ..network.graph import RoadNetwork
from .query import QuerySet

HOURS_PER_DAY = 24


class TemporalDemand:
    """Hourly demand slices over one road network.

    Args:
        network: the road network.
        slices: mapping ``hour (0-23) -> query node list``.  Missing
            hours are empty.
    """

    def __init__(
        self, network: RoadNetwork, slices: Dict[int, Sequence[int]]
    ) -> None:
        self._network = network
        self._slices: Dict[int, List[int]] = {}
        for hour, nodes in slices.items():
            if not (0 <= int(hour) < HOURS_PER_DAY):
                raise DemandError(f"hour {hour} outside 0..23")
            members = [int(v) for v in nodes]
            for v in members:
                if not (0 <= v < network.num_nodes):
                    raise DemandError(f"query node {v} outside the network")
            if members:
                self._slices[int(hour)] = members

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def hours(self) -> List[int]:
        """Hours with any demand, sorted."""
        return sorted(self._slices)

    def volume(self, hour: int) -> int:
        """Demand size at ``hour``."""
        return len(self._slices.get(hour, []))

    def total_volume(self) -> int:
        return sum(len(v) for v in self._slices.values())

    def slice(self, hour: int) -> QuerySet:
        """The query multiset of one hour.

        Raises:
            DemandError: if the hour has no demand.
        """
        nodes = self._slices.get(hour)
        if not nodes:
            raise DemandError(f"no demand at hour {hour}")
        return QuerySet(self._network, nodes, name=f"h{hour:02d}")

    def window(self, start_hour: int, end_hour: int) -> QuerySet:
        """Aggregate multiset over ``[start_hour, end_hour)``; wraps
        past midnight when ``end_hour <= start_hour`` (night windows).
        """
        hours = _window_hours(start_hour, end_hour)
        nodes: List[int] = []
        for hour in hours:
            nodes.extend(self._slices.get(hour, []))
        if not nodes:
            raise DemandError(
                f"no demand in window [{start_hour}, {end_hour})"
            )
        return QuerySet(
            self._network, nodes, name=f"h{start_hour:02d}-h{end_hour:02d}"
        )

    def peak_hour(self) -> int:
        """The hour with the largest demand volume."""
        if not self._slices:
            raise DemandError("temporal demand is empty")
        return max(self._slices, key=lambda h: (len(self._slices[h]), -h))

    def daytime(self) -> QuerySet:
        """06:00-22:00 aggregate (the service span most routes run)."""
        return self.window(6, 22)

    def night(self) -> QuerySet:
        """22:00-06:00 aggregate — the night-route demand of [6]."""
        return self.window(22, 6)


def simulate_daily_profile(
    base: QuerySet,
    *,
    peak_hours: Sequence[int] = (8, 17),
    peak_share: float = 0.5,
    night_share: float = 0.05,
    seed: int = 0,
) -> TemporalDemand:
    """Spread a flat demand multiset over a plausible daily profile.

    Args:
        base: the all-day multiset to distribute.
        peak_hours: commute peaks (each gets ``peak_share / len`` of
            the demand, on top of the flat background).
        peak_share: fraction of demand concentrated in peaks.
        night_share: fraction spread over 22:00-06:00.
        seed: RNG seed (assignment of individual nodes to hours).
    """
    if not (0.0 <= peak_share < 1.0) or not (0.0 <= night_share < 1.0):
        raise DemandError("shares must be in [0, 1)")
    if peak_share + night_share >= 1.0:
        raise DemandError("peak_share + night_share must be < 1")
    rng = np.random.default_rng(seed)
    night_hours = _window_hours(22, 6)
    day_hours = [h for h in range(HOURS_PER_DAY) if h not in set(night_hours)]

    weights = np.zeros(HOURS_PER_DAY)
    for hour in day_hours:
        weights[hour] = (1.0 - peak_share - night_share) / len(day_hours)
    for hour in peak_hours:
        weights[hour % HOURS_PER_DAY] += peak_share / len(peak_hours)
    for hour in night_hours:
        weights[hour] += night_share / len(night_hours)
    weights = weights / weights.sum()

    assignment = rng.choice(HOURS_PER_DAY, size=len(base), p=weights)
    slices: Dict[int, List[int]] = {}
    for node, hour in zip(base.nodes, assignment):
        slices.setdefault(int(hour), []).append(node)
    return TemporalDemand(base.network, slices)


def _window_hours(start_hour: int, end_hour: int) -> List[int]:
    if not (0 <= start_hour < HOURS_PER_DAY and 0 <= end_hour <= HOURS_PER_DAY):
        raise DemandError("window hours must be within 0..24")
    if start_hour < end_hour:
        return list(range(start_hour, end_hour))
    return list(range(start_hour, HOURS_PER_DAY)) + list(range(0, end_hour))
