"""The BRR problem instance and its exact objective functions.

:class:`BRRInstance` bundles everything Definition 10 names — the road
network ``G``, the existing routes ``R_existing`` (giving ``S_existing``
and ``routes(v)``), the query multiset ``Q``, and the candidate set
``S_new`` — and provides *exact* evaluations of:

* ``Walk(S)`` (Definition 6) via one multi-source Dijkstra,
* ``Connect(B)`` (Definition 7) via the transit bitmasks,
* the utility ``U(B)`` (Definition 9, Equation 1).

These exact evaluators are the ground truth for tests, the OPT brute
force, and final-route reporting.  The EBRR selection loop itself uses
the incremental structures of :mod:`repro.core.preprocess` instead —
that is the paper's whole point — but both must agree, and the test
suite checks that they do.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from ..demand.query import QuerySet
from ..exceptions import ConfigurationError, DemandError
from ..network.candidates import node_candidates
from ..network.engine import engine_for
from ..network.graph import RoadNetwork
from ..transit.network import TransitNetwork


class BRRInstance:
    """One Bus Routing on Roads problem instance.

    Args:
        transit: the existing transit network (supplies the road network
            and ``S_existing``).
        queries: the query multiset ``Q``.
        candidates: the candidate locations ``S_new``.  ``None`` uses
            every non-stop network node (see
            :mod:`repro.network.candidates`).  Must be disjoint from
            ``S_existing``.
        alpha: the utility trade-off ``α`` (must be positive).
    """

    def __init__(
        self,
        transit: TransitNetwork,
        queries: QuerySet,
        *,
        candidates: Optional[Sequence[int]] = None,
        alpha: float = 1.0,
    ) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        if queries.network is not transit.road_network:
            raise DemandError("queries and transit must share the road network")
        self.transit = transit
        self.network: RoadNetwork = transit.road_network
        self.queries = queries
        self.alpha = float(alpha)

        existing = set(transit.existing_stops)
        if candidates is None:
            candidate_list = node_candidates(self.network, transit.existing_stops)
        else:
            candidate_list = [int(v) for v in candidates]
            overlap = existing.intersection(candidate_list)
            if overlap:
                raise ConfigurationError(
                    f"S_new must be disjoint from S_existing; overlap: "
                    f"{sorted(overlap)[:5]}..."
                )
        self.candidates: List[int] = sorted(set(candidate_list))
        self.existing_stops: List[int] = sorted(existing)

        n = self.network.num_nodes
        self.is_existing: List[bool] = [False] * n
        for v in self.existing_stops:
            self.is_existing[v] = True
        self.is_candidate: List[bool] = [False] * n
        for v in self.candidates:
            self.is_candidate[v] = True

        #: multiplicity of each distinct query node in Q
        self.query_counts: Dict[int, int] = dict(Counter(queries.nodes))
        self._baseline_walk: Optional[float] = None

    # ------------------------------------------------------------------
    # Exact objective evaluation
    # ------------------------------------------------------------------

    def walk(self, stops: Iterable[int]) -> float:
        """``Walk(S)``: sum over the multiset ``Q`` of each query node's
        distance to its nearest stop in ``S`` (Definition 6)."""
        sources = list(stops)
        if not sources:
            raise ConfigurationError("Walk(S) is undefined for an empty stop set")
        dist = engine_for(self.network).multi_source(sources, phase="evaluate")
        total = 0.0
        for node, count in self.query_counts.items():
            d = dist[node]
            if not math.isfinite(d):
                raise DemandError(
                    f"query node {node} cannot reach any stop — disconnected input"
                )
            total += count * d
        return total

    def baseline_walk(self) -> float:
        """``Walk(S_existing)`` — the constant first term of the utility
        (cached after the first call)."""
        if self._baseline_walk is None:
            self._baseline_walk = self.walk(self.existing_stops)
        return self._baseline_walk

    def walk_decrease(self, new_stops: Iterable[int]) -> float:
        """``Walk(S_existing) − Walk(S_existing ∪ B)`` for ``B``."""
        union = list(self.existing_stops)
        union.extend(new_stops)
        return self.baseline_walk() - self.walk(union)

    def connectivity(self, stops: Iterable[int]) -> int:
        """``Connect(B)`` (Definition 7)."""
        return self.transit.connectivity(stops)

    def utility(self, stops: Iterable[int]) -> float:
        """The utility ``U(B)`` of Equation 1."""
        stop_list = list(stops)
        if not stop_list:
            return 0.0
        self._check_members(stop_list)
        return self.walk_decrease(stop_list) + self.alpha * self.connectivity(stop_list)

    def marginal_utility(self, stop: int, base: Iterable[int]) -> float:
        """``ΔU_B(v) = U(B ∪ {v}) − U(B)`` computed exactly (two full
        evaluations; meant for tests and the OPT brute force)."""
        base_list = list(base)
        return self.utility(base_list + [stop]) - self.utility(base_list)

    def _check_members(self, stops: Sequence[int]) -> None:
        for v in stops:
            if not (self.is_candidate[v] or self.is_existing[v]):
                raise ConfigurationError(
                    f"stop {v} is neither a candidate nor an existing stop"
                )

    def __repr__(self) -> str:
        return (
            f"BRRInstance(|V|={self.network.num_nodes}, "
            f"|S_existing|={len(self.existing_stops)}, "
            f"|S_new|={len(self.candidates)}, |Q|={len(self.queries)}, "
            f"alpha={self.alpha})"
        )
