"""EBRR configuration.

Collects the problem parameters of Definition 10 (``K``, ``C``, ``α``)
and the algorithm switches used by the paper's ablation study
(Section VI-B2): the filtered queue's threshold pruning, the lazy
selection, the lower-bound price, and the final path refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

#: Selection stops once the accumulated price reaches this fraction of K
#: (the 2K/3 bound of Algorithm 1, justified by Christofides' 3/2 ratio).
DEFAULT_PRICE_BUDGET_FRACTION = 2.0 / 3.0


@dataclass(frozen=True)
class EBRRConfig:
    """Parameters for one EBRR run.

    Attributes:
        max_stops: ``K`` — maximum number of stops of the new route
            (Definition 8).  Must be at least 2.
        max_adjacent_cost: ``C`` — maximum path cost between adjacent
            stops, in the network's cost unit (km by convention).
        alpha: ``α`` — the walking-cost / connectivity trade-off of the
            utility function (Definition 9).  Must be positive.
        seed_stop: explicit choice for the arbitrary initial stop
            ``v(0)``; ``None`` picks the stop with the highest initial
            utility (a deterministic, sensible "arbitrary" choice).
        use_threshold_pruning: Claim 1's pruning of low-initial-utility
            stops (part of the filtered queue).  Disable to reproduce
            the "w/o the filtered queue" ablation variant.
        use_lazy_selection: Claim 2's lazy evaluation through the
            ``RQueue`` of upper bounds.  Disable (together with
            ``use_threshold_pruning``) for the "vanilla" variant that
            evaluates every stop every iteration.
        use_lower_bound_price: rank the ``RQueue`` by the cheap
            Euclidean lower-bound price of Algorithm 4; disable to use
            the true network price in the upper bounds (the "real cost"
            ablation variant).
        refine_path: run Algorithm 5 after Christofides.  Disable for
            the "w/o the path refinement" variant.
        price_budget_fraction: the stopping constant of Algorithm 1
            (2/3 by default; exposed for sensitivity studies).
        workers: process-pool size for the Algorithm 2 fan-out of
            :mod:`repro.parallel` (``1`` = the serial path; results are
            bit-identical either way).
        kernel: search-kernel backend name (``"python"``,
            ``"vectorized"``); ``None`` defers to the ``REPRO_KERNEL``
            environment variable, then the default.  Backends are
            bit-identical by contract, so this is purely a speed knob.
            The name is a plain string so the config pickles unchanged
            into :mod:`repro.parallel` workers.
        preprocess_strategy: Algorithm 2 execution strategy
            (``"per-query"``, ``"inverted"``); ``None`` defers to the
            ``REPRO_PREPROCESS`` environment variable, then the
            default.  Strategies produce equal preprocessing outputs
            and bit-identical plans (the equivalence suite proves it),
            so this too is purely a speed knob.
        cache_capacity: bound on the :class:`~repro.network.engine.
            SearchEngine` row-cache (LRU entries; the point cache is
            bounded at 4x).  ``None`` keeps the engine's default.
            Long-lived processes — the :mod:`repro.serve` daemon in
            particular — set this to cap resident memory; caches are
            purely a reuse optimization, so capacity never changes
            results, only hit rates.
    """

    max_stops: int
    max_adjacent_cost: float
    alpha: float = 1.0
    seed_stop: Optional[int] = None
    use_threshold_pruning: bool = True
    use_lazy_selection: bool = True
    use_lower_bound_price: bool = True
    refine_path: bool = True
    price_budget_fraction: float = DEFAULT_PRICE_BUDGET_FRACTION
    workers: int = 1
    kernel: Optional[str] = None
    preprocess_strategy: Optional[str] = None
    cache_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_stops < 2:
            raise ConfigurationError(
                f"K (max_stops) must be at least 2, got {self.max_stops}"
            )
        if self.max_adjacent_cost <= 0:
            raise ConfigurationError(
                f"C (max_adjacent_cost) must be positive, got {self.max_adjacent_cost}"
            )
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if not (0.0 < self.price_budget_fraction <= 1.0):
            raise ConfigurationError(
                "price_budget_fraction must be in (0, 1], got "
                f"{self.price_budget_fraction}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.kernel is not None:
            # Imported lazily: config is a leaf module and the engine
            # owns the kernel registry (RL009 confines the package).
            from ..network.engine import available_kernels

            if self.kernel not in available_kernels():
                raise ConfigurationError(
                    f"unknown search kernel {self.kernel!r}; available: "
                    f"{', '.join(available_kernels())}"
                )
        if self.preprocess_strategy is not None:
            # Same lazy-import discipline: preprocess owns the strategy
            # registry and validates the name.
            from .preprocess import resolve_preprocess_strategy

            resolve_preprocess_strategy(self.preprocess_strategy)

    @property
    def price_budget(self) -> float:
        """The selection budget ``2K/3`` (with the default fraction)."""
        return self.price_budget_fraction * self.max_stops
