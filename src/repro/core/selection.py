"""Stop selection — Algorithm 3 (with Claims 1 and 2) of the paper.

Each iteration finds the most *profitable* stop: the one maximizing
``ΔU_B(v) / p(v, B)``.  Three acceleration layers, individually
switchable for the ablation study:

* **threshold pruning** (Claim 1): evaluate the true ratio of the
  highest-initial-utility stop; every stop whose initial utility falls
  below that ratio can never win and is never inserted in the queue;
* **lazy selection** (Claim 2): the queue is ordered by the upper bound
  ``U(v) / lbp(v)``; popping an already-evaluated (true-ratio) entry
  proves it is the argmax because every remaining upper bound is below
  it;
* **lower-bound price** (Algorithm 4): the upper bound's denominator is
  the amortized Euclidean bound instead of the true network price.

Marginal gains come from the preprocessing RNN sets (exact — see
:mod:`repro.core.preprocess`), marginal connectivity from the transit
bitmasks, and the true price from the incrementally maintained
nearest-distance-to-``B`` array; so a "function evaluation" here is
cheap, but the *number* of evaluations is still the ablation metric and
is counted in the trace.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, InfeasibleRouteError
from ..network.engine import SearchEngine, engine_for
from ..obs import span
from .config import EBRRConfig
from .numeric import close
from .preprocess import PreprocessResult
from .price import LowerBoundPrice, price_from_distance
from .utility import BRRInstance


@dataclass
class SelectionTrace:
    """Everything the selection loop decided, for analysis and tests.

    Attributes:
        selected: the profitable stops ``v(0), v(1), ...`` in selection
            order (``B(i)`` as an ordered list).
        prices: ``p(v(j), B(j-1))`` per iteration, aligned with
            ``selected[1:]`` (``v(0)`` is free — the budget sum of
            Algorithm 1 starts at ``j = 1``).
        gains: the marginal utility ``ΔU`` of each selected stop,
            aligned with ``selected`` (entry 0 is ``U(v(0))``).
        evaluations: number of true function evaluations performed —
            the quantity the filtered queue exists to minimize.
        queue_inserts: total entries pushed into the RQueue.
    """

    selected: List[int] = field(default_factory=list)
    prices: List[int] = field(default_factory=list)
    gains: List[float] = field(default_factory=list)
    evaluations: int = 0
    queue_inserts: int = 0

    @property
    def total_price(self) -> int:
        """``Σ_j p(v(j), B(j-1))`` — checked against ``2K/3``."""
        return sum(self.prices)

    @property
    def total_gain(self) -> float:
        """Sum of marginal gains = ``U(B(i))`` by telescoping."""
        return sum(self.gains)


class SelectionState:
    """Mutable incremental state of the greedy selection.

    Maintains, as stops join ``B``:

    * ``current_nn[q]`` — each distinct query node's distance to its
      nearest stop in ``S_existing ∪ B`` (starts at ``dist(q, nn(q))``);
    * ``covered_mask`` — the union route bitmask of ``B`` for O(1)
      marginal connectivity;
    * ``dist_to_b`` — network distance from every node to ``B``
      (incremental pruned Dijkstra), feeding the true price;
    * the Algorithm 4 lower-bound price structure.
    """

    def __init__(
        self,
        instance: BRRInstance,
        preprocess: PreprocessResult,
        config: EBRRConfig,
        *,
        engine: Optional[SearchEngine] = None,
    ) -> None:
        self.instance = instance
        self.preprocess = preprocess
        self.config = config
        self.engine = engine if engine is not None else engine_for(instance.network)
        self.current_nn: Dict[int, float] = dict(preprocess.nn_distance)
        self.covered_mask: int = 0
        self.selected: List[int] = []
        self.selected_set: set = set()
        self.dist_to_b = self.engine.incremental_nearest(phase="selection")
        self.lower_bound = LowerBoundPrice(
            instance.network.coordinates(), config.max_adjacent_cost
        )

    # -- true function evaluations -------------------------------------

    def marginal_gain(self, stop: int) -> float:
        """``ΔU_B(stop)`` — exact, via RNN sets / route bitmasks."""
        instance = self.instance
        if instance.is_existing[stop]:
            return instance.alpha * instance.transit.marginal_connectivity(
                stop, self.covered_mask
            )
        gain = 0.0
        counts = instance.query_counts
        current = self.current_nn
        for query_node, dist in self.preprocess.rnn.get(stop, ()):  # type: ignore[arg-type]
            cur = current[query_node]
            if cur > dist:
                gain += counts[query_node] * (cur - dist)
        return gain

    def true_price(self, stop: int) -> int:
        """``p(stop, B)`` from the maintained network distance to B."""
        distance = self.dist_to_b.distance[stop]
        if not math.isfinite(distance):
            raise InfeasibleRouteError(
                f"stop {stop} cannot reach the selected set — disconnected network"
            )
        return price_from_distance(distance, self.config.max_adjacent_cost)

    # -- mutation --------------------------------------------------------

    def select(self, stop: int) -> None:
        """Commit ``stop`` to ``B`` and update all incremental state."""
        if stop in self.selected_set:
            raise ConfigurationError(f"stop {stop} already selected")
        instance = self.instance
        if instance.is_existing[stop]:
            self.covered_mask |= instance.transit.route_mask(stop)
        else:
            counts_entries = self.preprocess.rnn.get(stop, ())
            for query_node, dist in counts_entries:
                if dist < self.current_nn[query_node]:
                    self.current_nn[query_node] = dist
        self.selected.append(stop)
        self.selected_set.add(stop)
        self.dist_to_b.add_source(stop)
        self.lower_bound.add_selected(stop)


def run_selection(
    instance: BRRInstance,
    preprocess: PreprocessResult,
    config: EBRRConfig,
    *,
    engine: Optional[SearchEngine] = None,
) -> SelectionTrace:
    """Lines 2-7 of Algorithm 1: iteratively select profitable stops
    until the accumulated price reaches the ``2K/3`` budget.

    Args:
        instance / preprocess / config: the problem and its Algorithm 2
            output.
        engine: search engine for the incremental ``dist(·, B)``
            maintenance; defaults to the network's shared engine.

    Returns:
        The full :class:`SelectionTrace`.

    Raises:
        InfeasibleRouteError: if no stop can be selected at all.
    """
    trace = SelectionTrace()
    state = SelectionState(instance, preprocess, config, engine=engine)
    utility_order = preprocess.utility_order()
    if not utility_order:
        raise InfeasibleRouteError("no candidate or existing stops to select from")

    seed = config.seed_stop if config.seed_stop is not None else utility_order[0][1]
    if not (instance.is_candidate[seed] or instance.is_existing[seed]):
        raise ConfigurationError(f"seed stop {seed} is not a valid stop location")
    trace.gains.append(state.marginal_gain(seed))
    state.select(seed)
    trace.selected.append(seed)

    budget = config.price_budget
    with span("selection.loop", budget=budget) as loop_span:
        while trace.total_price < budget:
            picked = _pick_most_profitable(state, utility_order, config, trace)
            if picked is None:
                break  # every remaining stop exhausted (tiny instances)
            stop, gain, price = picked
            trace.gains.append(gain)
            trace.prices.append(price)
            state.select(stop)
            trace.selected.append(stop)
        loop_span.set(
            selected=len(trace.selected),
            evaluations=trace.evaluations,
            queue_inserts=trace.queue_inserts,
        )
    return trace


def _pick_most_profitable(
    state: SelectionState,
    utility_order: Sequence[Tuple[float, int]],
    config: EBRRConfig,
    trace: SelectionTrace,
) -> Optional[Tuple[int, float, int]]:
    """One iteration of Algorithm 3: the stop maximizing ``ΔU/p``.

    Returns ``(stop, ΔU, price)`` or ``None`` if nothing remains.
    """
    if config.use_lazy_selection:
        return _pick_lazy(state, utility_order, config, trace)
    return _pick_exhaustive(state, utility_order, config, trace)


def _pick_exhaustive(
    state: SelectionState,
    utility_order: Sequence[Tuple[float, int]],
    config: EBRRConfig,
    trace: SelectionTrace,
) -> Optional[Tuple[int, float, int]]:
    """The "vanilla" variant: evaluate every remaining stop.

    Threshold pruning (if enabled) still applies: stops whose initial
    utility is below the first stop's true ratio are skipped.
    """
    best: Optional[Tuple[float, int, float, int]] = None
    threshold = -math.inf
    for initial_utility, stop in utility_order:
        if stop in state.selected_set:
            continue
        if config.use_threshold_pruning and initial_utility < threshold:
            break  # utility_order is descending: everything below prunes
        gain = state.marginal_gain(stop)
        price = state.true_price(stop)
        trace.evaluations += 1
        ratio = gain / price
        if config.use_threshold_pruning and ratio > threshold:
            threshold = ratio
        # The lowest-id tie-break must fire on ratios that are equal up
        # to float noise: two stops with the same true profit can reach
        # it via different summation orders, and an exact == here would
        # make the winner depend on ulp-level drift.
        if best is None:
            best = (ratio, stop, gain, price)
        elif close(ratio, best[0]):
            if stop < best[1]:
                best = (ratio, stop, gain, price)
        elif ratio > best[0]:
            best = (ratio, stop, gain, price)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _pick_lazy(
    state: SelectionState,
    utility_order: Sequence[Tuple[float, int]],
    config: EBRRConfig,
    trace: SelectionTrace,
) -> Optional[Tuple[int, float, int]]:
    """The filtered queue: threshold pruning + lazy upper bounds.

    Heap entries are ``(-priority, tiebreak, stop, gain, price)`` where
    ``gain/price`` is ``None`` for upper-bound entries and the true
    evaluation for re-inserted ones.  Popping a true entry proves it is
    the argmax (Claim 2): every remaining entry's priority — an upper
    bound of its true ratio — is no larger.
    """
    # Line 1: the threshold from the first unselected stop's true ratio.
    first = next(
        (stop for _, stop in utility_order if stop not in state.selected_set), None
    )
    if first is None:
        return None
    first_gain = state.marginal_gain(first)
    first_price = state.true_price(first)
    trace.evaluations += 1
    threshold = first_gain / first_price

    counter = itertools.count()
    heap: List[Tuple[float, int, int, Optional[float], Optional[int]]] = [
        (-threshold, next(counter), first, first_gain, first_price)
    ]
    trace.queue_inserts += 1

    # Lines 3-6: build the RQueue from the initial-utility order.
    for initial_utility, stop in utility_order:
        if stop == first or stop in state.selected_set:
            continue
        if config.use_threshold_pruning and initial_utility < threshold:
            break
        if config.use_lower_bound_price:
            denominator: float = state.lower_bound.value(stop)
        else:
            denominator = float(state.true_price(stop))
        priority = initial_utility / denominator if denominator > 0 else math.inf
        heapq.heappush(heap, (-priority, next(counter), stop, None, None))
        trace.queue_inserts += 1

    # Lines 7-12: lazy evaluation.
    while heap:
        neg_priority, _, stop, gain, price = heapq.heappop(heap)
        if gain is not None and price is not None:
            return stop, gain, price
        true_gain = state.marginal_gain(stop)
        true_price = state.true_price(stop)
        trace.evaluations += 1
        ratio = true_gain / true_price
        heapq.heappush(heap, (-ratio, next(counter), stop, true_gain, true_price))
    return None
