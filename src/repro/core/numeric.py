"""Shared float-comparison tolerances (the RL004 helpers).

Costs, utilities, and walk distances in this package are sums of many
float edge weights, so exact ``==``/``!=`` comparisons are one
refactor-induced ulp away from flipping.  Every tolerant comparison in
``src/`` goes through these helpers so the tolerance is defined exactly
once; the reprolint RL004 rule points violators here.

The default tolerances mirror the search substrate: ``REL_TOL`` matches
the ``1e-9`` epsilon the engine and the bounded searches already use,
and ``ABS_TOL`` covers comparisons around zero where a relative
tolerance is meaningless.
"""

from __future__ import annotations

import math

#: Relative tolerance — one part in 10^9, the package-wide epsilon.
REL_TOL: float = 1e-9

#: Absolute tolerance for comparisons against (near-)zero values.
ABS_TOL: float = 1e-12


def close(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Whether two cost/utility values are equal up to tolerance."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, *, abs_tol: float = ABS_TOL) -> bool:
    """Whether a cost/utility value is zero up to absolute tolerance.

    ``math.isclose(x, 0.0)`` with a relative tolerance is always false
    for nonzero ``x``, which makes zero guards a special case worth its
    own helper.
    """
    return abs(value) <= abs_tol


def sign(value: float, *, abs_tol: float = ABS_TOL) -> int:
    """-1, 0, or +1 with the zero band widened to ``abs_tol``."""
    if is_zero(value, abs_tol=abs_tol):
        return 0
    return 1 if value > 0 else -1
