"""Sequential multi-route planning.

The paper plans one route; cities roll out service in programs of
several.  Because the utility is monotone submodular in the *stop* set,
the natural program-level strategy is the greedy one the paper's
single-route algorithm already embodies: plan a route with EBRR,
**incorporate it into the transit network**, rebuild the instance (the
demand it satisfied no longer drives `Walk`, and its stops now offer
transfers), and repeat.

Each round therefore automatically chases the demand the previous
rounds left uncovered — the behaviour planners expect of a phased
network expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..demand.query import QuerySet
from ..exceptions import ConfigurationError, InfeasibleRouteError
from ..obs import now, span
from ..transit.network import TransitNetwork
from ..transit.route import BusRoute
from .config import EBRRConfig
from .ebrr import plan_route
from .result import EBRRResult
from .utility import BRRInstance


@dataclass
class MultiRouteResult:
    """A phased expansion program.

    Attributes:
        routes: the planned routes, in planning order.
        per_route: the full :class:`EBRRResult` of each round.
        final_transit: the transit network with every new route added.
        total_walk_decrease: ``Walk(S_existing) − Walk(after all
            routes)`` against the *original* network.
        total_elapsed_s: wall-clock seconds over all rounds.
    """

    routes: List[BusRoute] = field(default_factory=list)
    per_route: List[EBRRResult] = field(default_factory=list)
    final_transit: Optional[TransitNetwork] = None
    total_walk_decrease: float = 0.0
    total_elapsed_s: float = 0.0

    @property
    def num_routes(self) -> int:
        return len(self.routes)


def plan_routes(
    transit: TransitNetwork,
    queries: QuerySet,
    config: EBRRConfig,
    num_routes: int,
    *,
    candidates: Optional[Sequence[int]] = None,
    min_marginal_utility: float = 0.0,
    route_id_prefix: str = "ebrr",
) -> MultiRouteResult:
    """Plan ``num_routes`` routes sequentially (see module docstring).

    Args:
        transit: the existing transit network.
        queries: the demand multiset (shared by every round).
        config: per-route parameters (same ``K``, ``C``, ``α`` each
            round, like a uniform service standard).
        num_routes: how many routes to plan.
        candidates: explicit ``S_new`` for the *first* round; later
            rounds drop the stops already used by new routes.  ``None``
            uses all non-stop nodes each round.
        min_marginal_utility: stop early when a round's route adds less
            utility than this (0 keeps all rounds).
        route_id_prefix: routes are named ``<prefix>_0``, ``<prefix>_1``...

    Raises:
        ConfigurationError: if ``num_routes < 1``.
    """
    if num_routes < 1:
        raise ConfigurationError(f"num_routes must be >= 1, got {num_routes}")
    start = now()
    result = MultiRouteResult()
    current_transit = transit
    current_candidates = list(candidates) if candidates is not None else None
    with span("multi_route", num_routes=num_routes) as multi_span:
        for round_index in range(num_routes):
            instance = BRRInstance(
                current_transit,
                queries,
                candidates=current_candidates,
                alpha=config.alpha,
            )
            try:
                round_result = plan_route(
                    instance, config, route_id=f"{route_id_prefix}_{round_index}"
                )
            except InfeasibleRouteError:
                break
            if (
                round_index > 0
                and round_result.metrics.utility <= min_marginal_utility
            ):
                break
            result.routes.append(round_result.route)
            result.per_route.append(round_result)
            current_transit = current_transit.with_route(round_result.route)
            if current_candidates is not None:
                used = set(round_result.route.stops)
                current_candidates = [v for v in current_candidates if v not in used]
                if not current_candidates:
                    break
        multi_span.set(planned=len(result.routes))

    result.final_transit = current_transit
    if result.routes:
        final_instance = BRRInstance(
            transit,
            queries,
            candidates=candidates,
            alpha=config.alpha,
        )
        new_stops = [
            s
            for route in result.routes
            for s in route.stops
            if final_instance.is_candidate[s]
        ]
        result.total_walk_decrease = final_instance.walk_decrease(set(new_stops))
    result.total_elapsed_s = now() - start
    return result
