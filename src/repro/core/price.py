"""The price function (Definitions 11 and 12) and its lower bound
(Algorithm 4).

The price of a stop ``v`` w.r.t. the selected set ``B`` is the minimum
number of intermediate stops needed to link ``v`` to its nearest stop
in ``B`` under the adjacent-cost constraint ``C``, plus one (for ``v``
itself).  Because candidate stops are dense along roads (Section III:
edge midpoints "are dense enough to cover all roads"), the minimum
intermediate count along the shortest path is ``ceil(dist / C) − 1``,
giving::

    p(v, B) = max(1, ceil(dist(v, nn_B(v)) / C))

which matches the paper's Example 6 arithmetic exactly
(``dist = 8, C = 4 → price 2``; ``dist ≤ C → price 1``).

Algorithm 4 replaces the network distance with the Euclidean distance
to get a cheap lower bound ``lbp(v) = max(1, min_{v'∈B} distE(v,v')/C)``
and amortizes the min over iterations with a per-stop ``lbIndex`` that
remembers how much of ``B`` has already been scanned.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..exceptions import ConfigurationError
from ..network.geometry import Point, euclidean

_EPSILON = 1e-9


def price_from_distance(distance: float, max_adjacent_cost: float) -> int:
    """``p`` for a stop at network distance ``distance`` from its
    nearest selected stop: ``max(1, ceil(distance / C))``.

    A tiny tolerance keeps ``distance == k·C`` from spuriously rounding
    up due to floating point noise.
    """
    if max_adjacent_cost <= 0:
        raise ConfigurationError(f"C must be positive, got {max_adjacent_cost}")
    if distance <= max_adjacent_cost + _EPSILON:
        return 1
    if not math.isfinite(distance):
        raise ConfigurationError("price undefined for unreachable stop (infinite dist)")
    return max(1, math.ceil(distance / max_adjacent_cost - _EPSILON))


def virtual_edge_price(
    distance: float, max_adjacent_cost: float
) -> int:
    """Price of the virtual edge between two stops at network distance
    ``distance`` (Definition 12) — same arithmetic as
    :func:`price_from_distance`."""
    return price_from_distance(distance, max_adjacent_cost)


def intermediate_stop_count(distance: float, max_adjacent_cost: float) -> int:
    """Minimum number of *intermediate* stops on a leg of network cost
    ``distance``: the price minus one (Definition 11)."""
    return price_from_distance(distance, max_adjacent_cost) - 1


class LowerBoundPrice:
    """Algorithm 4: amortized Euclidean lower-bound prices.

    Maintains, for each stop ``v`` ever queried, the running minimum of
    ``distE(v, v') / C`` over the selected stops ``v' ∈ B`` seen so far,
    plus the index ``lbIndex(v)`` of the first selected stop not yet
    folded into that minimum.  Each :meth:`value` call only scans the
    *new* members of ``B``, so the total work per stop is O(|B|) over
    the whole run, amortized O(1) per iteration (Theorem 5's analysis).
    """

    def __init__(
        self, coordinates: Sequence[Point], max_adjacent_cost: float
    ) -> None:
        if max_adjacent_cost <= 0:
            raise ConfigurationError(f"C must be positive, got {max_adjacent_cost}")
        self._coords = coordinates
        self._c = max_adjacent_cost
        self._selected: List[int] = []
        self._lbp: Dict[int, float] = {}
        self._lb_index: Dict[int, int] = {}

    @property
    def selected(self) -> List[int]:
        """The selected stops ``B`` in insertion order (a copy)."""
        return list(self._selected)

    def add_selected(self, stop: int) -> None:
        """Record a newly selected stop (``B ← B ∪ {v(i)}``)."""
        self._selected.append(stop)

    def value(self, stop: int) -> float:
        """``max(1, lbp(stop))`` — the lower-bound price used as the
        denominator of the ``RQueue`` upper-bound priorities.

        Raises:
            ConfigurationError: if no stop has been selected yet.
        """
        if not self._selected:
            raise ConfigurationError("lower-bound price needs a non-empty B")
        best = self._lbp.get(stop, math.inf)
        start = self._lb_index.get(stop, 0)
        point = self._coords[stop]
        for i in range(start, len(self._selected)):
            candidate = euclidean(point, self._coords[self._selected[i]]) / self._c
            if candidate < best:
                best = candidate
        self._lbp[stop] = best
        self._lb_index[stop] = len(self._selected)
        return max(1.0, best)

    def scanned_fraction(self, stop: int) -> float:
        """Fraction of ``B`` already folded into ``stop``'s bound —
        instrumentation for the amortization tests."""
        if not self._selected:
            return 1.0
        return self._lb_index.get(stop, 0) / len(self._selected)
