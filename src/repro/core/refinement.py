"""Path refinement — Algorithm 5 of the paper.

Turns the Christofides visiting order into a concrete bus route:

1. for every pair of adjacent profitable stops whose connecting cost
   exceeds ``C``, walk the road shortest path between them and insert
   the necessary intermediate stops — greedily committing, at each
   step, the *farthest* eligible stop location whose cost from the
   previous stop stays at most ``C`` (line 4 of Algorithm 5);
2. add or delete terminal stops until the stop count matches ``K``
   (line 5).  Deletion removes the terminal stop with the smaller
   marginal utility; addition extends whichever end offers the best
   eligible stop within cost ``C``, preferring utility gain.

The function mutates nothing: it takes the selection state (for cheap
marginal-gain evaluations) and returns the final ordered stop list plus
the full road path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..exceptions import InfeasibleRouteError
from ..obs import span
from .config import EBRRConfig
from .selection import SelectionState

_EPSILON = 1e-9


def refine_path(
    state: SelectionState,
    order: Sequence[int],
    config: EBRRConfig,
) -> Tuple[List[int], List[int]]:
    """Run Algorithm 5.

    Args:
        state: the post-selection state (used for marginal gains and
            stop-eligibility masks; intermediate/terminal additions are
            committed into it so later gains stay correct).
        order: the Christofides visiting order of the profitable stops.
        config: the EBRR configuration (``K``, ``C``).

    Returns:
        ``(stops, path)`` — the final ordered stop list (``|stops| <= K``,
        adjacent costs ``<= C``) and the road node path through them.

    Raises:
        InfeasibleRouteError: if two adjacent stops cannot be linked
            under ``C`` because no eligible stop location exists along
            the way (cannot happen with dense candidates).
    """
    if not order:
        raise InfeasibleRouteError("cannot refine an empty visiting order")
    c = config.max_adjacent_cost

    with span("refinement.refine", order=len(order)) as refine_span:
        stops: List[int] = [order[0]]
        used: Set[int] = {order[0]}
        segments: List[List[int]] = []  # road path per consecutive stop pair

        for target in order[1:]:
            if target in used:
                continue
            leg_stops, leg_segments = _link(state, stops[-1], target, used, c)
            for stop in leg_stops:
                _commit(state, stop)
                used.add(stop)
            stops.extend(leg_stops)
            segments.extend(leg_segments)

        stops, segments = _match_stop_count(state, stops, segments, used, config)
        path = _stitch(segments, stops)
        refine_span.set(stops=len(stops), path_nodes=len(path))
    return stops, path


# ----------------------------------------------------------------------
# Linking adjacent profitable stops (lines 1-4)
# ----------------------------------------------------------------------


def _link(
    state: SelectionState,
    source: int,
    target: int,
    used: Set[int],
    max_cost: float,
) -> Tuple[List[int], List[List[int]]]:
    """Stops (intermediates + ``target``) and road segments linking
    ``source`` to ``target`` with every leg at most ``max_cost``."""
    road_path, total = state.engine.path(source, target, phase="refinement")
    if total <= max_cost + _EPSILON:
        return [target], [road_path]

    network = state.instance.network
    eligible = _eligibility(state, used)
    # Prefix costs along the road path.
    prefix = [0.0]
    for i in range(1, len(road_path)):
        prefix.append(prefix[-1] + network.edge_cost(road_path[i - 1], road_path[i]))

    stops: List[int] = []
    segments: List[List[int]] = []
    anchor = 0  # index in road_path of the previous committed stop
    while prefix[-1] - prefix[anchor] > max_cost + _EPSILON:
        # Farthest eligible node within max_cost of the anchor.
        best: Optional[int] = None
        for i in range(anchor + 1, len(road_path)):
            if prefix[i] - prefix[anchor] > max_cost + _EPSILON:
                break
            node = road_path[i]
            if eligible(node):
                best = i
        if best is None:
            # The candidate set is too sparse to host an intermediate
            # stop on this leg (only possible with an explicit, sparse
            # S_new — dense candidates always provide one).  Emit the
            # leg as-is; the driver records the C violation on the
            # final route instead of failing the whole plan.
            break
        stops.append(road_path[best])
        segments.append(road_path[anchor : best + 1])
        used.add(road_path[best])
        anchor = best
    stops.append(target)
    segments.append(road_path[anchor:])
    return stops, segments


def _eligibility(state: SelectionState, used: Set[int]):
    instance = state.instance
    return lambda node: (
        node not in used
        and (instance.is_candidate[node] or instance.is_existing[node])
    )


def _commit(state: SelectionState, stop: int) -> None:
    """Fold a refinement-added stop into the incremental state so later
    marginal gains account for it."""
    if stop not in state.selected_set:
        state.select(stop)


# ----------------------------------------------------------------------
# Matching |B| to K (line 5)
# ----------------------------------------------------------------------


def _match_stop_count(
    state: SelectionState,
    stops: List[int],
    segments: List[List[int]],
    used: Set[int],
    config: EBRRConfig,
) -> Tuple[List[int], List[List[int]]]:
    k = config.max_stops
    # Too many stops: drop terminals (paper: "add or delete terminal
    # stops"); drop the end whose terminal contributes least utility.
    while len(stops) > k:
        head_gain = _terminal_contribution(state, stops[0])
        tail_gain = _terminal_contribution(state, stops[-1])
        if head_gain <= tail_gain:
            stops.pop(0)
            if segments:
                segments.pop(0)
        else:
            stops.pop()
            if segments:
                segments.pop()
    # Too few: greedily extend the ends while eligible stops with the
    # best gains exist within C.
    while len(stops) < k:
        extension = _best_terminal_extension(state, stops, used, config)
        if extension is None:
            break
        end, stop, road_segment = extension
        _commit(state, stop)
        used.add(stop)
        if end == "tail":
            stops.append(stop)
            segments.append(road_segment)
        else:
            stops.insert(0, stop)
            segments.insert(0, road_segment)
    return stops, segments


def _terminal_contribution(state: SelectionState, stop: int) -> float:
    """Utility a terminal stop contributes: its route-mask exclusivity
    (for existing stops) or its retained walking gain (for candidates).

    Approximated by the stop's *initial* utility — exact re-evaluation
    of removals would need full recomputation, and terminals are the
    least-consequential stops by construction.
    """
    return state.preprocess.initial_utility.get(stop, 0.0)


def _best_terminal_extension(
    state: SelectionState,
    stops: List[int],
    used: Set[int],
    config: EBRRConfig,
) -> Optional[Tuple[str, int, List[int]]]:
    """Best eligible stop within ``C`` of either terminal.

    Returns ``(end, stop, road_segment)`` with ``end`` in
    ``{"head", "tail"}``, the segment oriented from the terminal toward
    the new stop for the tail and already reversed for the head, or
    ``None`` if no eligible node is reachable within ``C`` from either
    end.
    """
    eligible = _eligibility(state, used)
    best: Optional[Tuple[float, str, int]] = None
    for end, terminal in (("head", stops[0]), ("tail", stops[-1])):
        reachable = state.engine.nodes_within(
            terminal, config.max_adjacent_cost, phase="refinement"
        )
        for node, _dist in reachable:
            if not eligible(node):
                continue
            gain = state.marginal_gain(node)
            if best is None or gain > best[0]:
                best = (gain, end, node)
    if best is None:
        return None
    _, end, node = best
    terminal = stops[0] if end == "head" else stops[-1]
    road_path, _cost = state.engine.path(terminal, node, phase="refinement")
    if end == "head":
        road_path = list(reversed(road_path))
    return end, node, road_path


# ----------------------------------------------------------------------
# Path assembly
# ----------------------------------------------------------------------


def _stitch(segments: List[List[int]], stops: List[int]) -> List[int]:
    """Concatenate road segments into one node path covering ``stops``.

    Deletions in :func:`_match_stop_count` may have desynchronized the
    segment list from the stop list, so the path is rebuilt segment by
    segment only where consistent; otherwise the stop sequence itself
    (each consecutive pair re-linked by the caller's road network) is
    the minimal valid representation.  In practice segments and stops
    stay aligned except after terminal deletion, which drops the
    matching terminal segment too, so simple concatenation applies.
    """
    if not stops:
        return []
    if not segments:
        return list(stops)
    path: List[int] = [segments[0][0]] if segments[0] else [stops[0]]
    for segment in segments:
        if not segment:
            continue
        if path and segment[0] == path[-1]:
            path.extend(segment[1:])
        else:
            path.extend(segment)
    # Guarantee terminals are the first/last stops after any trimming.
    first, last = stops[0], stops[-1]
    if first in path and path.index(first) > 0:
        path = path[path.index(first):]
    if last in path:
        last_idx = len(path) - 1 - path[::-1].index(last)
        path = path[: last_idx + 1]
    return path
