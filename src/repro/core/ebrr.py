"""The EBRR driver — Algorithm 1 of the paper.

Pipeline::

    preprocess (Alg. 2)  →  greedy selection (Alg. 3 + 4)
        →  Christofides ordering  →  path refinement (Alg. 5)

:func:`plan_route` wires the phases together, times each one, assembles
the final :class:`~repro.transit.route.BusRoute`, evaluates its exact
metrics, and records any Definition 8 constraint violation (possible
only when refinement is disabled for the ablation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..exceptions import InfeasibleRouteError
from ..network.engine import KERNEL_IDS, SearchEngine, engine_for
from ..obs import Trace, current_trace, extract_run, phase_timings
from ..transit.route import BusRoute
from .christofides import christofides_order
from .config import EBRRConfig
from .preprocess import PreprocessResult, preprocess_queries
from .refinement import refine_path
from .result import EBRRResult, RouteMetrics
from .selection import SelectionState, SelectionTrace, run_selection
from .utility import BRRInstance


def plan_route(
    instance: BRRInstance,
    config: EBRRConfig,
    *,
    preprocess: Optional[PreprocessResult] = None,
    route_id: str = "ebrr",
    engine: Optional[SearchEngine] = None,
) -> EBRRResult:
    """Plan a new bus route with EBRR.

    Args:
        instance: the BRR problem instance.  Its ``alpha`` must match
            ``config.alpha`` (the config value wins; a mismatch raises).
        config: problem parameters and algorithm switches.
        preprocess: a precomputed Algorithm 2 result to reuse across
            runs that share the instance (e.g. a K sweep); computed on
            the fly when omitted.
        route_id: identifier for the returned route.
        engine: the search engine all phases run their graph searches
            on; defaults to the network's shared engine, so repeated
            runs on the same network reuse cached distance rows and
            paths.  The result's ``search_stats`` reports this run's
            per-phase counters regardless of sharing.

    Returns:
        The :class:`EBRRResult` with the route, exact metrics, selection
        trace, per-phase timings, and per-phase search statistics.
    """
    if abs(instance.alpha - config.alpha) > 1e-12:
        raise InfeasibleRouteError(
            f"instance.alpha={instance.alpha} disagrees with "
            f"config.alpha={config.alpha}; build the instance with the "
            "same alpha"
        )
    if engine is None:
        engine = engine_for(instance.network, kernel=config.kernel)
    elif config.kernel is not None:
        engine.set_kernel(config.kernel)
    if config.cache_capacity is not None:
        engine.set_cache_capacity(config.cache_capacity)
    stats_base = engine.snapshot()

    # All phases run under trace spans; the timings dict is *derived*
    # from the measured spans afterwards (one clock pair per phase — the
    # diagnostics report and a trace export cannot disagree).  When no
    # global trace is enabled the spans land in a private per-run
    # buffer, kept on the result either way.
    obs_trace = current_trace()
    if obs_trace is None:
        obs_trace = Trace()
    run_base = len(obs_trace.spans)
    with obs_trace.begin(
        "plan_route",
        {
            "route_id": route_id,
            "K": config.max_stops,
            "C": config.max_adjacent_cost,
            "alpha": config.alpha,
        },
    ):
        # Line 1: preprocessing.
        with obs_trace.begin("preprocess", {"reused": preprocess is not None}):
            if preprocess is None:
                preprocess = preprocess_queries(
                    instance,
                    engine=engine,
                    workers=config.workers,
                    strategy=config.preprocess_strategy,
                )

        # Lines 2-7: greedy selection. (run_selection builds its own
        # state; we rebuild an identical one afterwards for refinement
        # bookkeeping.)
        with obs_trace.begin("selection") as selection_span:
            trace, state = _run_selection_with_state(
                instance, preprocess, config, engine
            )
            selection_span.set(
                selected=len(trace.selected), evaluations=trace.evaluations
            )

        # Line 8: Christofides visiting order.
        with obs_trace.begin("ordering", {"stops": len(trace.selected)}):
            order = _order_stops(trace.selected, config, engine)

        # Line 9: path refinement (or the bare order for the ablation).
        with obs_trace.begin("refinement", {"refine": config.refine_path}):
            if config.refine_path:
                stops, path = refine_path(state, order, config)
            else:
                stops, path = _bare_route(engine, order)

        route = BusRoute(route_id, stops, path)
    run_spans = extract_run(obs_trace, run_base)
    timings = phase_timings(run_spans)
    metrics = evaluate_route(instance, route)
    violations = _constraint_violations(instance, route, config)
    search_stats = engine.stats_since(stats_base)
    active = current_trace()
    if active is not None:
        active.metrics.absorb_search_profile(search_stats)
        # Which backend ran the searches, as a stable numeric id (gauges
        # are floats); KERNEL_IDS maps it back to the name.
        active.metrics.gauge("search.kernel").set(
            KERNEL_IDS[engine.kernel_name]
        )
    return EBRRResult(
        route=route,
        metrics=metrics,
        trace=trace,
        timings=timings,
        config=config,
        constraint_violations=violations,
        search_stats=search_stats,
        spans=run_spans,
    )


def evaluate_route(instance: BRRInstance, route: BusRoute) -> RouteMetrics:
    """Exact quality metrics of a route on ``instance`` (works for
    baseline routes too — this is the common yardstick of Section VI)."""
    stops = list(route.stops)
    walk_decrease = instance.walk_decrease(s for s in stops if instance.is_candidate[s])
    connectivity = instance.connectivity(stops)
    utility = walk_decrease + instance.alpha * connectivity
    walk_cost = instance.baseline_walk() - walk_decrease
    length = route.length(instance.network) if len(route.path) > 1 else 0.0
    return RouteMetrics(
        utility=utility,
        walk_cost=walk_cost,
        walk_decrease=walk_decrease,
        connectivity=connectivity,
        num_stops=route.num_stops,
        route_length=length,
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _run_selection_with_state(
    instance: BRRInstance,
    preprocess: PreprocessResult,
    config: EBRRConfig,
    engine: SearchEngine,
) -> Tuple[SelectionTrace, SelectionState]:
    """Run the selection loop and keep its live state for refinement."""
    trace = run_selection(instance, preprocess, config, engine=engine)
    # Rebuild the state by replaying the trace: cheap relative to the
    # selection itself and keeps run_selection's interface pure.
    state = SelectionState(instance, preprocess, config, engine=engine)
    for stop in trace.selected:
        state.select(stop)
    return trace, state


def _order_stops(
    selected: Sequence[int],
    config: EBRRConfig,
    engine: SearchEngine,
) -> List[int]:
    """Pairwise network distances between selected stops, then the
    Christofides open-path order.

    Each stop's full SSSP row goes through the engine's cache, so a K
    sweep over the same instance recomputes only the rows of stops that
    were not selected in an earlier run.
    """
    if len(selected) <= 2:
        return list(selected)
    matrix: List[List[float]] = []
    for stop in selected:
        costs = engine.sssp(stop, phase="ordering")
        matrix.append([costs[other] for other in selected])
    return christofides_order(list(selected), matrix, config.max_adjacent_cost)


def _bare_route(
    engine: SearchEngine, order: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """The unrefined route: the visiting order itself, linked by road
    shortest paths (no intermediate stops, no K padding)."""
    stops = list(dict.fromkeys(order))
    if not stops:
        raise InfeasibleRouteError("empty visiting order")
    path: List[int] = [stops[0]]
    for a, b in zip(stops, stops[1:]):
        leg, _ = engine.path(a, b, phase="refinement")
        path.extend(leg[1:])
    # Drop stops the stitched path happens to miss the ordering of (a
    # later leg may pass through an earlier stop; keep the valid ones).
    return stops, path


def _constraint_violations(
    instance: BRRInstance, route: BusRoute, config: EBRRConfig
) -> List[str]:
    violations: List[str] = []
    if route.num_stops > config.max_stops:
        violations.append(
            f"stop count {route.num_stops} exceeds K={config.max_stops}"
        )
    costs = route.adjacent_stop_costs(instance.network)
    for i, cost in enumerate(costs):
        if cost > config.max_adjacent_cost + 1e-9:
            violations.append(
                f"adjacent stops {route.stops[i]}->{route.stops[i + 1]} cost "
                f"{cost:.3f} exceeds C={config.max_adjacent_cost}"
            )
    return violations
