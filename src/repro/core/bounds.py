"""Theoretical guarantees of EBRR (Theorems 3 and 4).

Theorem 4 gives the instance-dependent approximation ratio

    1 − exp( −2C / (3 · max_{i,j} dist(v_i, v_j)) )

with the instance-independent envelope ``1 − exp(−2/3) ≈ 0.49`` (upper
bound of the guarantee) and, for the paper's default experiment
settings, a lower bound near 0.02.  This module computes those values
for a concrete instance so the empirical ratios of Fig. 11a can be put
next to the theory, and audits a finished run against Theorem 3's stop
budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from ..network.graph import RoadNetwork
from .config import EBRRConfig
from .result import EBRRResult

#: The instance-independent envelope 1 - e^{-2/3} of Theorem 4.
GUARANTEE_UPPER_BOUND = 1.0 - math.exp(-2.0 / 3.0)


@dataclass(frozen=True)
class ApproximationBound:
    """Theorem 4's guarantee for one instance.

    Attributes:
        ratio: the guaranteed fraction of the optimal utility,
            ``1 − exp(−2C / (3·diameter))``.
        diameter: ``max_{i,j} dist(v_i, v_j)`` used in the bound (over
            the sampled nodes; exact when ``sample`` covers ``V``).
        max_adjacent_cost: the ``C`` the bound was computed for.
    """

    ratio: float
    diameter: float
    max_adjacent_cost: float

    @property
    def upper_envelope(self) -> float:
        """The instance-independent ``1 − e^{−2/3} ≈ 0.49``."""
        return GUARANTEE_UPPER_BOUND


def network_diameter(
    network: RoadNetwork, *, sample: Optional[Sequence[int]] = None
) -> float:
    """``max_{i,j} dist(v_i, v_j)`` over all nodes (exact, one Dijkstra
    per node) or over a ``sample`` of source nodes.

    Exact mode is O(|V|² log |V|) — fine up to a few thousand nodes.
    With a sample the result is a *lower* bound of the true diameter;
    a guarantee computed from it overstates the true guarantee, so for
    safe guarantees on big networks prefer :func:`double_sweep_diameter`
    and treat its output the same way.
    """
    nodes = list(sample) if sample is not None else list(network.nodes())
    if not nodes:
        raise ConfigurationError("diameter needs at least one node")
    engine = engine_for(network)
    best = 0.0
    for source in nodes:
        # cached=False: an all-sources sweep would churn the engine's
        # LRU without any reuse — run past the cache instead.
        costs = engine.sssp(source, phase="bounds", cached=False)
        local = max(c for c in costs if math.isfinite(c))
        best = max(best, local)
    return best


def double_sweep_diameter(network: RoadNetwork, *, start: int = 0) -> float:
    """A classic 2-BFS (here 2-Dijkstra) diameter lower bound: sweep to
    the farthest node from ``start``, then sweep again from there.
    Exact on trees, a good estimate on road networks, O(2 |E| log |V|).
    """
    engine = engine_for(network)
    costs = engine.sssp(start, phase="bounds")
    far = max(network.nodes(), key=lambda v: costs[v] if math.isfinite(costs[v]) else -1.0)
    second = engine.sssp(far, phase="bounds")
    return max(c for c in second if math.isfinite(c))


def diameter_upper_bound(network: RoadNetwork, *, start: int = 0) -> float:
    """``2 · ecc(start)`` — an upper bound of the diameter by the
    triangle inequality, O(|E| log |V|).  A guarantee computed from an
    upper bound of the diameter is *safe* (it understates Theorem 4's
    true ratio), which is the right direction for reporting."""
    costs = engine_for(network).sssp(start, phase="bounds")
    return 2.0 * max(c for c in costs if math.isfinite(c))


def approximation_bound(
    network: RoadNetwork,
    max_adjacent_cost: float,
    *,
    diameter: Optional[float] = None,
) -> ApproximationBound:
    """Theorem 4's instance-dependent guarantee.

    Args:
        network: the road network.
        max_adjacent_cost: the constraint ``C``.
        diameter: precomputed ``max dist``; when omitted the safe
            :func:`diameter_upper_bound` is used, so the returned ratio
            never overstates the true guarantee.
    """
    if max_adjacent_cost <= 0:
        raise ConfigurationError("C must be positive")
    if diameter is None:
        diameter = diameter_upper_bound(network)
    if diameter <= 0:
        raise ConfigurationError("diameter must be positive")
    ratio = 1.0 - math.exp(-2.0 * max_adjacent_cost / (3.0 * diameter))
    return ApproximationBound(
        ratio=min(ratio, GUARANTEE_UPPER_BOUND),
        diameter=diameter,
        max_adjacent_cost=max_adjacent_cost,
    )


def audit_stop_budget(result: EBRRResult) -> bool:
    """Theorem 3's mechanism check on a finished run: the selection
    stopped within one price step of the ``2K/3`` budget and the final
    route respects ``K``.

    Returns True when both hold; raises nothing (a reporting helper).
    """
    config: EBRRConfig = result.config
    budget = config.price_budget
    trace = result.trace
    within_budget = True
    if trace.prices:
        overshoot = trace.total_price - budget
        within_budget = overshoot < max(trace.prices) + 1e-9
    return within_budget and result.metrics.num_stops <= config.max_stops
