"""Christofides' algorithm on the virtual-edge price metric.

Line 8 of Algorithm 1 orders the selected profitable stops with
Christofides' heuristic so that the resulting *virtual path* has total
price at most 3/2 of the minimum-spanning-tree price (which the 2K/3
selection budget bounds) — Theorem 3's argument.

Implemented from scratch:

1. Prim's MST over the complete virtual-edge graph;
2. greedy minimum-weight perfect matching on the odd-degree vertices,
   followed by a pairwise-improvement pass (swap two matched pairs when
   rematching lowers the weight), a standard practical surrogate for
   exact blossom matching that preserves the heuristic's behaviour;
3. Hierholzer's algorithm for an Euler circuit of MST + matching;
4. shortcutting repeated visits to a Hamiltonian cycle.

The cycle is opened by dropping its heaviest edge ("discard the longest
part which uses the maximum number of intermediate stops" — Section
IV-D), with the underlying network distance as tie-break.

Virtual edge weights are the integer prices ``max(1, ceil(dist/C))``
(Definition 12); ties are broken by raw distance so the tour prefers
geometrically short legs among equal-price options.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs import span
from .price import virtual_edge_price

#: weight of a virtual edge: (price, raw distance) compared lexicographically
_Weight = Tuple[int, float]


def _weights(
    distances: Sequence[Sequence[float]], max_adjacent_cost: float
) -> List[List[_Weight]]:
    m = len(distances)
    weights: List[List[_Weight]] = [[(0, 0.0)] * m for _ in range(m)]
    for i in range(m):
        for j in range(m):
            if i != j:
                d = distances[i][j]
                if not math.isfinite(d):
                    raise ConfigurationError(
                        "christofides_order needs finite pairwise distances"
                    )
                weights[i][j] = (virtual_edge_price(d, max_adjacent_cost), d)
    return weights


def christofides_order(
    stops: Sequence[int],
    distances: Sequence[Sequence[float]],
    max_adjacent_cost: float,
) -> List[int]:
    """Order ``stops`` as an open path of low total virtual-edge price.

    Args:
        stops: the selected profitable stops ``B(i)``.
        distances: pairwise *network* distances, ``distances[i][j]``
            between ``stops[i]`` and ``stops[j]``.
        max_adjacent_cost: the constraint ``C`` defining edge prices.

    Returns:
        The stops in visiting order (each exactly once).  For fewer
        than three stops the input order is returned unchanged.
    """
    m = len(stops)
    if m != len(distances):
        raise ConfigurationError("distance matrix size must match stops")
    if m <= 2:
        return list(stops)
    with span("christofides", stops=m) as order_span:
        weights = _weights(distances, max_adjacent_cost)

        mst = _prim_mst(m, weights)
        odd = _odd_degree_vertices(m, mst)
        matching = _greedy_matching_with_improvement(odd, weights)
        multigraph_edges = mst + matching
        circuit = _euler_circuit(m, multigraph_edges)
        cycle = _shortcut(circuit)
        path = _open_cycle(cycle, weights)
        order_span.set(odd_vertices=len(odd))
    return [stops[i] for i in path]


def tour_price(
    order: Sequence[int],
    distance_of: Callable[[int, int], float],
    max_adjacent_cost: float,
    *,
    closed: bool = False,
) -> int:
    """Total virtual-edge price of consecutive legs of ``order``.

    Args:
        order: visiting order of stops (actual stop ids).
        distance_of: callable giving the network distance of a leg.
        max_adjacent_cost: the constraint ``C``.
        closed: include the wrap-around leg.
    """
    legs = list(zip(order, order[1:]))
    if closed and len(order) > 1:
        legs.append((order[-1], order[0]))
    return sum(
        virtual_edge_price(distance_of(a, b), max_adjacent_cost) for a, b in legs
    )


# ----------------------------------------------------------------------
# Steps
# ----------------------------------------------------------------------


def _prim_mst(m: int, weights: List[List[_Weight]]) -> List[Tuple[int, int]]:
    """Prim's algorithm on a complete graph; O(m^2), exact."""
    in_tree = [False] * m
    best: List[_Weight] = [(1 << 30, math.inf)] * m
    parent = [-1] * m
    best[0] = (0, 0.0)
    edges: List[Tuple[int, int]] = []
    for _ in range(m):
        u = -1
        for v in range(m):
            if not in_tree[v] and (u < 0 or best[v] < best[u]):
                u = v
        in_tree[u] = True
        if parent[u] >= 0:
            edges.append((parent[u], u))
        for v in range(m):
            if not in_tree[v] and weights[u][v] < best[v]:
                best[v] = weights[u][v]
                parent[v] = u
    return edges


def _odd_degree_vertices(m: int, edges: List[Tuple[int, int]]) -> List[int]:
    degree = [0] * m
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    return [v for v in range(m) if degree[v] % 2 == 1]


def _greedy_matching_with_improvement(
    odd: List[int], weights: List[List[_Weight]]
) -> List[Tuple[int, int]]:
    """Perfect matching on the (even-sized) odd-degree vertex set:
    greedy shortest-edge-first, then 2-swap improvement to local
    optimality."""
    remaining = set(odd)
    pairs: List[Tuple[int, int]] = []
    candidate_edges = sorted(
        ((weights[u][v], u, v) for i, u in enumerate(odd) for v in odd[i + 1:]),
        key=lambda item: item[0],
    )
    for _, u, v in candidate_edges:
        if u in remaining and v in remaining:
            remaining.discard(u)
            remaining.discard(v)
            pairs.append((u, v))
    # Improvement: try rematching every pair of pairs both ways.
    improved = True
    while improved:
        improved = False
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                a, b = pairs[i]
                c, d = pairs[j]
                current = _add(weights[a][b], weights[c][d])
                alt1 = _add(weights[a][c], weights[b][d])
                alt2 = _add(weights[a][d], weights[b][c])
                if alt1 < current and alt1 <= alt2:
                    pairs[i], pairs[j] = (a, c), (b, d)
                    improved = True
                elif alt2 < current:
                    pairs[i], pairs[j] = (a, d), (b, c)
                    improved = True
    return pairs


def _add(w1: _Weight, w2: _Weight) -> _Weight:
    return (w1[0] + w2[0], w1[1] + w2[1])


def _euler_circuit(m: int, edges: List[Tuple[int, int]]) -> List[int]:
    """Hierholzer's algorithm on the MST+matching multigraph (every
    vertex has even degree by construction)."""
    adjacency: Dict[int, List[List[object]]] = {v: [] for v in range(m)}
    edge_used = [False] * len(edges)
    for idx, (u, v) in enumerate(edges):
        adjacency[u].append([v, idx])
        adjacency[v].append([u, idx])
    start = edges[0][0] if edges else 0
    stack = [start]
    circuit: List[int] = []
    cursor = {v: 0 for v in range(m)}
    while stack:
        v = stack[-1]
        advanced = False
        while cursor[v] < len(adjacency[v]):
            to, idx = adjacency[v][cursor[v]]
            cursor[v] += 1
            if not edge_used[idx]:  # type: ignore[index]
                edge_used[idx] = True  # type: ignore[index]
                stack.append(to)  # type: ignore[arg-type]
                advanced = True
                break
        if not advanced:
            circuit.append(stack.pop())
    circuit.reverse()
    return circuit


def _shortcut(circuit: List[int]) -> List[int]:
    """Skip repeated visits, producing a Hamiltonian cycle order."""
    seen = set()
    cycle: List[int] = []
    for v in circuit:
        if v not in seen:
            seen.add(v)
            cycle.append(v)
    return cycle


def _open_cycle(cycle: List[int], weights: List[List[_Weight]]) -> List[int]:
    """Drop the heaviest edge of the cycle, returning an open path."""
    m = len(cycle)
    if m <= 2:
        return cycle
    heaviest = 0
    heaviest_weight = weights[cycle[-1]][cycle[0]]
    for i in range(m - 1):
        w = weights[cycle[i]][cycle[i + 1]]
        if w > heaviest_weight:
            heaviest_weight = w
            heaviest = i + 1
    if heaviest == 0:
        return cycle  # wrap-around edge is heaviest: cycle is already open
    return cycle[heaviest:] + cycle[:heaviest]
