"""The paper's core contribution: the BRR problem and the EBRR solver.

Public entry points:

* :class:`BRRInstance` — a problem instance (Definition 10);
* :class:`EBRRConfig` — parameters ``K``, ``C``, ``α`` plus ablation
  switches;
* :func:`plan_route` — run EBRR (Algorithm 1) end to end;
* :func:`evaluate_route` — exact metrics for any route (baselines too);
* :func:`optimal_stop_set` — the exhaustive OPT for small instances.
"""

from .bounds import (
    ApproximationBound,
    approximation_bound,
    audit_stop_budget,
    diameter_upper_bound,
    double_sweep_diameter,
    network_diameter,
)
from .christofides import christofides_order, tour_price
from .config import EBRRConfig
from .diagnostics import explain_result, selection_table
from .ebrr import evaluate_route, plan_route
from .multi_route import MultiRouteResult, plan_routes
from .numeric import close, is_zero
from .update import UpdateStats, update_preprocess
from .exact import optimal_stop_set
from .postprocess import PostprocessResult, postprocess_route
from .preprocess import PreprocessResult, preprocess_queries
from .price import (
    LowerBoundPrice,
    intermediate_stop_count,
    price_from_distance,
    virtual_edge_price,
)
from .refinement import refine_path
from .result import EBRRResult, RouteMetrics
from .selection import SelectionState, SelectionTrace, run_selection
from .utility import BRRInstance

__all__ = [
    "BRRInstance",
    "close",
    "is_zero",
    "EBRRConfig",
    "plan_route",
    "plan_routes",
    "MultiRouteResult",
    "update_preprocess",
    "UpdateStats",
    "evaluate_route",
    "explain_result",
    "selection_table",
    "optimal_stop_set",
    "preprocess_queries",
    "PreprocessResult",
    "run_selection",
    "SelectionState",
    "SelectionTrace",
    "price_from_distance",
    "virtual_edge_price",
    "intermediate_stop_count",
    "LowerBoundPrice",
    "christofides_order",
    "tour_price",
    "refine_path",
    "postprocess_route",
    "PostprocessResult",
    "approximation_bound",
    "ApproximationBound",
    "audit_stop_budget",
    "network_diameter",
    "double_sweep_diameter",
    "diameter_upper_bound",
    "EBRRResult",
    "RouteMetrics",
]
