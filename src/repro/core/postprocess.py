"""Post-processing local search (the paper's future-work direction).

The conclusion of the paper: *"one may study the post-processing
solutions when considering our results as the first-stage output."*
This module implements that second stage: a constraint-preserving local
search that takes any feasible route (EBRR's, or a baseline's) and
improves its utility with two move types, applied to a fixed point:

* **substitution** — replace one stop with a nearby unused candidate or
  existing stop when that raises the utility and both adjacent legs
  stay within ``C``;
* **terminal relocation** — drop the weaker terminal stop and regrow
  the freed slot at whichever end offers the best marginal gain (the
  classic "shake the ends" move for path-shaped solutions).

Every accepted move strictly increases the exact utility, so the search
terminates; ``max_rounds`` caps the work regardless.  The result is
returned as a new route plus the full road path rebuilt leg by leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from ..obs import now, span
from ..transit.route import BusRoute
from .config import EBRRConfig
from .ebrr import evaluate_route
from .result import RouteMetrics
from .utility import BRRInstance

_EPSILON = 1e-9


@dataclass
class PostprocessResult:
    """Outcome of the local search.

    Attributes:
        route: the improved (or original) route.
        metrics: exact metrics of ``route``.
        initial_utility: utility before the search.
        moves_applied: accepted improving moves.
        rounds: full passes performed.
        elapsed_s: wall-clock seconds spent.
    """

    route: BusRoute
    metrics: RouteMetrics
    initial_utility: float
    moves_applied: int
    rounds: int
    elapsed_s: float

    @property
    def improvement(self) -> float:
        """Absolute utility gain over the first-stage route."""
        return self.metrics.utility - self.initial_utility


def postprocess_route(
    instance: BRRInstance,
    route: BusRoute,
    config: EBRRConfig,
    *,
    max_rounds: int = 3,
    neighborhood_cost: Optional[float] = None,
) -> PostprocessResult:
    """Improve a route by constraint-preserving local search.

    Args:
        instance: the BRR instance the route is evaluated on.
        route: the first-stage route (must be a valid road route; it
            need not be feasible — an infeasible leg simply never gets
            *worse*, substitutions are only accepted when both adjacent
            legs end up within ``C``).
        config: supplies ``K``, ``C``, and ``alpha``.
        max_rounds: maximum full improvement passes.
        neighborhood_cost: search radius for substitute stops; defaults
            to ``C / 2``.

    Returns:
        A :class:`PostprocessResult`; ``route`` is the input object when
        no move improved it.
    """
    if max_rounds < 1:
        raise ConfigurationError("max_rounds must be >= 1")
    radius = neighborhood_cost if neighborhood_cost is not None else config.max_adjacent_cost / 2.0
    if radius <= 0:
        raise ConfigurationError("neighborhood_cost must be positive")

    with span("postprocess", max_rounds=max_rounds) as post_span:
        start = now()
        search = _LocalSearch(instance, config, radius)
        stops = list(route.stops)
        initial_utility = instance.utility(stops)

        moves = 0
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            improved = search.one_round(stops)
            moves += improved
            if improved == 0:
                break
        post_span.set(moves=moves, rounds=rounds)

        if moves == 0:
            metrics = evaluate_route(instance, route)
            return PostprocessResult(
                route=route,
                metrics=metrics,
                initial_utility=initial_utility,
                moves_applied=0,
                rounds=rounds,
                elapsed_s=now() - start,
            )

        new_route = _rebuild_route(instance, route.route_id + "+post", stops)
        metrics = evaluate_route(instance, new_route)
        return PostprocessResult(
            route=new_route,
            metrics=metrics,
            initial_utility=initial_utility,
            moves_applied=moves,
            rounds=rounds,
            elapsed_s=now() - start,
        )


class _LocalSearch:
    """One-pass move applier over a mutable stop list."""

    def __init__(
        self, instance: BRRInstance, config: EBRRConfig, radius: float
    ) -> None:
        self._instance = instance
        self._config = config
        self._radius = radius
        self._engine = engine_for(instance.network)
        self._leg_cache: Dict[Tuple[int, int], float] = {}

    # -- helpers ---------------------------------------------------------

    def _leg(self, a: int, b: int) -> float:
        key = (a, b) if a < b else (b, a)
        if key not in self._leg_cache:
            self._leg_cache[key] = self._engine.distance(*key, phase="postprocess")
        return self._leg_cache[key]

    def _neighbors_of(self, stop: int) -> List[int]:
        """Eligible stop locations within the search radius of ``stop``."""
        instance = self._instance
        return [
            node
            for node, _dist in self._engine.nodes_within(
                stop, self._radius, phase="postprocess"
            )
            if instance.is_candidate[node] or instance.is_existing[node]
        ]

    def _legs_ok(self, stops: Sequence[int], index: int, replacement: int) -> bool:
        c = self._config.max_adjacent_cost
        if index > 0 and self._leg(stops[index - 1], replacement) > c + _EPSILON:
            return False
        if (
            index < len(stops) - 1
            and self._leg(replacement, stops[index + 1]) > c + _EPSILON
        ):
            return False
        return True

    # -- moves -----------------------------------------------------------

    def one_round(self, stops: List[int]) -> int:
        """Apply first-improvement substitution at every position, then
        one terminal relocation attempt.  Returns accepted move count."""
        applied = 0
        current_utility = self._instance.utility(stops)
        for index in range(len(stops)):
            best: Optional[Tuple[float, int]] = None
            in_route = set(stops)
            for candidate in self._neighbors_of(stops[index]):
                if candidate in in_route:
                    continue
                if not self._legs_ok(stops, index, candidate):
                    continue
                trial = stops[:index] + [candidate] + stops[index + 1:]
                utility = self._instance.utility(trial)
                if utility > current_utility + _EPSILON and (
                    best is None or utility > best[0]
                ):
                    best = (utility, candidate)
            if best is not None:
                stops[index] = best[1]
                current_utility = best[0]
                applied += 1
        applied += self._relocate_terminal(stops, current_utility)
        return applied

    def _relocate_terminal(self, stops: List[int], current_utility: float) -> int:
        """Try dropping each terminal and regrowing at the other end."""
        if len(stops) < 3:
            return 0
        c = self._config.max_adjacent_cost
        for drop_head in (True, False):
            trimmed = stops[1:] if drop_head else stops[:-1]
            grow_end = trimmed[-1] if drop_head else trimmed[0]
            in_route = set(trimmed)
            for candidate in self._neighbors_of(grow_end):
                if candidate in in_route:
                    continue
                if self._leg(grow_end, candidate) > c + _EPSILON:
                    continue
                trial = (
                    trimmed + [candidate] if drop_head else [candidate] + trimmed
                )
                if self._instance.utility(trial) > current_utility + _EPSILON:
                    stops[:] = trial
                    return 1
        return 0


def _rebuild_route(
    instance: BRRInstance, route_id: str, stops: Sequence[int]
) -> BusRoute:
    """Stitch the full road path through the (possibly moved) stops."""
    engine = engine_for(instance.network)
    path: List[int] = [stops[0]]
    for a, b in zip(stops, stops[1:]):
        leg, _ = engine.path(a, b, phase="postprocess")
        path.extend(leg[1:])
    return BusRoute(route_id, list(stops), path)
