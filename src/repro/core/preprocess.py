"""Query preprocessing — Algorithm 2 of the paper.

The **per-query** strategy is the paper's literal loop: one truncated
Dijkstra per *distinct* query node, settling outward until it reaches
the first existing stop ``nn(q)`` (the nearest one, by the Dijkstra
property) and recording every candidate stop settled on the way
together with its distance.  Those candidates are exactly the stops
whose selection would reduce this query's walking cost, i.e. the query
belongs to their reverse-nearest-neighbour sets ``RNN(v)``.

The **inverted** strategy computes the same table without the ``|Q|``
sequential searches: one multi-source label field from all existing
stops gives every node its ``nn`` distance and nearest-stop label in a
single pass, forward replay turns those into each query's per-query
``nn`` float, and then — because every query's truncation radius is now
known *up front* — the searches themselves become **query-rooted
balls**, batched hundreds at a time over the product graph
(:meth:`SearchEngine.batch_query_rows`).  A query ball accumulates
distances from the query side, i.e. in exactly the per-query float
association, so its member distances need no replay; the settle-order
cutoff ``(d, v) < (nn(q), nn_stop(q))`` is applied inside the kernel.
The batched search returns *columnar* output, and the merge and
utility folds below stay columnar too (stable grouping by candidate,
exact left-fold accumulation), so the strategy is array-native end to
end.  The two strategies produce equal ``nn_distance``/``rnn``/
``initial_utility`` contents and bit-identical downstream
``EBRRResult``s (see DESIGN.md "Batched preprocessing" for the
inversion argument and the generic-position caveat).  Select via
``strategy=`` / ``EBRRConfig.preprocess_strategy`` / ``--preprocess`` /
``$REPRO_PREPROCESS``; the default is ``inverted`` (flipped after the
parity gates soaked in CI since the strategy landed), with
``per-query`` kept as the explicit opt-out.

The output powers the whole selection phase:

* initial utilities ``U(v)`` for all stops (line 1 of Algorithm 1);
* exact marginal walking gains during selection —
  ``ΔWalk_B(v) = Σ_{(q,d) ∈ RNN(v)} count(q) · max(d_cur(q) − d, 0)``
  where ``d_cur(q)`` is the query's current nearest-stop distance.
  A query outside ``RNN(v)`` satisfies ``dist(q, v) ≥ dist(q, nn(q)) ≥
  d_cur(q)`` and can never gain, so the sum is exact, not a bound.

Query multiplicities are honoured by weighting each distinct node with
its count in the multiset ``Q``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, GraphError
from ..network.engine import QuerySearchRow, SearchEngine, engine_for
from ..obs import current_trace, span
from .utility import BRRInstance

#: The Algorithm 2 execution strategies (see the module docstring).
PREPROCESS_STRATEGIES: Tuple[str, ...] = ("per-query", "inverted")

#: Strategy used when neither the caller nor ``$REPRO_PREPROCESS``
#: picks one.  ``inverted`` since the CI parity gates proved it
#: bit-identical to ``per-query`` across kernels and worker counts;
#: pass ``--preprocess per-query`` (or set ``$REPRO_PREPROCESS``) to
#: opt back out.
DEFAULT_PREPROCESS_STRATEGY = "inverted"

_INF = math.inf


def resolve_preprocess_strategy(strategy: Optional[str] = None) -> str:
    """Resolve a preprocessing-strategy name.

    ``None`` falls back to ``$REPRO_PREPROCESS`` and then to
    :data:`DEFAULT_PREPROCESS_STRATEGY` — same resolution shape as the
    kernel registry, so CI can flip a whole test run with one
    environment variable.

    Raises:
        ConfigurationError: for unknown strategy names, listing the
            valid choices and naming ``$REPRO_PREPROCESS`` when the bad
            value came from the environment (mirrors the ``--preprocess``
            CLI flag's choice validation).
    """
    source = ""
    if strategy is None:
        env_value = os.environ.get("REPRO_PREPROCESS", "").strip()
        strategy = env_value or DEFAULT_PREPROCESS_STRATEGY
        if env_value:
            source = " (from $REPRO_PREPROCESS)"
    else:
        strategy = strategy.strip()
    if strategy not in PREPROCESS_STRATEGIES:
        known = ", ".join(PREPROCESS_STRATEGIES)
        raise ConfigurationError(
            f"unknown preprocess strategy {strategy!r}{source} "
            f"(known: {known})"
        )
    return strategy


@dataclass
class PreprocessResult:
    """Output of Algorithm 2.

    Attributes:
        nn_distance: for each distinct query node, its distance to the
            nearest *existing* stop ``dist(q, nn(q))``.
        rnn: for each candidate stop ``v``, the list of
            ``(query_node, dist(q, v))`` pairs with the query in
            ``RNN(v)`` — settled before ``nn(q)`` in the search.
        initial_utility: ``U({v})`` for every stop in
            ``S_new ∪ S_existing`` (walking gain for candidates,
            ``α · |routes(v)|`` for existing stops).
        searches: number of Dijkstra searches performed.  Strategy
            defined, worker-count independent: the per-query path runs
            one search per distinct query node (``= len(nn_distance)``);
            the inverted path runs one multi-source field search plus
            one query-rooted ball per distinct query node
            (``= 1 + len(nn_distance)``), and ``0`` when there are no
            query nodes at all (no field is built).
        settled_nodes: total nodes settled over all searches (the
            ``|Q| · T1`` term of Theorem 5).  Per-query: each search
            settles its candidate prefix plus the terminating existing
            stop (``len(visited) + 1`` per query).  Inverted: the
            field settles every reachable node once, and each query
            ball settles its pruned reached set
            (``reachable + Σ |ball(q)|``).  Both definitions count
            *nodes*, not implementation steps, so they are identical
            across kernel backends and across serial/fan-out
            execution.
        strategy: the strategy that produced this result (carried so
            ``update_preprocess`` copies keep their provenance).
    """

    nn_distance: Dict[int, float] = field(default_factory=dict)
    rnn: Dict[int, List[Tuple[int, float]]] = field(default_factory=dict)
    initial_utility: Dict[int, float] = field(default_factory=dict)
    searches: int = 0
    settled_nodes: int = 0
    strategy: str = DEFAULT_PREPROCESS_STRATEGY

    def utility_order(self) -> List[Tuple[float, int]]:
        """``(U(v), v)`` pairs in decreasing utility order — the queue
        Algorithm 2 returns (ties broken by node id for determinism)."""
        return sorted(
            ((u, v) for v, u in self.initial_utility.items()),
            key=lambda item: (-item[0], item[1]),
        )


def preprocess_queries(
    instance: BRRInstance,
    *,
    engine: Optional[SearchEngine] = None,
    workers: int = 1,
    strategy: Optional[str] = None,
) -> PreprocessResult:
    """Run Algorithm 2 on ``instance``.

    Args:
        instance: the BRR instance.
        engine: the search engine to run the searches on; defaults to
            the instance network's shared engine.
        workers: shard the independent searches (per-query: the query
            Dijkstras; inverted: the candidate balls) across this many
            worker processes (see :mod:`repro.parallel`).  The default
            ``1`` runs in-process; any value produces bit-identical
            results, and the worker search counts are folded back into
            ``engine``'s ``preprocess`` profile either way.
        strategy: ``"per-query"`` or ``"inverted"`` (see the module
            docstring); ``None`` resolves via ``$REPRO_PREPROCESS``
            then the default.

    Returns:
        A :class:`PreprocessResult`; see its attribute docs.

    Raises:
        GraphError: if some query node cannot reach any existing stop
            (the instance is malformed — Definition 5 needs ``nn(q)``).
        ConfigurationError: if ``workers < 1``, the strategy is
            unknown, or a candidate stop is also an existing stop (the
            utilities of lines 11-16 would silently overwrite each
            other).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    strategy = resolve_preprocess_strategy(strategy)
    result = PreprocessResult(strategy=strategy)
    if engine is None:
        engine = engine_for(instance.network)
    counts = instance.query_counts
    _check_disjoint_stops(instance)

    # Lines 1-10, by either strategy.  Both produce the same table —
    # same floats, same RNN list order, same dict insertion order —
    # regardless of strategy or workers; the inverted path merges its
    # columnar search output with array passes instead of a per-pair
    # python loop (see _group_by_candidate for the ordering argument).
    table: Optional[_InvertedTable] = None
    with span(
        "preprocess.searches",
        queries=len(counts),
        workers=workers,
        strategy=strategy,
    ):
        if strategy == "inverted":
            table = _inverted_search(instance, engine, result, workers)
            result.nn_distance.update(zip(table.nodes, table.nn_forward))
            for candidate, start, end in table.groups:
                result.rnn[candidate] = list(
                    zip(table.qs[start:end], table.ds[start:end])
                )
        else:
            rows = _per_query_search(instance, engine, result, workers)
            for query_node, _nn_stop, nn_dist, visited in rows:
                result.nn_distance[query_node] = nn_dist
                for candidate, dist in visited:
                    result.rnn.setdefault(candidate, []).append(
                        (query_node, dist)
                    )

    with span("preprocess.utilities"):
        # Lines 11-14: initial utilities of candidate stops.
        if table is not None:
            _inverted_utilities(table, instance, result)
        else:
            for candidate, entries in result.rnn.items():
                gain = 0.0
                for query_node, dist in entries:
                    gain += counts[query_node] * (
                        result.nn_distance[query_node] - dist
                    )
                result.initial_utility[candidate] = gain
        # Candidates never visited by any search have zero walking gain.
        for candidate in instance.candidates:
            result.initial_utility.setdefault(candidate, 0.0)

        # Lines 15-16: initial utilities of existing stops.
        for stop in instance.existing_stops:
            result.initial_utility[stop] = (
                instance.alpha * instance.transit.degree(stop)
            )

    return result


def _per_query_search(
    instance: BRRInstance,
    engine: SearchEngine,
    result: PreprocessResult,
    workers: int,
) -> List[QuerySearchRow]:
    """The paper's literal loop: one early-terminated Dijkstra per
    distinct query node (fanned over workers when asked)."""
    is_existing = instance.is_existing
    is_candidate = instance.is_candidate
    nodes = list(instance.query_counts)
    rows: List[QuerySearchRow]
    if workers > 1:
        # Deterministic fan-out: rows come back in `counts` order (see
        # repro.parallel.fanout), bit-identical to the serial loop.
        from ..parallel.fanout import run_query_searches

        rows, worker_stats = run_query_searches(
            instance.network, is_existing, is_candidate, nodes,
            workers=workers, kernel=engine.kernel_name,
        )
        engine.absorb("preprocess", worker_stats)
    else:
        rows = []
        for query_node in nodes:
            nn_stop, nn_dist, visited = engine.query_search(
                query_node, is_existing, is_candidate, phase="preprocess"
            )
            rows.append((query_node, nn_stop, nn_dist, list(visited)))
    result.searches += len(rows)
    result.settled_nodes += sum(len(visited) + 1 for _q, _s, _d, visited in rows)
    return rows


@dataclass
class _InvertedTable:
    """Columnar Algorithm 2 table from the inverted search.

    ``qs``/``ds`` hold the flattened ``(query_node, dist)`` member
    pairs *grouped by candidate*; ``groups`` lists one
    ``(candidate, start, end)`` slice per candidate in first-appearance
    order over the per-query pair stream — exactly the dict insertion
    order the per-query merge produces — with each group's entries in
    query order (and per-query settle order within a query), exactly
    the per-query append order.
    """

    nodes: List[int]
    nn_forward: List[float]
    groups: List[Tuple[int, int, int]]
    qs: List[int]
    ds: List[float]


def _inverted_search(
    instance: BRRInstance,
    engine: SearchEngine,
    result: PreprocessResult,
    workers: int,
) -> _InvertedTable:
    """The inverted strategy: one multi-source label field from the
    existing stops hands every query its truncation radius, then one
    batched query-rooted ball per distinct query node (fanned over
    workers when asked), then a columnar regroup by candidate."""
    nodes = list(instance.query_counts)
    if not nodes:
        return _InvertedTable([], [], [], [], [])
    active = current_trace()
    stops = [i for i, flag in enumerate(instance.is_existing) if flag]
    with span("preprocess.labels", stops=len(stops), queries=len(nodes)):
        label_field = engine.multi_source_labels(stops, phase="preprocess")
        nn_forward = engine.label_forward_distances(
            label_field, nodes, phase="preprocess"
        )
        for node, nn_dist in zip(nodes, nn_forward):
            if nn_dist == _INF:
                raise GraphError(
                    f"no existing bus stop reachable from query node {node}"
                )
        if active is not None:
            active.metrics.counter("preprocess.labels.sources").inc(len(stops))
            active.metrics.counter("preprocess.labels.reachable").inc(
                label_field.reachable
            )
    labels = [label_field.label[node] for node in nodes]
    is_candidate = instance.is_candidate
    with span("preprocess.balls", queries=len(nodes), workers=workers):
        if workers > 1:
            from ..parallel.fanout import run_query_rows

            columns, worker_stats = run_query_rows(
                instance.network, nodes, nn_forward, labels, is_candidate,
                workers=workers, kernel=engine.kernel_name,
            )
            member_counts, member_nodes, member_dists, settled = columns
            engine.absorb("preprocess", worker_stats)
        else:
            member_counts, member_nodes, member_dists, settled = (
                engine.batch_query_rows(
                    nodes, nn_forward, labels, is_candidate, phase="preprocess"
                )
            )
        ball_nodes = sum(settled)
        if active is not None:
            active.metrics.counter("preprocess.balls.count").inc(len(nodes))
            active.metrics.counter("preprocess.balls.settled").inc(ball_nodes)
    result.searches += 1 + len(nodes)
    result.settled_nodes += label_field.reachable + ball_nodes
    return _group_by_candidate(
        nodes, nn_forward, member_counts, member_nodes, member_dists
    )


def _group_by_candidate(
    nodes: List[int],
    nn_forward: List[float],
    member_counts: List[int],
    member_nodes: List[int],
    member_dists: List[float],
) -> _InvertedTable:
    """Regroup the row-major columnar members by candidate stop.

    The flat member stream arrives in exactly the order the per-query
    merge loop iterates pairs: query-major (``nodes`` order), per-query
    settle order within a row.  A *stable* argsort by candidate id
    therefore keeps each candidate's pairs in per-query append order,
    and sorting the groups by their first flat position reproduces the
    per-query ``rnn`` dict's first-appearance insertion order — both
    orderings land bit-for-bit without touching a single pair in
    python.
    """
    if not member_nodes:
        return _InvertedTable(nodes, nn_forward, [], [], [])
    row_of = np.repeat(
        np.arange(len(nodes), dtype=np.int64),
        np.asarray(member_counts, dtype=np.int64),
    )
    cand = np.asarray(member_nodes, dtype=np.int64)
    dist = np.asarray(member_dists, dtype=np.float64)
    order = np.argsort(cand, kind="stable")
    sorted_cand = cand[order]
    starts = np.flatnonzero(
        np.concatenate(
            (np.ones(1, dtype=bool), sorted_cand[1:] != sorted_cand[:-1])
        )
    )
    ends = np.append(starts[1:], sorted_cand.size)
    first_seen = np.argsort(order[starts], kind="stable")
    node_arr = np.asarray(nodes, dtype=np.int64)
    qs = node_arr[row_of[order]].tolist()
    ds = dist[order].tolist()
    groups = [
        (int(sorted_cand[starts[g]]), int(starts[g]), int(ends[g]))
        for g in first_seen.tolist()
    ]
    return _InvertedTable(nodes, nn_forward, groups, qs, ds)


def _inverted_utilities(
    table: _InvertedTable,
    instance: BRRInstance,
    result: PreprocessResult,
) -> None:
    """Lines 11-14 over the columnar table: per-pair gain terms in one
    vectorized pass, then one exact **left-fold** per candidate group
    via ``np.add.accumulate`` — the ufunc is defined sequentially
    (``out[i] = out[i-1] + in[i]``), so each group's final prefix sum
    is bit-identical to the per-query strategy's ``gain += term``
    python fold over the same terms in the same order."""
    if not table.groups:
        return
    counts = instance.query_counts
    num_nodes = instance.network.num_nodes
    weight = np.zeros(num_nodes)
    nn = np.zeros(num_nodes)
    for node in table.nodes:
        weight[node] = counts[node]
        nn[node] = result.nn_distance[node]
    qs = np.asarray(table.qs, dtype=np.int64)
    terms = weight[qs] * (nn[qs] - np.asarray(table.ds, dtype=np.float64))
    for candidate, start, end in table.groups:
        if end - start == 1:
            gain = float(terms[start])
        else:
            gain = float(np.add.accumulate(terms[start:end])[-1])
        result.initial_utility[candidate] = gain


def _check_disjoint_stops(instance: BRRInstance) -> None:
    """Defence in depth for the utility table: a node that is both a
    candidate and an existing stop would have its walking-gain entry
    silently overwritten by the ``α · degree`` loop above.
    :class:`BRRInstance` validates explicit candidate sets, but masks
    can reach here by other construction paths."""
    overlap = [
        node
        for node in instance.candidates
        if instance.is_existing[node]
    ]
    if overlap:
        raise ConfigurationError(
            "candidate stops must be disjoint from existing stops; "
            f"overlap: {sorted(overlap)[:10]}"
        )
