"""Query preprocessing — Algorithm 2 of the paper.

One truncated Dijkstra per *distinct* query node: the search settles
outward until it reaches the first existing stop ``nn(q)`` (the nearest
one, by the Dijkstra property) and records every candidate stop settled
on the way together with its distance.  Those candidates are exactly
the stops whose selection would reduce this query's walking cost, i.e.
the query belongs to their reverse-nearest-neighbour sets ``RNN(v)``.

The output powers the whole selection phase:

* initial utilities ``U(v)`` for all stops (line 1 of Algorithm 1);
* exact marginal walking gains during selection —
  ``ΔWalk_B(v) = Σ_{(q,d) ∈ RNN(v)} count(q) · max(d_cur(q) − d, 0)``
  where ``d_cur(q)`` is the query's current nearest-stop distance.
  A query outside ``RNN(v)`` satisfies ``dist(q, v) ≥ dist(q, nn(q)) ≥
  d_cur(q)`` and can never gain, so the sum is exact, not a bound.

Query multiplicities are honoured by weighting each distinct node with
its count in the multiset ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..network.engine import SearchEngine, engine_for
from ..obs import span
from .utility import BRRInstance


@dataclass
class PreprocessResult:
    """Output of Algorithm 2.

    Attributes:
        nn_distance: for each distinct query node, its distance to the
            nearest *existing* stop ``dist(q, nn(q))``.
        rnn: for each candidate stop ``v``, the list of
            ``(query_node, dist(q, v))`` pairs with the query in
            ``RNN(v)`` — settled before ``nn(q)`` in the search.
        initial_utility: ``U({v})`` for every stop in
            ``S_new ∪ S_existing`` (walking gain for candidates,
            ``α · |routes(v)|`` for existing stops).
        searches: number of Dijkstra searches performed (=
            distinct query nodes), for the efficiency accounting.
        settled_nodes: total nodes settled over all searches (the
            ``|Q| · T1`` term of Theorem 5).
    """

    nn_distance: Dict[int, float] = field(default_factory=dict)
    rnn: Dict[int, List[Tuple[int, float]]] = field(default_factory=dict)
    initial_utility: Dict[int, float] = field(default_factory=dict)
    searches: int = 0
    settled_nodes: int = 0

    def utility_order(self) -> List[Tuple[float, int]]:
        """``(U(v), v)`` pairs in decreasing utility order — the queue
        Algorithm 2 returns (ties broken by node id for determinism)."""
        return sorted(
            ((u, v) for v, u in self.initial_utility.items()),
            key=lambda item: (-item[0], item[1]),
        )


def preprocess_queries(
    instance: BRRInstance,
    *,
    engine: Optional[SearchEngine] = None,
    workers: int = 1,
) -> PreprocessResult:
    """Run Algorithm 2 on ``instance``.

    Args:
        instance: the BRR instance.
        engine: the search engine to run the per-query searches on;
            defaults to the instance network's shared engine.
        workers: shard the per-query searches across this many worker
            processes (see :mod:`repro.parallel`).  The default ``1``
            runs today's serial loop; any value produces bit-identical
            results, and the worker search counts are folded back into
            ``engine``'s ``preprocess`` profile either way.

    Returns:
        A :class:`PreprocessResult`; see its attribute docs.

    Raises:
        GraphError: if some query node cannot reach any existing stop
            (the instance is malformed — Definition 5 needs ``nn(q)``).
        ConfigurationError: if ``workers < 1`` or a candidate stop is
            also an existing stop (the utilities of lines 11-16 would
            silently overwrite each other).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    result = PreprocessResult()
    if engine is None:
        engine = engine_for(instance.network)
    is_existing = instance.is_existing
    is_candidate = instance.is_candidate
    counts = instance.query_counts
    _check_disjoint_stops(instance)

    # Lines 1-10: one early-terminated Dijkstra per distinct query node.
    with span("preprocess.searches", queries=len(counts), workers=workers):
        if workers > 1:
            # Deterministic fan-out: rows come back in `counts` order, so
            # the merged dicts have the same insertion order (and the same
            # floats) as the serial loop below.
            from ..parallel.fanout import run_query_searches

            rows, worker_stats = run_query_searches(
                instance.network, is_existing, is_candidate, list(counts),
                workers=workers, kernel=engine.kernel_name,
            )
            engine.absorb("preprocess", worker_stats)
            for query_node, _nn_stop, nn_dist, visited in rows:
                result.nn_distance[query_node] = nn_dist
                result.searches += 1
                result.settled_nodes += len(visited) + 1
                for candidate, dist in visited:
                    result.rnn.setdefault(candidate, []).append((query_node, dist))
        else:
            for query_node in counts:
                nn_stop, nn_dist, visited = engine.query_search(
                    query_node, is_existing, is_candidate, phase="preprocess"
                )
                result.nn_distance[query_node] = nn_dist
                result.searches += 1
                result.settled_nodes += len(visited) + 1
                for candidate, dist in visited:
                    result.rnn.setdefault(candidate, []).append((query_node, dist))

    with span("preprocess.utilities"):
        # Lines 11-14: initial utilities of candidate stops.
        for candidate, entries in result.rnn.items():
            gain = 0.0
            for query_node, dist in entries:
                gain += counts[query_node] * (result.nn_distance[query_node] - dist)
            result.initial_utility[candidate] = gain
        # Candidates never visited by any search have zero walking gain.
        for candidate in instance.candidates:
            result.initial_utility.setdefault(candidate, 0.0)

        # Lines 15-16: initial utilities of existing stops.
        for stop in instance.existing_stops:
            result.initial_utility[stop] = (
                instance.alpha * instance.transit.degree(stop)
            )

    return result


def _check_disjoint_stops(instance: BRRInstance) -> None:
    """Defence in depth for the utility table: a node that is both a
    candidate and an existing stop would have its walking-gain entry
    silently overwritten by the ``α · degree`` loop above.
    :class:`BRRInstance` validates explicit candidate sets, but masks
    can reach here by other construction paths."""
    overlap = [
        node
        for node in instance.candidates
        if instance.is_existing[node]
    ]
    if overlap:
        raise ConfigurationError(
            "candidate stops must be disjoint from existing stops; "
            f"overlap: {sorted(overlap)[:10]}"
        )
