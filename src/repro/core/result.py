"""Result records for BRR solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..network.engine import SearchStats
from ..obs import Span
from ..transit.route import BusRoute
from .config import EBRRConfig
from .selection import SelectionTrace


@dataclass
class RouteMetrics:
    """Exact quality metrics of a planned route (Definition 9 terms).

    Attributes:
        utility: ``U(B)`` of Equation 1.
        walk_cost: ``Walk(S_existing ∪ B)`` — the paper's Figs. 7 and 9
            report this (lower is better).
        walk_decrease: ``Walk(S_existing) − Walk(S_existing ∪ B)``.
        connectivity: ``Connect(B)`` (Figs. 8 and 10; higher is better).
        num_stops: ``|B|``.
        route_length: total road cost of the route path, in cost units.
    """

    utility: float
    walk_cost: float
    walk_decrease: float
    connectivity: int
    num_stops: int
    route_length: float


@dataclass
class EBRRResult:
    """Everything one EBRR run produced.

    Attributes:
        route: the new bus route ``r* = (B_r*, π_r*)``.
        metrics: exact quality metrics of ``B_r*``.
        trace: the greedy selection trace (profitable stops, prices,
            evaluation counts).
        timings: seconds per phase — keys ``preprocess``, ``selection``,
            ``ordering``, ``refinement``, ``total``.
        config: the configuration used.
        constraint_violations: human-readable descriptions of any
            violated Definition 8 constraint (empty when the route is
            fully feasible; the no-refinement ablation may violate C).
        search_stats: per-phase :class:`~repro.network.engine.SearchStats`
            of the run's graph searches (searches executed, cache hits,
            nodes settled, heap pushes, truncations), keyed by the same
            phase names as ``timings``.  Zero-work phases are omitted;
            a reused preprocessing, for example, contributes no
            ``preprocess`` entry.
        spans: this run's trace spans (self-contained: the
            ``plan_route`` root at index 0, parents internal), recorded
            by :mod:`repro.obs` whether or not a global trace was
            enabled.  ``timings`` is derived from these spans, so the
            diagnostics report and any trace export agree exactly.
    """

    route: BusRoute
    metrics: RouteMetrics
    trace: SelectionTrace
    timings: Dict[str, float]
    config: EBRRConfig
    constraint_violations: List[str] = field(default_factory=list)
    search_stats: Dict[str, SearchStats] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)

    @property
    def total_search_stats(self) -> SearchStats:
        """All phases' search counters summed."""
        total = SearchStats()
        for stats in self.search_stats.values():
            total = total + stats
        return total

    @property
    def is_feasible(self) -> bool:
        """Whether the route satisfies both Definition 8 constraints."""
        return not self.constraint_violations

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"route with {self.metrics.num_stops} stops, "
            f"utility={self.metrics.utility:.2f}, "
            f"walk_cost={self.metrics.walk_cost:.2f}, "
            f"connectivity={self.metrics.connectivity}, "
            f"time={self.timings.get('total', 0.0):.3f}s"
        )
