"""Exhaustive optimal solver (the "OPT" of Fig. 11a).

BRR is NP-hard (Theorem 2), so the optimum is only computable on small
extracts — the paper uses a 110-node NYC subgraph with 7 candidate and
7 existing stops.  This module enumerates all stop subsets of size at
most ``K`` and returns the utility-maximal one.

Following the paper's hardness construction (where ``C`` is set to the
maximum pairwise cost, "making no restriction"), the default ignores
the adjacent-cost constraint; ``require_c_connectable=True`` adds the
natural relaxation that the chosen stops form a connected graph under
the ``dist <= C`` adjacency, which every feasible route's stop set
satisfies.

The inner loop is made tractable by precomputing, per candidate stop,
the distance to every query node once (one Dijkstra per stop), so each
subset evaluation is a few array minima rather than a graph search.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..network.engine import engine_for
from .utility import BRRInstance


def optimal_stop_set(
    instance: BRRInstance,
    max_stops: int,
    *,
    max_adjacent_cost: Optional[float] = None,
    require_c_connectable: bool = False,
) -> Tuple[List[int], float]:
    """The utility-optimal stop set of size at most ``max_stops``.

    Args:
        instance: the (small!) BRR instance.
        max_stops: the cardinality bound ``K``.
        max_adjacent_cost: ``C``; only used when
            ``require_c_connectable`` is set.
        require_c_connectable: additionally require the stops to be
            mutually reachable through legs of cost at most ``C``.

    Returns:
        ``(best_set, best_utility)``; the empty set (utility 0) if no
        subset improves on it.

    Raises:
        ConfigurationError: if the instance is too large to enumerate
            (> 24 total stops) or parameters are inconsistent.
    """
    if max_stops < 1:
        raise ConfigurationError(f"max_stops must be >= 1, got {max_stops}")
    if require_c_connectable and max_adjacent_cost is None:
        raise ConfigurationError(
            "require_c_connectable needs max_adjacent_cost"
        )
    universe = list(instance.candidates) + list(instance.existing_stops)
    if len(universe) > 24:
        raise ConfigurationError(
            f"exhaustive search over {len(universe)} stops is intractable; "
            "use a smaller extract (the paper used 7+7 stops)"
        )

    evaluator = _FastEvaluator(instance)
    pair_dist = (
        _pairwise_distances(instance, universe)
        if require_c_connectable
        else None
    )

    best_set: List[int] = []
    best_utility = 0.0
    for size in range(1, min(max_stops, len(universe)) + 1):
        for subset in combinations(universe, size):
            if pair_dist is not None and not _c_connectable(
                subset, pair_dist, max_adjacent_cost or math.inf
            ):
                continue
            utility = evaluator.utility(subset)
            if utility > best_utility + 1e-12:
                best_utility = utility
                best_set = list(subset)
    return best_set, best_utility


class _FastEvaluator:
    """Utility evaluation via precomputed stop-to-query distances."""

    def __init__(self, instance: BRRInstance) -> None:
        self._instance = instance
        self._query_nodes = list(instance.query_counts)
        self._counts = [instance.query_counts[q] for q in self._query_nodes]
        # Nearest existing stop per query (the baseline).
        baseline = _distances_to_queries(
            instance, instance.existing_stops, self._query_nodes
        )
        self._baseline = baseline
        self._walk_existing = sum(
            c * d for c, d in zip(self._counts, baseline)
        )
        # Per-candidate distance rows.
        engine = engine_for(instance.network)
        self._rows: Dict[int, List[float]] = {}
        for stop in instance.candidates:
            costs = engine.sssp(stop, phase="exact")
            self._rows[stop] = [costs[q] for q in self._query_nodes]

    def utility(self, stops: Sequence[int]) -> float:
        instance = self._instance
        candidate_rows = [
            self._rows[s] for s in stops if instance.is_candidate[s]
        ]
        walk = 0.0
        if candidate_rows:
            for qi, count in enumerate(self._counts):
                d = self._baseline[qi]
                for row in candidate_rows:
                    if row[qi] < d:
                        d = row[qi]
                walk += count * d
        else:
            walk = self._walk_existing
        decrease = self._walk_existing - walk
        connectivity = instance.connectivity(stops)
        return decrease + instance.alpha * connectivity


def _distances_to_queries(
    instance: BRRInstance, sources: Sequence[int], query_nodes: Sequence[int]
) -> List[float]:
    dist = engine_for(instance.network).multi_source(list(sources), phase="exact")
    return [dist[q] for q in query_nodes]


def _pairwise_distances(
    instance: BRRInstance, universe: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    engine = engine_for(instance.network)
    result: Dict[Tuple[int, int], float] = {}
    for stop in universe:
        costs = engine.sssp(stop, phase="exact")
        for other in universe:
            result[(stop, other)] = costs[other]
    return result


def _c_connectable(
    stops: Sequence[int],
    pair_dist: Dict[Tuple[int, int], float],
    max_cost: float,
) -> bool:
    """Whether the ``dist <= C`` graph on ``stops`` is connected."""
    if len(stops) <= 1:
        return True
    remaining = set(stops)
    frontier = [stops[0]]
    remaining.discard(stops[0])
    while frontier:
        u = frontier.pop()
        reached = [v for v in remaining if pair_dist[(u, v)] <= max_cost + 1e-9]
        for v in reached:
            remaining.discard(v)
            frontier.append(v)
    return not remaining
