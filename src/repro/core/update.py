"""Incremental demand updates for the Algorithm 2 preprocessing.

The paper's motivation singles out practitioners who "fine-tune some
parameters or adjust the input (e.g., the demand of different targeted
areas) frequently".  Parameter changes (``K``, ``C``, ``α``) already
reuse the preprocessing; this module makes *demand* changes cheap too:

* a query node whose multiplicity changes only rescales its existing
  contributions (no search);
* a brand-new distinct query node needs exactly one early-terminated
  Dijkstra (the Algorithm 2 search);
* a fully removed node has its RNN entries retired.

The update runs in time proportional to the *changed* demand, not the
whole multiset — the benchmark shows the gap against full recomputation.
The added-node searches therefore stay on the per-query path regardless
of ``PreprocessResult.strategy`` (an inverted pass costs one field plus
one ball per candidate — not change-proportional); a *full* inverted
re-preprocess after stop additions still reuses the engine's cached
label field via incremental repair (see
:meth:`~repro.network.engine.SearchEngine.multi_source_labels`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..demand.query import QuerySet
from ..network.engine import engine_for
from ..obs import span
from .preprocess import PreprocessResult
from .utility import BRRInstance


@dataclass
class UpdateStats:
    """What the incremental update had to do.

    Attributes:
        added_nodes: distinct query nodes that needed a fresh search.
        removed_nodes: distinct nodes fully retired.
        rescaled_nodes: nodes whose multiplicity merely changed.
        searches: Dijkstra searches performed (== ``added_nodes``).
    """

    added_nodes: int = 0
    removed_nodes: int = 0
    rescaled_nodes: int = 0
    searches: int = 0


def update_preprocess(
    instance: BRRInstance,
    preprocess: PreprocessResult,
    new_queries: QuerySet,
    *,
    workers: int = 1,
) -> Tuple[BRRInstance, PreprocessResult, UpdateStats]:
    """Produce the instance + preprocessing for a changed demand.

    Args:
        instance: the instance ``preprocess`` was computed for.
        preprocess: a full Algorithm 2 result for ``instance``.
        new_queries: the updated demand multiset (same road network).
        workers: shard the added-node Algorithm 2 searches across this
            many worker processes (see :mod:`repro.parallel`); ``1``
            keeps them in-process on the shared engine.

    Returns:
        ``(new_instance, new_preprocess, stats)``.  The inputs are not
        mutated; the output preprocessing is value-identical to running
        :func:`repro.core.preprocess.preprocess_queries` from scratch on
        the new instance (the test suite asserts this).
    """
    with span("update", workers=workers) as update_span:
        new_instance, result, stats = _apply_update(
            instance, preprocess, new_queries, workers=workers
        )
        update_span.set(
            rescaled=stats.rescaled_nodes,
            removed=stats.removed_nodes,
            added=stats.added_nodes,
            searches=stats.searches,
        )
    return new_instance, result, stats


def _apply_update(
    instance: BRRInstance,
    preprocess: PreprocessResult,
    new_queries: QuerySet,
    *,
    workers: int,
) -> Tuple[BRRInstance, PreprocessResult, UpdateStats]:
    new_instance = BRRInstance(
        instance.transit,
        new_queries,
        candidates=instance.candidates,
        alpha=instance.alpha,
    )
    old_counts = instance.query_counts
    new_counts = new_instance.query_counts
    stats = UpdateStats()

    # Copy the structures we will edit.
    result = PreprocessResult(
        nn_distance=dict(preprocess.nn_distance),
        rnn={v: list(entries) for v, entries in preprocess.rnn.items()},
        initial_utility=dict(preprocess.initial_utility),
        searches=preprocess.searches,
        settled_nodes=preprocess.settled_nodes,
        strategy=preprocess.strategy,
    )

    # Reverse index: query node -> [(candidate, dist)], for O(changed)
    # utility adjustments and entry retirement.
    reverse: Dict[int, List[Tuple[int, float]]] = {}
    for candidate, entries in result.rnn.items():
        for query_node, dist in entries:
            reverse.setdefault(query_node, []).append((candidate, dist))

    # Pass 1 — surviving nodes: rescale contributions by the count delta
    # and collect fully-removed nodes for one batched retirement sweep.
    retired: List[int] = []
    for node, old in old_counts.items():
        new = new_counts.get(node, 0)
        if old == new:
            continue
        delta = new - old
        nn_dist = result.nn_distance[node]
        for candidate, dist in reverse.get(node, []):
            result.initial_utility[candidate] += delta * (nn_dist - dist)
        if new == 0:
            retired.append(node)
            stats.removed_nodes += 1
        else:
            stats.rescaled_nodes += 1

    # Pass 2 — batched retirement: filter each affected candidate's RNN
    # list exactly once against the whole retired set (the per-node
    # rebuild was quadratic in the removal size).  A candidate whose
    # list empties has lost every contributor, so its utility is pinned
    # to exactly 0.0 rather than left to the dust clamp below.
    if retired:
        retired_set = frozenset(retired)
        affected = dict.fromkeys(
            candidate
            for node in retired
            for candidate, _ in reverse.get(node, [])
        )
        for candidate in affected:
            survivors = [
                entry for entry in result.rnn[candidate] if entry[0] not in retired_set
            ]
            if survivors:
                result.rnn[candidate] = survivors
            else:
                del result.rnn[candidate]
                result.initial_utility[candidate] = 0.0
        for node in retired:
            reverse.pop(node, None)
            del result.nn_distance[node]

    # Pass 3 — brand-new distinct nodes: one Algorithm 2 search each,
    # fanned out across workers when asked (bit-identical either way;
    # the worker search counts land in the engine's `update` profile).
    added = [node for node in new_counts if node not in old_counts]
    if added:
        engine = engine_for(new_instance.network)
        rows: List[Tuple[int, int, float, List[Tuple[int, float]]]]
        if workers > 1:
            from ..parallel.fanout import run_query_searches

            rows, worker_stats = run_query_searches(
                new_instance.network,
                new_instance.is_existing,
                new_instance.is_candidate,
                added,
                workers=workers,
                kernel=engine.kernel_name,
            )
            engine.absorb("update", worker_stats)
        else:
            rows = []
            for node in added:
                nn_stop, nn_dist, visited = engine.query_search(
                    node,
                    new_instance.is_existing,
                    new_instance.is_candidate,
                    phase="update",
                )
                rows.append((node, nn_stop, nn_dist, list(visited)))
        for node, _nn_stop, nn_dist, visited in rows:
            new = new_counts[node]
            result.nn_distance[node] = nn_dist
            result.searches += 1
            result.settled_nodes += len(visited) + 1
            stats.added_nodes += 1
            stats.searches += 1
            for candidate, dist in visited:
                result.rnn.setdefault(candidate, []).append((node, dist))
                reverse.setdefault(node, []).append((candidate, dist))
                result.initial_utility[candidate] = (
                    result.initial_utility.get(candidate, 0.0)
                    + new * (nn_dist - dist)
                )

    # Clamp float dust: utilities are non-negative by construction.
    for candidate in list(result.initial_utility):
        if new_instance.is_candidate[candidate]:
            value = result.initial_utility[candidate]
            if -1e-9 < value < 0.0:
                result.initial_utility[candidate] = 0.0

    return new_instance, result, stats
