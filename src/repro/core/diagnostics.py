"""Run diagnostics: explain one EBRR result as a text report.

Planners tune ``K``, ``C``, and ``α`` iteratively (the paper's whole
efficiency pitch); a readable account of *what the algorithm did* makes
each iteration informative.  :func:`explain_result` renders a full
report: the selection trace (stop, kind, gain, price, ratio), the phase
timings, the constraint audit, and the theoretical-guarantee context of
Theorems 3/4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs import PLAN_PHASES, phase_timings
from .bounds import approximation_bound, audit_stop_budget
from .result import EBRRResult
from .utility import BRRInstance


def trace_phase_timings(result: EBRRResult) -> Dict[str, float]:
    """Per-phase seconds sourced from the run's trace spans.

    The report used to keep its own timing sink, which could drift from
    what ``--trace`` exported; both now read the same measured spans.
    Falls back to ``result.timings`` for results built without spans
    (e.g. deserialized from an older run).
    """
    if result.spans:
        return phase_timings(result.spans)
    return dict(result.timings)


def selection_table(instance: BRRInstance, result: EBRRResult) -> List[dict]:
    """One row per selected stop: kind, marginal gain, price, ratio."""
    rows: List[dict] = []
    trace = result.trace
    for index, stop in enumerate(trace.selected):
        gain = trace.gains[index] if index < len(trace.gains) else float("nan")
        price: Optional[int] = (
            trace.prices[index - 1] if 1 <= index <= len(trace.prices) else None
        )
        rows.append(
            {
                "iter": index,
                "stop": stop,
                "kind": "existing" if instance.is_existing[stop] else "new",
                "gain": gain,
                "price": price if price is not None else "-",
                "ratio": (gain / price) if price else "-",
            }
        )
    return rows


def search_stats_table(result: EBRRResult) -> str:
    """The per-phase search-profile block (one line per phase plus a
    total), rendering the run's :attr:`EBRRResult.search_stats`."""
    lines: List[str] = ["search profile (per phase):"]
    header = (
        f"  {'phase':<11} {'searches':>9} {'cache hits':>11} "
        f"{'settled':>9} {'pushes':>9} {'truncated':>10}"
    )
    lines.append(header)
    for phase, stats in result.search_stats.items():
        lines.append(
            f"  {phase:<11} {stats.searches:>9} {stats.cache_hits:>11} "
            f"{stats.settled:>9} {stats.pushes:>9} {stats.truncated:>10}"
        )
    total = result.total_search_stats
    lines.append(
        f"  {'total':<11} {total.searches:>9} {total.cache_hits:>11} "
        f"{total.settled:>9} {total.pushes:>9} {total.truncated:>10}"
    )
    return "\n".join(lines)


def explain_result(instance: BRRInstance, result: EBRRResult) -> str:
    """A multi-section plain-text explanation of one run."""
    from ..eval.reporting import format_table

    config = result.config
    metrics = result.metrics
    lines: List[str] = []

    lines.append("=== EBRR run report ===")
    lines.append(
        f"instance: |V|={instance.network.num_nodes}, "
        f"|S_existing|={len(instance.existing_stops)}, "
        f"|S_new|={len(instance.candidates)}, |Q|={len(instance.queries)}"
    )
    lines.append(
        f"config: K={config.max_stops}, C={config.max_adjacent_cost}, "
        f"alpha={config.alpha:g}, budget=2K/3={config.price_budget:.2f}"
    )
    lines.append("")

    lines.append(
        format_table(
            selection_table(instance, result),
            ["iter", "stop", "kind", "gain", "price", "ratio"],
            title=f"selection trace (total price {result.trace.total_price}, "
            f"{result.trace.evaluations} evaluations)",
            float_digits=2,
        )
    )
    lines.append("")

    timings = trace_phase_timings(result)
    share = {phase: timings.get(phase, 0.0) for phase in PLAN_PHASES}
    total = max(timings.get("total", 0.0), 1e-12)
    lines.append("phase timings (from trace spans):")
    for phase, seconds in share.items():
        lines.append(
            f"  {phase:<11} {seconds:8.4f}s  ({100 * seconds / total:5.1f}%)"
        )
    lines.append(f"  {'total':<11} {total:8.4f}s")
    lines.append("")

    if result.search_stats:
        lines.append(search_stats_table(result))
        lines.append("")

    lines.append(
        f"route: {metrics.num_stops} stops, {metrics.route_length:.2f} km, "
        f"utility {metrics.utility:,.2f} "
        f"(walk decrease {metrics.walk_decrease:,.2f} + "
        f"{config.alpha:g} x {metrics.connectivity} connectivity)"
    )
    if result.is_feasible:
        lines.append("constraints: satisfied (K and C)")
    else:
        lines.append("constraints: VIOLATED")
        for violation in result.constraint_violations:
            lines.append(f"  - {violation}")
    lines.append(
        "Theorem 3 budget audit: "
        + ("ok" if audit_stop_budget(result) else "VIOLATED")
    )
    bound = approximation_bound(instance.network, config.max_adjacent_cost)
    lines.append(
        f"Theorem 4 guarantee for this instance: >= {bound.ratio:.4f} of "
        f"optimal (diameter bound {bound.diameter:.1f} km; the empirical "
        "ratio is typically near 1 — see Fig. 11a)"
    )
    return "\n".join(lines)
