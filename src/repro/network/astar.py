"""Goal-directed point-to-point search: A* and ALT landmarks.

The paper's core efficiency complaint about prior work is the cost of
repeated point-to-point distance computations on road networks.  Two
standard accelerations are provided as substrate:

* :func:`astar_path` / :func:`astar_distance` — A* with the Euclidean
  heuristic.  Admissible on every network in this package because edge
  costs are at least the Euclidean gap between their endpoints (the
  generators and the DIMACS loader guarantee it), and consistent
  because the Euclidean metric satisfies the triangle inequality.
* :class:`LandmarkIndex` — ALT (A*, Landmarks, Triangle inequality)
  lower bounds: precompute distances from a few far-apart landmarks;
  ``max_l |d_l(u) − d_l(v)|`` lower-bounds ``dist(u, v)`` and usually
  dominates the Euclidean heuristic, shrinking the search further.

Both return exactly the Dijkstra answers (the test suite cross-checks
them); only the explored region differs.

Both ride the shared :class:`~repro.network.engine.SearchEngine`: the
A* loop iterates the engine's CSR arrays and accounts its work to the
``astar`` stats phase, and landmark tables are cached engine SSSP rows
(shared, read-only), so rebuilding an index reuses earlier sweeps.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError, GraphError
from .engine import engine_for
from .graph import RoadNetwork

Heuristic = Callable[[int], float]


def _euclidean_heuristic(network: RoadNetwork, target: int) -> Heuristic:
    tx, ty = network.coordinate(target)

    def h(node: int) -> float:
        x, y = network.coordinate(node)
        return math.hypot(x - tx, y - ty)

    return h


def astar_path(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    heuristic: Optional[Heuristic] = None,
) -> Tuple[List[int], float]:
    """The cheapest ``source -> target`` path via A*.

    Args:
        network: the road network.
        source / target: endpoint nodes.
        heuristic: admissible lower bound of the remaining distance to
            ``target``; defaults to the Euclidean heuristic.

    Returns:
        ``(path, cost)`` — identical to
        :func:`repro.network.dijkstra.shortest_path`.

    Raises:
        GraphError: if ``target`` is unreachable.
    """
    if heuristic is None:
        heuristic = _euclidean_heuristic(network, target)
    engine = engine_for(network)
    csr = engine.csr
    indptr, targets, costs = csr.indptr, csr.targets, csr.costs
    stats = engine.counters("astar")
    g: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    settled: set = set()
    stats.searches += 1
    stats.pushes += 1
    while heap:
        _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        stats.settled += 1
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path, g[target]
        gu = g[u]
        # Known pre-ratchet hot loop (ROADMAP item 2): the A* relaxation
        # still walks the CSR slice in Python pending an ALT kernel
        # primitive.  Counted by lint-baseline.json — may only shrink.
        for i in range(indptr[u], indptr[u + 1]):  # reprolint: disable=RL012
            v = targets[i]
            ng = gu + costs[i]
            if ng < g.get(v, math.inf):
                g[v] = ng
                parent[v] = u
                heapq.heappush(heap, (ng + heuristic(v), v))
                stats.pushes += 1
    raise GraphError(f"node {target} unreachable from {source}")


def astar_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    heuristic: Optional[Heuristic] = None,
) -> float:
    """``dist(source, target)`` via A* (see :func:`astar_path`)."""
    if source == target:
        return 0.0
    _, cost = astar_path(network, source, target, heuristic=heuristic)
    return cost


class LandmarkIndex:
    """ALT lower bounds from far-apart landmarks.

    Args:
        network: the road network.
        num_landmarks: how many landmarks to place (4-16 is typical).
        seed_node: the farthest-point selection starts from here.

    Landmark selection is the standard farthest-point heuristic: start
    anywhere, repeatedly add the node maximizing the distance to the
    nearest already-chosen landmark.  Preprocessing runs one Dijkstra
    per landmark (O(L · |E| log |V|)).
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_landmarks: int = 8,
        *,
        seed_node: int = 0,
    ) -> None:
        if num_landmarks < 1:
            raise ConfigurationError("need at least one landmark")
        if not (0 <= seed_node < network.num_nodes):
            raise ConfigurationError(f"seed node {seed_node} outside network")
        self._network = network
        self._engine = engine_for(network)
        self.landmarks: List[int] = []
        self._tables: List[List[float]] = []

        # Farthest-point placement (the seed's sweep is only used to
        # pick the first real landmark — the far end of the network).
        # Landmark tables come from the shared engine: SSSP rows are
        # cached, so rebuilding an index (or an engine phase later
        # searching from a landmark node) reuses them.  Cached rows are
        # shared objects — this class only ever reads them.
        sweep = self._engine.sssp(seed_node, phase="landmarks")
        first = max(
            network.nodes(),
            key=lambda v: sweep[v] if math.isfinite(sweep[v]) else -1.0,
        )
        self._add_landmark(first)
        while len(self.landmarks) < min(num_landmarks, network.num_nodes):
            nearest = [
                min(table[v] for table in self._tables)
                for v in network.nodes()
            ]
            farthest = max(
                network.nodes(),
                key=lambda v: nearest[v] if math.isfinite(nearest[v]) else -1.0,
            )
            if farthest in self.landmarks:
                break
            self._add_landmark(farthest)

    def _add_landmark(self, node: int) -> None:
        self.landmarks.append(node)
        self._tables.append(self._engine.sssp(node, phase="landmarks"))

    def lower_bound(self, u: int, v: int) -> float:
        """``max_l |d_l(u) − d_l(v)|`` — a valid lower bound of
        ``dist(u, v)`` by the triangle inequality."""
        best = 0.0
        for table in self._tables:
            du, dv = table[u], table[v]
            if math.isfinite(du) and math.isfinite(dv):
                gap = abs(du - dv)
                if gap > best:
                    best = gap
        return best

    def heuristic_to(self, target: int) -> Heuristic:
        """An A* heuristic toward ``target``: the ALT bound, floored by
        the Euclidean gap (both admissible; the max still is)."""
        tx, ty = self._network.coordinate(target)
        tables = self._tables
        target_values = [table[target] for table in tables]
        coords = self._network.coordinate

        def h(node: int) -> float:
            x, y = coords(node)
            best = math.hypot(x - tx, y - ty)
            for table, dt in zip(tables, target_values):
                dn = table[node]
                if math.isfinite(dn) and math.isfinite(dt):
                    gap = abs(dn - dt)
                    if gap > best:
                        best = gap
            return best

        return h

    def distance(self, source: int, target: int) -> float:
        """Exact ``dist(source, target)`` via ALT-guided A*."""
        if source == target:
            return 0.0
        return astar_distance(
            self._network, source, target, heuristic=self.heuristic_to(target)
        )
