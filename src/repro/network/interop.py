"""networkx interoperability.

The ecosystem's graph tooling (osmnx extracts, centrality analysis,
drawing) lives on networkx.  These converters bridge both ways:
``to_networkx`` for analysis/visualization of a :class:`RoadNetwork`,
``from_networkx`` for importing graphs built elsewhere (e.g. an osmnx
street network converted to an undirected weighted graph).

networkx is an optional dependency: the import happens inside the
functions so the core library stays numpy-only.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..exceptions import GraphError
from .graph import RoadNetwork


def to_networkx(network: RoadNetwork):
    """Convert to an undirected ``networkx.Graph``.

    Nodes carry ``x``/``y`` attributes; edges carry ``weight`` (the
    cost).  Requires networkx to be installed.
    """
    import networkx as nx

    graph = nx.Graph()
    for node in network.nodes():
        x, y = network.coordinate(node)
        graph.add_node(node, x=x, y=y)
    for u, v, cost in network.edges():
        graph.add_edge(u, v, weight=cost)
    return graph


def from_networkx(
    graph,
    *,
    weight: str = "weight",
    x_attr: str = "x",
    y_attr: str = "y",
    validate_connected: bool = True,
) -> Tuple[RoadNetwork, Dict[object, int]]:
    """Convert a networkx graph to a :class:`RoadNetwork`.

    Args:
        graph: an undirected networkx graph whose nodes have planar
            coordinate attributes and whose edges have a cost attribute.
        weight: edge attribute holding the cost (must be positive).
        x_attr / y_attr: node coordinate attributes.
        validate_connected: enforce Definition 1's connectivity.

    Returns:
        ``(network, node_map)`` with ``node_map[original] = dense id``.

    Raises:
        GraphError: on missing attributes or invalid costs.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise GraphError("cannot convert an empty graph")
    node_map = {node: i for i, node in enumerate(nodes)}
    coords = []
    for node in nodes:
        data = graph.nodes[node]
        try:
            coords.append((float(data[x_attr]), float(data[y_attr])))
        except KeyError as exc:
            raise GraphError(
                f"node {node!r} missing coordinate attribute {exc.args[0]!r}"
            ) from exc
    edges = []
    for u, v, data in graph.edges(data=True):
        try:
            cost = float(data[weight])
        except KeyError as exc:
            raise GraphError(
                f"edge ({u!r}, {v!r}) missing weight attribute "
                f"{exc.args[0]!r}"
            ) from exc
        edges.append((node_map[u], node_map[v], cost))
    network = RoadNetwork(coords, edges, validate_connected=validate_connected)
    return network, node_map
